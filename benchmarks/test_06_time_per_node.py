"""Figure 6: per-node scheduling time vs tree height.

Reproduces the series of the paper's fig6 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig6(figure_runner):
    figure_runner("fig6")
