"""Figure 14: impact of the AO/EO choice on synthetic trees.

Reproduces the series of the paper's fig14 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig14(figure_runner):
    figure_runner("fig14")
