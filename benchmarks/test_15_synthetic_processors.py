"""Figure 15: processor sweep (2..32) on synthetic trees.

Reproduces the series of the paper's fig15 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig15(figure_runner):
    figure_runner("fig15")
