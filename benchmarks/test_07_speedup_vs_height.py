"""Figure 7: speedup vs tree height at memory factor 2.

Reproduces the series of the paper's fig7 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig7(figure_runner):
    figure_runner("fig7")
