"""Serial-vs-parallel sweep benchmark: the speedup of ``run_sweep(jobs=N)``.

Runs the same cartesian sweep (the fig15-style processor sweep on synthetic
trees, the heaviest configuration of the figure suite) serially and with a
worker pool, records both wall-clocks and their ratio in
``benchmarks/results/parallel_sweep.txt``, and asserts

* the parallel records are identical to the serial ones (timing fields
  excluded — they are wall-clock measurements), and
* on machines with at least two available CPUs, the pool is not slower than
  the serial sweep beyond pool-startup noise; the ≥2x speedup target of the
  sweep engine only materialises with real cores, so it is asserted only
  when 4+ CPUs are available.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.experiments import SweepConfig, run_sweep
from repro.workloads.datasets import synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})

#: Heaviest figure-style configuration: 5 processor counts x 4 factors x 3
#: heuristics per tree (fig15's sweep shape).
SWEEP = SweepConfig(memory_factors=(1.5, 2.0, 5.0, 10.0), processors=(2, 4, 8, 16, 32))

# Dedicated variable: REPRO_BENCH_JOBS controls the *figure* sweeps (default
# serial), which must stay independent of this benchmark's parallel leg.
JOBS = int(os.environ.get("REPRO_BENCH_SPEEDUP_JOBS", "4")) or (os.cpu_count() or 1)


def _strip(records):
    return [{k: v for k, v in r.items() if k not in TIMING_FIELDS} for r in records]


def test_parallel_sweep_speedup(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)

    start = time.perf_counter()
    serial = run_sweep(trees, SWEEP, jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sweep(trees, SWEEP, jobs=JOBS)
    parallel_seconds = time.perf_counter() - start

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    text = "\n".join(
        [
            "== parallel_sweep: serial vs parallel run_sweep ==",
            f"trees={len(trees)} runs={len(serial)} scale={bench_scale} "
            f"jobs={JOBS} available_cpus={cpus}",
            f"serial_seconds   : {serial_seconds:.3f}",
            f"parallel_seconds : {parallel_seconds:.3f}",
            f"speedup          : {speedup:.2f}x",
        ]
    )
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "parallel_sweep.txt").write_text(text + "\n")

    assert _strip(parallel) == _strip(serial), "parallel sweep diverged from serial records"
    # The speedup assertions need real cores AND a workload long enough to
    # amortise pool startup — a sub-second tiny-scale sweep on a shared CI
    # runner would make a hard timing assertion flaky.
    if serial_seconds >= 2.0 and cpus and cpus >= 4 and JOBS >= 4:
        assert speedup >= 2.0, f"expected >=2x speedup with {JOBS} workers, got {speedup:.2f}x"
    elif serial_seconds >= 2.0 and cpus and cpus >= 2 and JOBS >= 2:
        assert speedup >= 1.0, f"expected no slowdown with {JOBS} workers, got {speedup:.2f}x"
