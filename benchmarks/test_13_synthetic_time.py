"""Figure 13: scheduling time vs tree size on synthetic trees.

Reproduces the series of the paper's fig13 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig13(figure_runner):
    figure_runner("fig13")
