"""Figure 10: normalised makespan of the three heuristics on synthetic trees.

Reproduces the series of the paper's fig10 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig10(figure_runner):
    figure_runner("fig10")
