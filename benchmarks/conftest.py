"""Shared fixtures for the benchmark/figure-reproduction suite.

Every benchmark reproduces one figure or table of the paper by calling the
corresponding entry point of :mod:`repro.experiments.figures`, printing the
series (the same rows the paper plots) and asserting the qualitative checks
(who wins, where, by roughly how much).

The dataset scale is controlled with the ``REPRO_BENCH_SCALE`` environment
variable (``small`` by default, which keeps the whole suite within a few
minutes; ``tiny`` gives a fast smoke run and ``medium`` results closer to
the paper's setup).  ``REPRO_BENCH_JOBS`` sets the number of sweep worker
processes per figure (default ``1`` — serial; ``0`` means one per CPU): the
reported series are identical for any value, only the wall-clock changes.
Each figure's text output is also written to
``benchmarks/results/<figure>.txt`` so EXPERIMENTS.md can be refreshed from
the latest run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_figure

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Dataset scale for the benchmark suite (``REPRO_BENCH_SCALE``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Sweep worker processes per figure (``REPRO_BENCH_JOBS``, default 1)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def figure_runner(benchmark, bench_scale, bench_jobs):
    """Run a figure under pytest-benchmark, print and persist its series."""

    def run(figure_id: str, **kwargs):
        result = benchmark.pedantic(
            run_figure,
            args=(figure_id,),
            kwargs={"scale": bench_scale, "jobs": bench_jobs, **kwargs},
            rounds=1,
            iterations=1,
        )
        text = result.as_text()
        print()
        print(text)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{figure_id}.txt").write_text(text + "\n")
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, (
            f"{figure_id}: qualitative checks failed: {failed}\n{text}"
        )
        return result

    return run
