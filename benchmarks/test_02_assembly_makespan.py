"""Figure 2: normalised makespan of the three heuristics on assembly trees (p=8).

Reproduces the series of the paper's fig2 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig2(figure_runner):
    figure_runner("fig2")
