"""Backend equivalence and transfer-cost benchmark for the sweep engine.

Two guarantees of the zero-copy refactor are asserted here, on the real
figure workloads rather than toy trees:

* **Byte-identical records** — ``run_sweep`` with the
  :class:`~repro.experiments.backends.SharedMemoryBackend` must reproduce
  the :class:`~repro.experiments.backends.SerialBackend` records exactly on
  the fig8 (AO/EO-choice, assembly trees) and fig15 (processor sweep,
  synthetic trees) configurations.  Records are compared as pickled bytes —
  literally byte-identical — after dropping the wall-clock
  ``scheduling_seconds`` measurements, which are non-deterministic even
  between two serial runs.
* **Dispatch payload drop** — on a multi-tree dataset the per-task bytes a
  worker receives must shrink by >= 10x versus the per-tree
  :class:`~repro.experiments.backends.ProcessPoolBackend`, because the
  shared-memory backend ships node arrays once (through the arena) and
  dispatches index tuples.  The measured sizes are recorded in
  ``benchmarks/results/backend_payloads.txt``.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.batch import BatchedBackend
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
    dispatch_payload_stats,
)
from repro.workloads.datasets import assembly_dataset, synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})

#: fig8's sweep shape: MemBooking under the six AO/EO combinations.
FIG8_COMBOS = (
    ("memPO", "memPO"),
    ("memPO", "CP"),
    ("OptSeq", "CP"),
    ("OptSeq", "OptSeq"),
    ("perfPO", "CP"),
    ("perfPO", "perfPO"),
)
FIG8_FACTORS = (1.5, 2.0, 5.0, 20.0)

#: fig15's sweep shape: three heuristics, five processor counts.
FIG15_SWEEP = SweepConfig(memory_factors=(1.5, 2.0, 5.0, 10.0), processors=(2, 4, 8, 16, 32))


def record_bytes(records):
    """Pickle each record minus the wall-clock timing fields.

    Comparing serialised bytes (rather than dict equality) makes the
    byte-identity claim literal and keeps NaN-valued fields of failed
    instances comparable.
    """
    return [
        pickle.dumps({k: v for k, v in r.items() if k not in TIMING_FIELDS})
        for r in records
    ]


def test_fig8_configuration_byte_identical(bench_scale):
    trees, _ = assembly_dataset(bench_scale, seed=2017)
    for ao_name, eo_name in FIG8_COMBOS:
        config = SweepConfig(
            schedulers=("MemBooking",),
            memory_factors=FIG8_FACTORS,
            activation_order=ao_name,
            execution_order=eo_name,
        )
        serial = record_bytes(run_sweep(trees, config, backend=SerialBackend()))
        shared = record_bytes(run_sweep(trees, config, backend=SharedMemoryBackend(jobs=2)))
        assert shared == serial, (
            f"shared-memory records diverged from serial on fig8 {ao_name}/{eo_name}"
        )
        batched = record_bytes(run_sweep(trees, config, backend=BatchedBackend()))
        assert batched == serial, (
            f"batched records diverged from serial on fig8 {ao_name}/{eo_name}"
        )


def test_fig15_configuration_byte_identical(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    serial = record_bytes(run_sweep(trees, FIG15_SWEEP, backend=SerialBackend()))
    shared = record_bytes(run_sweep(trees, FIG15_SWEEP, backend=SharedMemoryBackend(jobs=2)))
    assert shared == serial, (
        "shared-memory records diverged from serial on the fig15 configuration"
    )
    batched = record_bytes(run_sweep(trees, FIG15_SWEEP, backend=BatchedBackend()))
    assert batched == serial, (
        "batched records diverged from serial on the fig15 configuration"
    )


def test_dispatch_payload_bytes_drop(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    config = FIG15_SWEEP
    process = dispatch_payload_stats(ProcessPoolBackend(4), trees, config)
    shared = dispatch_payload_stats(SharedMemoryBackend(4), trees, config)

    mean_ratio = process["mean_bytes"] / shared["mean_bytes"]
    total_ratio = process["total_bytes"] / shared["total_bytes"]
    text = "\n".join(
        [
            "== backend_payloads: per-task dispatch payload bytes ==",
            f"trees={len(trees)} scale={bench_scale} "
            f"instances={int(shared['num_payloads'])}",
            f"process pool : {int(process['num_payloads'])} payloads, "
            f"mean {process['mean_bytes']:.0f} B, max {process['max_bytes']:.0f} B, "
            f"total {process['total_bytes']:.0f} B",
            f"shared memory: {int(shared['num_payloads'])} payloads, "
            f"mean {shared['mean_bytes']:.0f} B, max {shared['max_bytes']:.0f} B, "
            f"total {shared['total_bytes']:.0f} B",
            f"mean payload drop : {mean_ratio:.1f}x",
            f"total bytes drop  : {total_ratio:.1f}x",
        ]
    )
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "backend_payloads.txt").write_text(text + "\n")

    assert mean_ratio >= 10.0, (
        f"expected >= 10x smaller per-worker dispatch payloads, got {mean_ratio:.1f}x"
    )


@pytest.mark.parametrize("jobs", [2])
def test_shared_memory_backend_through_figure_api(bench_scale, jobs):
    """The --backend plumbing end to end: figure sweep via shared memory."""
    from repro.experiments import run_figure

    serial = run_figure("fig12", scale=bench_scale, backend="serial")
    shared = run_figure("fig12", scale=bench_scale, jobs=jobs, backend="shared-memory")
    assert record_bytes(shared.records) == record_bytes(serial.records)
    assert shared.series == serial.series


def test_fig8_plans_byte_identical_across_backends(bench_scale):
    """Full and subset SweepPlans reproduce serial bytes on every backend."""
    from repro.experiments import SweepPlan, execute_plan

    trees, _ = assembly_dataset(bench_scale, seed=2017)
    for ao_name, eo_name in FIG8_COMBOS[:2]:
        config = SweepConfig(
            schedulers=("MemBooking",),
            memory_factors=FIG8_FACTORS,
            activation_order=ao_name,
            execution_order=eo_name,
        )
        plan = SweepPlan.from_config(config, len(trees))
        serial = record_bytes(execute_plan(trees, plan, backend=SerialBackend()))
        for backend in (
            ProcessPoolBackend(jobs=2),
            SharedMemoryBackend(jobs=2),
            BatchedBackend(),
        ):
            got = record_bytes(execute_plan(trees, plan, backend=backend))
            assert got == serial, (
                f"{backend.name} plan records diverged from serial on "
                f"fig8 {ao_name}/{eo_name}"
            )
        # A subset plan (every other row) must match the same rows of the
        # full run, again on every backend.
        positions = list(range(0, len(plan), 2))
        subset = plan.subset(positions)
        expected = [serial[p] for p in positions]
        for backend in (
            SerialBackend(),
            ProcessPoolBackend(jobs=2),
            SharedMemoryBackend(jobs=2),
            BatchedBackend(),
        ):
            got = record_bytes(execute_plan(trees, subset, backend=backend))
            assert got == expected, (
                f"{backend.name} subset-plan records diverged on "
                f"fig8 {ao_name}/{eo_name}"
            )


def test_fig15_plans_byte_identical_across_backends(bench_scale):
    """The fig15 processor sweep through the plan API, all four backends."""
    from repro.experiments import SweepPlan, execute_plan

    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    plan = SweepPlan.from_config(FIG15_SWEEP, len(trees))
    serial = record_bytes(execute_plan(trees, plan, backend=SerialBackend()))
    legacy = record_bytes(run_sweep(trees, FIG15_SWEEP, backend=SerialBackend()))
    assert serial == legacy, "plan execution diverged from run_sweep on fig15"
    for backend in (
        ProcessPoolBackend(jobs=2),
        SharedMemoryBackend(jobs=2),
        BatchedBackend(),
    ):
        got = record_bytes(execute_plan(trees, plan, backend=backend))
        assert got == serial, (
            f"{backend.name} plan records diverged from serial on fig15"
        )
