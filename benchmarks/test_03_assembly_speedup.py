"""Figure 3: speedup of MemBooking over Activation on assembly trees.

Reproduces the series of the paper's fig3 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig3(figure_runner):
    figure_runner("fig3")
