"""Figure 9: processor sweep (2..32) on assembly trees.

Reproduces the series of the paper's fig9 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig9(figure_runner):
    figure_runner("fig9")
