"""Figure 12: fraction of the available memory used on synthetic trees.

Reproduces the series of the paper's fig12 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig12(figure_runner):
    figure_runner("fig12")
