"""Batched lane engine benchmark: sweep-level instance throughput.

Measures, on the same machine and the same inputs, the instance throughput
(instances simulated per second, records included) of the
:class:`~repro.batch.BatchedBackend` against the
:class:`~repro.experiments.backends.SerialBackend` running the PR 4 scalar
kernels — the single-core baseline the lane engine is built to beat
through lane collapse and shared per-batch setup.

Two configurations are timed, both restricted to the two lane-kernel
heuristics (``Activation`` + ``MemBooking`` — everything else runs the
identical scalar path in both backends and would only dilute the
measurement):

* the **saturation sweep** — the heavy-leaf caterpillar family under a
  hardware-saturation processor axis (``p`` up to 128) across the full
  memory-factor range.  This is the grid shape the batch subsystem
  targets: most of the processor axis collapses onto one simulation per
  factor (saturation rule) and the generous factor tail collapses per
  ``p`` (memory-slack/starvation rules).  The **>= 2x acceptance bar** is
  asserted here at non-tiny scales;
* the **fig15 grid** — the paper's synthetic processor sweep, recorded as
  the everyday-workload data point (no gate beyond a sanity floor: wide
  random trees offer less provable collapse);
* the **feasibility boundary** — the same heavy-leaf family swept *below*
  the sequential minimum memory, where instances are blocked by the bound
  (t=0 failures and early deadlocks).  This is the grid the blocked-replay
  collapse rule targets: one simulated lane certifies the whole infeasible
  block, cross-``p`` and cross-factor (``SweepConfig`` refuses sub-1
  factors, so this section drives ``simulate_lanes`` directly against the
  scalar schedulers).

Each batched grid is additionally timed with the compiled kernel plane
(``native``) when a toolchain is available, so the JSON records the
native uplift next to the pure-Python trajectory.  Byte-identical records
are asserted on every timed run, so the speedups can never come from
divergence.  Everything lands in ``benchmarks/results/BENCH_batch.json``
(uploaded as a CI artifact), the machine-readable trajectory future PRs
regress against; per-rule lane-collapse tallies ride along in every
section.  Each section is persisted only *after* its acceptance gate has
passed, so a failing (or noisy) run can never enshrine its numbers as the
committed baseline.
"""

from __future__ import annotations

import gc
import json
import pickle
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

import repro.batch.lanes as lanes_mod
from repro.batch import LANE_KERNELS, BatchedBackend, simulate_lanes
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import SerialBackend
from repro.experiments.runner import prepare_instance
from repro.native import native_kernels
from repro.workloads.datasets import heavyleaf_dataset, synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_batch.json"

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})

#: The two lane-kernel heuristics (see module docstring).
KERNEL_SCHEDULERS = ("Activation", "MemBooking")

SATURATION_CONFIG = SweepConfig(
    schedulers=KERNEL_SCHEDULERS,
    memory_factors=(1.5, 2.0, 5.0, 10.0, 20.0),
    processors=(2, 4, 8, 16, 32, 64, 128),
    min_completion_fraction=0.0,
)

FIG15_CONFIG = SweepConfig(
    schedulers=KERNEL_SCHEDULERS,
    memory_factors=(1.5, 2.0, 5.0, 10.0),
    processors=(2, 4, 8, 16, 32),
    min_completion_fraction=0.0,
)


def _record_bytes(records):
    return [
        pickle.dumps({k: v for k, v in r.items() if k not in TIMING_FIELDS})
        for r in records
    ]


def _update_bench_json(scale: str, section: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data.setdefault("schema", 1)
    data["scale"] = scale
    data.setdefault("sections", {})[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _timed_sweep(trees, config, backend):
    """One timed run: GC-quiesced, returning (seconds, table)."""
    gc.collect()
    tic = time.perf_counter()
    table = run_sweep(trees, config, backend=backend)
    return time.perf_counter() - tic, table


def _measure(trees, config, repetitions: int = 2):
    """Time both backends on one grid; returns the payload + parity check.

    Each side is measured ``repetitions`` times and the fastest run kept —
    the standard guard against one-off scheduler/GC noise deciding a gated
    comparison.
    """
    config = replace(config, native=False)
    serial_seconds = min(
        _timed_sweep(trees, config, SerialBackend())[0] for _ in range(repetitions)
    )
    serial_table = run_sweep(trees, config, backend=SerialBackend())

    simulated = {"lanes": 0}
    original = lanes_mod._run_batch

    def counting(kernel_cls, workspace, lanes, **kwargs):
        simulated["lanes"] += len(lanes)
        return original(kernel_cls, workspace, lanes, **kwargs)

    batched_seconds = min(
        _timed_sweep(trees, config, BatchedBackend())[0] for _ in range(repetitions)
    )
    lanes_mod.collapse_rule_counts.clear()
    lanes_mod._run_batch = counting
    try:
        _, batched_table = _timed_sweep(trees, config, BatchedBackend())
    finally:
        lanes_mod._run_batch = original
    rules = dict(lanes_mod.collapse_rule_counts)

    assert _record_bytes(batched_table) == _record_bytes(serial_table), (
        "batched records diverged from serial — a speedup would be meaningless"
    )
    instances = len(serial_table)
    payload = {
        "instances": instances,
        "trees": len(trees),
        "lanes_simulated": simulated["lanes"],
        "lanes_collapsed": instances - simulated["lanes"],
        "collapse_rules": rules,
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "instances_per_second_serial": instances / serial_seconds,
        "instances_per_second_batched": instances / batched_seconds,
        "speedup": serial_seconds / batched_seconds,
    }

    if native_kernels(None) is not None:
        native_config = replace(config, native=True)
        native_seconds = min(
            _timed_sweep(trees, native_config, BatchedBackend())[0]
            for _ in range(repetitions)
        )
        _, native_table = _timed_sweep(trees, native_config, BatchedBackend())
        assert _record_bytes(native_table) == _record_bytes(serial_table), (
            "native batched records diverged from serial"
        )
        payload["batched_native_seconds"] = native_seconds
        payload["instances_per_second_batched_native"] = instances / native_seconds
        payload["speedup_native"] = serial_seconds / native_seconds
    return payload


def test_saturation_sweep_instance_throughput(bench_scale):
    trees, _ = heavyleaf_dataset(bench_scale)
    payload = _measure(trees, SATURATION_CONFIG)
    payload["config"] = "heavy-leaf saturation sweep (p up to 128)"
    print(
        f"\nsaturation sweep: {payload['instances']} instances "
        f"({payload['lanes_simulated']} simulated, {payload['lanes_collapsed']} collapsed) | "
        f"serial {payload['serial_seconds']:.2f}s "
        f"({payload['instances_per_second_serial']:.1f}/s) | "
        f"batched {payload['batched_seconds']:.2f}s "
        f"({payload['instances_per_second_batched']:.1f}/s) | "
        f"speedup {payload['speedup']:.2f}x"
    )
    if bench_scale != "tiny":
        # The ISSUE 5 acceptance bar: >= 2x instance throughput over the
        # serial scalar kernels at non-tiny scale (tiny runs record the
        # trajectory without gating — sub-second totals are noise).
        assert payload["speedup"] >= 2.0, (
            f"batched backend is only {payload['speedup']:.2f}x faster than the "
            f"serial scalar kernels on the saturation sweep (required: >= 2x)"
        )
    _update_bench_json(bench_scale, "saturation_sweep", payload)


def test_fig15_grid_instance_throughput(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    payload = _measure(trees, FIG15_CONFIG)
    payload["config"] = "fig15 grid (synthetic processor sweep, lane kernels)"
    print(
        f"\nfig15 grid: {payload['instances']} instances "
        f"({payload['lanes_simulated']} simulated, {payload['lanes_collapsed']} collapsed) | "
        f"serial {payload['serial_seconds']:.2f}s | batched {payload['batched_seconds']:.2f}s | "
        f"speedup {payload['speedup']:.2f}x"
    )
    if bench_scale != "tiny":
        # Regression floor for the everyday grid: the batched backend must
        # never lose to serial at real scales (it measured ~2x when added).
        assert payload["speedup"] >= 1.2, (
            f"batched backend regressed to {payload['speedup']:.2f}x on the fig15 grid"
        )
    _update_bench_json(bench_scale, "fig15_grid", payload)


#: Feasibility-boundary grid: factors below 1 are *blocked* instances (the
#: memory bound refuses them at or near t=0); 1.0 is the sequential
#: minimum itself and 1.5 anchors the feasible side.
BOUNDARY_FACTORS = (0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0, 1.5)
BOUNDARY_PROCS = (2, 4, 8, 16, 32)


def test_feasibility_boundary_collapse(bench_scale):
    """Blocked-replay yield on the sub-feasible block, recorded per run."""
    trees, _ = heavyleaf_dataset(bench_scale)
    base = SweepConfig(min_completion_fraction=0.0, validate=False)
    contexts = [prepare_instance(tree, i, base) for i, tree in enumerate(trees)]
    grids = [
        [
            (p, factor * ctx.minimum_memory)
            for factor in BOUNDARY_FACTORS
            for p in BOUNDARY_PROCS
        ]
        for ctx in contexts
    ]
    kernels = [LANE_KERNELS[name] for name in KERNEL_SCHEDULERS]

    def scalar_run():
        results = []
        for tree, ctx, grid in zip(trees, contexts, grids):
            for kernel_cls in kernels:
                scheduler = kernel_cls.scheduler_class()
                for p, limit in grid:
                    results.append(
                        scheduler.schedule(
                            tree, p, limit, ao=ctx.ao, eo=ctx.eo, workspace=ctx.workspace
                        )
                    )
        return results

    def batched_run(native):
        results = []
        for tree, ctx, grid in zip(trees, contexts, grids):
            for kernel_cls in kernels:
                results.extend(
                    result
                    for result, _ in simulate_lanes(
                        kernel_cls, tree, ctx.ao, ctx.eo, ctx.workspace, grid,
                        native=native,
                    )
                )
        return results

    gc.collect()
    tic = time.perf_counter()
    scalar_results = scalar_run()
    serial_seconds = time.perf_counter() - tic

    simulated = {"lanes": 0}
    original = lanes_mod._run_batch

    def counting(kernel_cls, workspace, lanes, **kwargs):
        simulated["lanes"] += len(lanes)
        return original(kernel_cls, workspace, lanes, **kwargs)

    gc.collect()
    tic = time.perf_counter()
    batched_results = batched_run(False)
    batched_seconds = time.perf_counter() - tic

    lanes_mod.collapse_rule_counts.clear()
    lanes_mod._run_batch = counting
    try:
        batched_run(False)
    finally:
        lanes_mod._run_batch = original
    rules = dict(lanes_mod.collapse_rule_counts)

    assert len(batched_results) == len(scalar_results)
    for batched, scalar in zip(batched_results, scalar_results):
        assert batched.completed == scalar.completed
        assert batched.failure_reason == scalar.failure_reason
        np.testing.assert_array_equal(batched.start_times, scalar.start_times)
        np.testing.assert_array_equal(batched.finish_times, scalar.finish_times)
        np.testing.assert_array_equal(batched.processor, scalar.processor)

    instances = len(scalar_results)
    payload = {
        "config": "feasibility boundary (sub-minimum factors, blocked lanes)",
        "instances": instances,
        "trees": len(trees),
        "lanes_simulated": simulated["lanes"],
        "lanes_collapsed": instances - simulated["lanes"],
        "collapse_rules": rules,
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "speedup": serial_seconds / batched_seconds,
    }
    if native_kernels(None) is not None:
        gc.collect()
        tic = time.perf_counter()
        native_results = batched_run(True)
        payload["batched_native_seconds"] = time.perf_counter() - tic
        payload["speedup_native"] = serial_seconds / payload["batched_native_seconds"]
        for native, scalar in zip(native_results, scalar_results):
            assert native.failure_reason == scalar.failure_reason
            np.testing.assert_array_equal(native.start_times, scalar.start_times)
    print(
        f"\nfeasibility boundary: {payload['instances']} instances "
        f"({payload['lanes_simulated']} simulated, {payload['lanes_collapsed']} collapsed, "
        f"rules {rules}) | serial {serial_seconds:.2f}s | "
        f"batched {batched_seconds:.2f}s | speedup {payload['speedup']:.2f}x"
    )
    # The point of the section: the blocked block must actually resolve
    # through the blocked-replay rule, at every scale.
    assert rules.get("blocked-replay", 0) > 0, (
        "the sub-feasible grid produced no blocked-replay collapses"
    )
    _update_bench_json(bench_scale, "feasibility_boundary", payload)


#: A fault plan that is armed (so every retry/quarantine code path is live)
#: but whose period is so large it never fires: pure machinery overhead.
INERT_PLAN = "seed=1;os-transient:1000000000"


def test_resilience_overhead(bench_scale):
    """Fault-free cost of the retry machinery on the serial hot path.

    Compares the serial backend with no fault plan against the same sweep
    under an armed-but-never-firing plan (every instance pays the firing
    decision and the retry loop, none takes a fault).  Records must stay
    byte-identical; at non-tiny scales the armed run may cost at most 3%.
    """
    from repro.resilience import reset_fault_state, reset_run_health

    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    config = replace(FIG15_CONFIG, native=False)
    armed = replace(config, fault_plan=INERT_PLAN)
    reset_run_health()
    reset_fault_state()

    # Interleave the reps: thermal/allocator drift over the measurement
    # window would otherwise dominate the few-percent effect being gated.
    # min-of-5 per side keeps the noise floor well under the 3% gate.
    base_runs, armed_runs = [], []
    for _ in range(5):
        base_runs.append(_timed_sweep(trees, config, SerialBackend())[0])
        armed_runs.append(_timed_sweep(trees, armed, SerialBackend())[0])
    base_seconds = min(base_runs)
    armed_seconds = min(armed_runs)
    base_table = run_sweep(trees, config, backend=SerialBackend())
    armed_table = run_sweep(trees, armed, backend=SerialBackend())
    assert _record_bytes(armed_table) == _record_bytes(base_table), (
        "an armed-but-inert fault plan changed the records"
    )

    instances = len(base_table)
    overhead = armed_seconds / base_seconds - 1.0
    payload = {
        "config": "fig15 grid, serial backend, armed inert fault plan",
        "instances": instances,
        "base_seconds": base_seconds,
        "armed_seconds": armed_seconds,
        "instances_per_second": instances / base_seconds,
        "instances_per_second_armed": instances / armed_seconds,
        "overhead_fraction": overhead,
    }
    print(
        f"\nresilience overhead: {instances} instances | "
        f"base {base_seconds:.3f}s | armed {armed_seconds:.3f}s | "
        f"overhead {overhead * 100:+.2f}%"
    )
    if bench_scale != "tiny":
        # ISSUE 9 acceptance bar: the fault-free retry machinery may cost
        # at most 3% (tiny runs record without gating — sub-second noise).
        # The JSON write below only happens on a passing run, so the
        # committed baseline can never come from a run that tripped this.
        assert armed_seconds <= base_seconds * 1.03, (
            f"retry machinery costs {overhead * 100:.1f}% fault-free (allowed: 3%)"
        )
    _update_bench_json(bench_scale, "resilience_overhead", payload)
