"""Batched lane engine benchmark: sweep-level instance throughput.

Measures, on the same machine and the same inputs, the instance throughput
(instances simulated per second, records included) of the
:class:`~repro.batch.BatchedBackend` against the
:class:`~repro.experiments.backends.SerialBackend` running the PR 4 scalar
kernels — the single-core baseline the lane engine is built to beat
through lane collapse and shared per-batch setup.

Two configurations are timed, both restricted to the two lane-kernel
heuristics (``Activation`` + ``MemBooking`` — everything else runs the
identical scalar path in both backends and would only dilute the
measurement):

* the **saturation sweep** — the heavy-leaf caterpillar family under a
  hardware-saturation processor axis (``p`` up to 128) across the full
  memory-factor range.  This is the grid shape the batch subsystem
  targets: most of the processor axis collapses onto one simulation per
  factor (saturation rule) and the generous factor tail collapses per
  ``p`` (memory-slack/starvation rules).  The **>= 2x acceptance bar** is
  asserted here at non-tiny scales;
* the **fig15 grid** — the paper's synthetic processor sweep, recorded as
  the everyday-workload data point (no gate beyond a sanity floor: wide
  random trees offer less provable collapse).

Byte-identical records are asserted on every timed run, so the speedups
can never come from divergence.  Everything lands in
``benchmarks/results/BENCH_batch.json`` (uploaded as a CI artifact), the
machine-readable trajectory future PRs regress against.
"""

from __future__ import annotations

import gc
import json
import pickle
import time
from pathlib import Path

import repro.batch.lanes as lanes_mod
from repro.batch import BatchedBackend
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import SerialBackend
from repro.workloads.datasets import heavyleaf_dataset, synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_batch.json"

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})

#: The two lane-kernel heuristics (see module docstring).
KERNEL_SCHEDULERS = ("Activation", "MemBooking")

SATURATION_CONFIG = SweepConfig(
    schedulers=KERNEL_SCHEDULERS,
    memory_factors=(1.5, 2.0, 5.0, 10.0, 20.0),
    processors=(2, 4, 8, 16, 32, 64, 128),
    min_completion_fraction=0.0,
)

FIG15_CONFIG = SweepConfig(
    schedulers=KERNEL_SCHEDULERS,
    memory_factors=(1.5, 2.0, 5.0, 10.0),
    processors=(2, 4, 8, 16, 32),
    min_completion_fraction=0.0,
)


def _record_bytes(records):
    return [
        pickle.dumps({k: v for k, v in r.items() if k not in TIMING_FIELDS})
        for r in records
    ]


def _update_bench_json(scale: str, section: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data.setdefault("schema", 1)
    data["scale"] = scale
    data.setdefault("sections", {})[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _timed_sweep(trees, config, backend):
    """One timed run: GC-quiesced, returning (seconds, table)."""
    gc.collect()
    tic = time.perf_counter()
    table = run_sweep(trees, config, backend=backend)
    return time.perf_counter() - tic, table


def _measure(trees, config, repetitions: int = 2):
    """Time both backends on one grid; returns the payload + parity check.

    Each side is measured ``repetitions`` times and the fastest run kept —
    the standard guard against one-off scheduler/GC noise deciding a gated
    comparison.
    """
    serial_seconds = min(
        _timed_sweep(trees, config, SerialBackend())[0] for _ in range(repetitions)
    )
    serial_table = run_sweep(trees, config, backend=SerialBackend())

    simulated = {"lanes": 0}
    original = lanes_mod._run_batch

    def counting(kernel_cls, workspace, lanes):
        simulated["lanes"] += len(lanes)
        return original(kernel_cls, workspace, lanes)

    batched_seconds = min(
        _timed_sweep(trees, config, BatchedBackend())[0] for _ in range(repetitions)
    )
    lanes_mod._run_batch = counting
    try:
        _, batched_table = _timed_sweep(trees, config, BatchedBackend())
    finally:
        lanes_mod._run_batch = original

    assert _record_bytes(batched_table) == _record_bytes(serial_table), (
        "batched records diverged from serial — a speedup would be meaningless"
    )
    instances = len(serial_table)
    return {
        "instances": instances,
        "trees": len(trees),
        "lanes_simulated": simulated["lanes"],
        "lanes_collapsed": instances - simulated["lanes"],
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "instances_per_second_serial": instances / serial_seconds,
        "instances_per_second_batched": instances / batched_seconds,
        "speedup": serial_seconds / batched_seconds,
    }


def test_saturation_sweep_instance_throughput(bench_scale):
    trees, _ = heavyleaf_dataset(bench_scale)
    payload = _measure(trees, SATURATION_CONFIG)
    payload["config"] = "heavy-leaf saturation sweep (p up to 128)"
    _update_bench_json(bench_scale, "saturation_sweep", payload)
    print(
        f"\nsaturation sweep: {payload['instances']} instances "
        f"({payload['lanes_simulated']} simulated, {payload['lanes_collapsed']} collapsed) | "
        f"serial {payload['serial_seconds']:.2f}s "
        f"({payload['instances_per_second_serial']:.1f}/s) | "
        f"batched {payload['batched_seconds']:.2f}s "
        f"({payload['instances_per_second_batched']:.1f}/s) | "
        f"speedup {payload['speedup']:.2f}x"
    )
    if bench_scale != "tiny":
        # The ISSUE 5 acceptance bar: >= 2x instance throughput over the
        # serial scalar kernels at non-tiny scale (tiny runs record the
        # trajectory without gating — sub-second totals are noise).
        assert payload["speedup"] >= 2.0, (
            f"batched backend is only {payload['speedup']:.2f}x faster than the "
            f"serial scalar kernels on the saturation sweep (required: >= 2x)"
        )


def test_fig15_grid_instance_throughput(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    payload = _measure(trees, FIG15_CONFIG)
    payload["config"] = "fig15 grid (synthetic processor sweep, lane kernels)"
    _update_bench_json(bench_scale, "fig15_grid", payload)
    print(
        f"\nfig15 grid: {payload['instances']} instances "
        f"({payload['lanes_simulated']} simulated, {payload['lanes_collapsed']} collapsed) | "
        f"serial {payload['serial_seconds']:.2f}s | batched {payload['batched_seconds']:.2f}s | "
        f"speedup {payload['speedup']:.2f}x"
    )
    if bench_scale != "tiny":
        # Regression floor for the everyday grid: the batched backend must
        # never lose to serial at real scales (it measured ~2x when added).
        assert payload["speedup"] >= 1.2, (
            f"batched backend regressed to {payload['speedup']:.2f}x on the fig15 grid"
        )
