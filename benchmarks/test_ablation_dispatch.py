"""Ablation: ALAP dispatch to candidates vs strict dispatch.

Reproduces the series of the paper's ablation_dispatch on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_ablation_dispatch(figure_runner):
    figure_runner("ablation_dispatch")
