"""Figure 5: scheduling time vs tree size on assembly trees.

Reproduces the series of the paper's fig5 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig5(figure_runner):
    figure_runner("fig5")
