"""Figure 8: impact of the AO/EO choice on assembly trees.

Reproduces the series of the paper's fig8 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig8(figure_runner):
    figure_runner("fig8")
