"""Figure 11: speedup of MemBooking over Activation on synthetic trees.

Reproduces the series of the paper's fig11 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig11(figure_runner):
    figure_runner("fig11")
