"""Section 6: improvement statistics of the memory-aware lower bound.

Reproduces the series of the paper's lb_stats on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_lb_stats(figure_runner):
    figure_runner("lb_stats")
