"""Resident service benchmark: warm daemon queries vs cold CLI invocations.

A cold ``memtree schedule`` pays interpreter start, package import, tree
parse and the per-tree O(n) derivations (orders, minimum memory, workspace)
on every call.  The ``memtree serve`` daemon pays them once and answers
subsequent queries over a local socket from warm state — the whole reason
the service exists.  This benchmark measures both sides on the same
machine and the same tree:

* **cold** — full ``python -m repro.cli schedule <tree> --json`` processes,
  wall-clock per invocation (min over repetitions);
* **warm** — one persistent :class:`~repro.service.ServiceClient`
  connection to an in-process :class:`~repro.service.SchedulerDaemon`
  over ``AF_UNIX``, round-trip per ``schedule`` query (min over
  repetitions, after warm-up queries that populate the context memo).

The ISSUE 10 acceptance bar — warm round-trip **>= 10x** faster than the
cold process — is asserted *before* the section is persisted into
``benchmarks/results/BENCH_service.json`` (assert-before-persist, the
house convention), so a failing run can never enshrine its numbers as the
committed baseline.  Records are checked identical (timing fields aside)
between the two paths, so the speedup can never come from divergence.  A
second section records sweep latency cold-cache vs warm-cache through the
daemon, gated on the warm pass simulating zero fresh rows.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.tree_io import save_json, to_dict
from repro.experiments.records import records_equal
from repro.service import SchedulerDaemon, SchedulerService, ServiceClient
from repro.workloads import synthetic_tree

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_service.json"
SRC_DIR = Path(__file__).resolve().parents[1] / "src"

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})

COLD_REPETITIONS = 3
WARM_REPETITIONS = 25


def _update_bench_json(scale: str, section: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data.setdefault("schema", 1)
    data["scale"] = scale
    data.setdefault("sections", {})[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    service = SchedulerService(cache_dir=tmp_path_factory.mktemp("cache"))
    instance = SchedulerDaemon(
        service, socket_path=tmp_path_factory.mktemp("sock") / "bench.sock"
    )
    instance.start()
    yield instance
    instance.stop()


def test_warm_schedule_beats_cold_cli_by_10x(daemon, bench_scale, tmp_path):
    tree = synthetic_tree(num_nodes=200, rng=31)
    tree_path = save_json(tree, tmp_path / "bench-tree.json")
    cli_args = ["--scheduler", "Activation", "--processors", "2", "--json"]

    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    command = [sys.executable, "-m", "repro.cli", "schedule", str(tree_path), *cli_args]
    cold_runs = []
    cold_record = None
    for _ in range(COLD_REPETITIONS):
        gc.collect()
        tic = time.perf_counter()
        proc = subprocess.run(command, env=env, capture_output=True, text=True)
        cold_runs.append(time.perf_counter() - tic)
        assert proc.returncode == 0, proc.stderr
        cold_record = json.loads(proc.stdout)
    cold_seconds = min(cold_runs)

    request = {
        "tree": to_dict(tree),
        "scheduler": "Activation",
        "processors": 2,
        "memory_factor": 2.0,
    }
    with ServiceClient(daemon.address) as client:
        for _ in range(3):  # warm-up: context memo + connection
            warm_record = client.schedule(**request)
        warm_runs = []
        for _ in range(WARM_REPETITIONS):
            gc.collect()
            tic = time.perf_counter()
            warm_record = client.schedule(**request)
            warm_runs.append(time.perf_counter() - tic)
    warm_seconds = min(warm_runs)

    # Identical answers first — a speedup built on divergence is meaningless.
    assert records_equal([warm_record], [cold_record], ignore=TIMING_FIELDS)

    speedup = cold_seconds / warm_seconds
    payload = {
        "config": "200-node synthetic tree, Activation, p=2, f=2.0",
        "cold_repetitions": COLD_REPETITIONS,
        "warm_repetitions": WARM_REPETITIONS,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_queries_per_second": 1.0 / cold_seconds,
        "warm_queries_per_second": 1.0 / warm_seconds,
        "speedup": speedup,
    }
    print(
        f"\nschedule latency: cold CLI {cold_seconds * 1000:.1f}ms | "
        f"warm daemon {warm_seconds * 1000:.2f}ms | speedup {speedup:.1f}x"
    )
    # The ISSUE 10 acceptance bar, asserted before the JSON write below so
    # a failing run can never become the committed baseline.
    assert speedup >= 10.0, (
        f"warm daemon schedule is only {speedup:.1f}x faster than the cold "
        f"CLI (required: >= 10x)"
    )
    _update_bench_json(bench_scale, "schedule_latency", payload)


def test_warm_sweep_is_all_cache_hits(daemon, bench_scale):
    client = ServiceClient(daemon.address)
    with client:
        client.load("synthetic", "tiny")
        request = dict(
            schedulers=["Activation", "MemBooking"],
            processors=[2, 4],
            memory_factors=[2.0],
        )
        gc.collect()
        tic = time.perf_counter()
        fresh_records, fresh_stats = client.sweep("synthetic:tiny", **request)
        fresh_seconds = time.perf_counter() - tic

        warm_runs = []
        for _ in range(5):
            gc.collect()
            tic = time.perf_counter()
            warm_records, warm_stats = client.sweep("synthetic:tiny", **request)
            warm_runs.append(time.perf_counter() - tic)
        warm_seconds = min(warm_runs)

    # Warm responses are served from the row store: same records (bit-for-
    # bit, cached rows carry the original run's timing) and zero fresh
    # simulations.
    assert records_equal(fresh_records, warm_records)
    assert fresh_stats["fresh_rows"] == len(fresh_records) > 0
    assert warm_stats["fresh_rows"] == 0
    assert warm_stats["cached_rows"] == len(warm_records)

    payload = {
        "config": "synthetic:tiny, Activation+MemBooking, p=(2,4), f=2.0",
        "rows": len(fresh_records),
        "fresh_seconds": fresh_seconds,
        "warm_seconds": warm_seconds,
        "fresh_rows_first_pass": fresh_stats["fresh_rows"],
        "fresh_rows_warm_pass": warm_stats["fresh_rows"],
        "speedup": fresh_seconds / warm_seconds,
    }
    print(
        f"\nsweep latency: fresh {fresh_seconds * 1000:.1f}ms | "
        f"warm {warm_seconds * 1000:.2f}ms | "
        f"speedup {payload['speedup']:.1f}x ({payload['rows']} rows)"
    )
    _update_bench_json(bench_scale, "sweep_warm_cache", payload)
