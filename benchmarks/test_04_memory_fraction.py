"""Figure 4: fraction of the available memory used on assembly trees.

Reproduces the series of the paper's fig4 on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_fig4(figure_runner):
    figure_runner("fig4")
