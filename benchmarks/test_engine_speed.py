"""Engine speed benchmark: array engine vs the frozen pre-rewrite reference.

Measures, on the same machine and the same inputs,

* the **events/second micro-benchmark** on the fig15 configuration (the
  synthetic processor-sweep of the paper): every (tree, p, factor,
  heuristic) instance simulated back to back with the production array
  schedulers and with the frozen PR 3 implementations of
  :mod:`repro.schedulers.reference`.  At non-tiny scales the array engine
  must be **>= 2x** faster (the ISSUE 4 acceptance bar); at ``tiny`` scale
  the numbers are recorded without gating (sub-millisecond totals are all
  noise).
* the **per-figure serial wall-clock** of the scheduling-time figures
  (fig5, fig6, fig15), before/after: the "before" run monkeypatches the
  reference schedulers into the factory registry, so both runs share the
  dataset generators, bounds, validation and reporting — the delta is the
  engine.

* the **native stepper** on the same fig15 instances: the compiled C
  kernel plane (:mod:`repro.native`) vs the Python array kernels, back to
  back on the same machine.  At non-tiny scales the native plane must be
  **>= 5x** more events/second than the Python engine (the PR 7
  acceptance bar, anchored to the ``events_per_second_after`` series this
  file has recorded since PR 4); skipped when no compiler is available.

Everything lands in ``benchmarks/results/BENCH_engine.json`` — a
machine-readable perf trajectory (uploaded as a CI artifact) that future
PRs can regress against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments import run_figure
from repro.experiments.runner import prepare_instance
from repro.experiments.config import SweepConfig
from repro.native import NativeUnavailableError, native_kernels
from repro.schedulers import SCHEDULER_FACTORIES
from repro.schedulers.reference import REFERENCE_FACTORIES
from repro.workloads.datasets import synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_engine.json"

#: The fig15 sweep configuration (synthetic trees, processor sweep).
FIG15_CONFIG = SweepConfig(memory_factors=(1.5, 2.0, 5.0, 10.0), processors=(2, 4, 8, 16, 32))
FIG15_SEED = 7011


def _update_bench_json(scale: str, section: str, payload: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data.setdefault("schema", 1)
    data["scale"] = scale
    data.setdefault("sections", {})[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _simulate_fig15(factories, trees, contexts, native=None) -> tuple[float, int]:
    """Run every fig15 instance back to back; return (seconds, total events).

    Order precomputation (the InstanceContext) happens outside the timed
    region for both sides, as in the paper's timing figures.  ``native``
    mirrors ``SweepConfig.native``: ``True``/``False`` force the compiled
    or the Python kernels, ``None`` leaves the scheduler default.
    """
    config = FIG15_CONFIG
    total_events = 0
    tic = time.perf_counter()
    for tree, context in zip(trees, contexts):
        for p in config.processors:
            for factor in config.memory_factors:
                memory = factor * context.minimum_memory
                for name in config.schedulers:
                    scheduler = factories[name]()
                    if native is not None:
                        scheduler.native = native
                    result = scheduler.schedule(
                        tree, p, memory, ao=context.ao, eo=context.eo,
                        workspace=context.workspace,
                    )
                    total_events += result.num_events
    return time.perf_counter() - tic, total_events


def test_fig15_engine_events_per_second(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=FIG15_SEED)
    contexts = [prepare_instance(tree, i, FIG15_CONFIG) for i, tree in enumerate(trees)]

    after_seconds, after_events = _simulate_fig15(SCHEDULER_FACTORIES, trees, contexts)
    before_seconds, before_events = _simulate_fig15(REFERENCE_FACTORIES, trees, contexts)
    assert after_events == before_events, "bit-identical engines must count identical events"

    speedup = before_seconds / after_seconds
    payload = {
        "config": "fig15 (synthetic processor sweep)",
        "instances": len(trees) * len(FIG15_CONFIG.processors)
        * len(FIG15_CONFIG.memory_factors) * len(FIG15_CONFIG.schedulers),
        "events": after_events,
        "before_seconds": before_seconds,
        "after_seconds": after_seconds,
        "events_per_second_before": before_events / before_seconds,
        "events_per_second_after": after_events / after_seconds,
        "speedup": speedup,
    }
    _update_bench_json(bench_scale, "fig15_engine", payload)
    print(
        f"\nfig15 engine: {after_events} events | "
        f"before {before_seconds:.3f}s ({payload['events_per_second_before']:,.0f} ev/s) | "
        f"after {after_seconds:.3f}s ({payload['events_per_second_after']:,.0f} ev/s) | "
        f"speedup {speedup:.2f}x"
    )
    if bench_scale != "tiny":
        # The ISSUE 4 acceptance bar, gated on the fig15 configuration.
        assert speedup >= 2.0, (
            f"array engine is only {speedup:.2f}x faster than the PR 3 reference "
            f"on the fig15 configuration (required: >= 2x)"
        )


def test_fig15_native_events_per_second(bench_scale):
    """Compiled kernel plane vs the Python array kernels, same instances.

    The PR 7 acceptance bar: the native stepper must clear **>= 5x**
    events/second over the Python engine on the fig15 configuration,
    measured back to back on the same machine (the honest form of
    "5x over the ``events_per_second_after`` number recorded at PR 4").
    Both passes are timed after a warm-up lap so neither pays one-time
    costs (dlopen, plane materialisation) inside the measured region.
    """
    try:
        if native_kernels(True) is None:  # pragma: no cover - defensive
            pytest.skip("native kernels unavailable")
    except NativeUnavailableError as exc:
        pytest.skip(f"native kernels unavailable: {exc}")

    trees, _ = synthetic_dataset(bench_scale, seed=FIG15_SEED)
    contexts = [prepare_instance(tree, i, FIG15_CONFIG) for i, tree in enumerate(trees)]

    _simulate_fig15(SCHEDULER_FACTORIES, trees, contexts, native=True)  # warm-up
    native_seconds, native_events = _simulate_fig15(
        SCHEDULER_FACTORIES, trees, contexts, native=True
    )
    python_seconds, python_events = _simulate_fig15(
        SCHEDULER_FACTORIES, trees, contexts, native=False
    )
    assert native_events == python_events, (
        "bit-identical kernel planes must count identical events"
    )

    speedup = python_seconds / native_seconds
    payload = {
        "config": "fig15 (synthetic processor sweep)",
        "instances": len(trees) * len(FIG15_CONFIG.processors)
        * len(FIG15_CONFIG.memory_factors) * len(FIG15_CONFIG.schedulers),
        "events": native_events,
        "python_seconds": python_seconds,
        "native_seconds": native_seconds,
        "events_per_second_python": python_events / python_seconds,
        "events_per_second_native": native_events / native_seconds,
        "speedup": speedup,
    }
    _update_bench_json(bench_scale, "fig15_native", payload)
    print(
        f"\nfig15 native: {native_events} events | "
        f"python {python_seconds:.3f}s ({payload['events_per_second_python']:,.0f} ev/s) | "
        f"native {native_seconds:.3f}s ({payload['events_per_second_native']:,.0f} ev/s) | "
        f"speedup {speedup:.2f}x"
    )
    if bench_scale != "tiny":
        # The PR 7 acceptance bar for the compiled plane.
        assert speedup >= 5.0, (
            f"native stepper is only {speedup:.2f}x faster than the Python "
            f"array kernels on the fig15 configuration (required: >= 5x)"
        )


@pytest.mark.parametrize("figure_id", ["fig5", "fig6", "fig15"])
def test_scheduling_time_figures_before_after(figure_id, bench_scale, monkeypatch):
    """Serial wall-clock of each scheduling-time figure, reference vs array.

    Runs serially on purpose: worker processes would not inherit the
    monkeypatched registry, and wall-clock comparisons across pool runs
    measure the pool, not the engine.
    """
    tic = time.perf_counter()
    result_after = run_figure(figure_id, scale=bench_scale, backend="serial")
    after_seconds = time.perf_counter() - tic

    for name, factory in REFERENCE_FACTORIES.items():
        monkeypatch.setitem(SCHEDULER_FACTORIES, name, factory)
    tic = time.perf_counter()
    result_before = run_figure(figure_id, scale=bench_scale, backend="serial")
    before_seconds = time.perf_counter() - tic

    assert result_after.series.keys() == result_before.series.keys()
    payload = {
        "before_seconds": before_seconds,
        "after_seconds": after_seconds,
        "speedup": before_seconds / after_seconds,
    }
    _update_bench_json(bench_scale, figure_id, payload)
    print(
        f"\n{figure_id} serial wall-clock: before {before_seconds:.3f}s, "
        f"after {after_seconds:.3f}s ({payload['speedup']:.2f}x)"
    )
    failed = [name for name, ok in result_after.checks.items() if not ok]
    assert not failed, f"{figure_id}: qualitative checks failed: {failed}"
