"""Section 7.4: RedTree failures under tight memory.

Reproduces the series of the paper's redtree_failures on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_redtree_failures(figure_runner):
    figure_runner("redtree_failures")
