"""Ablation: optimised vs reference data structures.

Reproduces the series of the paper's ablation_lazy_subtree on the surrogate dataset and
asserts the qualitative shape reported in the paper.
"""


def test_ablation_lazy_subtree(figure_runner):
    figure_runner("ablation_lazy_subtree")
