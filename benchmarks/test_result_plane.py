"""Columnar result-plane benchmark: value identity and pipe-payload drop.

Two guarantees of the RecordTable migration are asserted here, on the real
figure workloads rather than toy trees:

* **Value-identical records** — the columnar pipeline (``run_sweep`` ->
  :class:`~repro.experiments.records.RecordTable` -> ``to_dicts``) must
  reproduce the PR 2 dict pipeline (a plain ``run_instance`` loop) exactly,
  timing fields aside, on the fig8 (AO/EO-choice, assembly trees) and fig15
  (processor sweep, synthetic trees) configurations — across the serial,
  process-pool and shared-memory backends.
* **Result payload drop** — the per-result bytes crossing the pool pipe
  must shrink by >= 10x versus pickled record dicts, because the
  shared-memory backend's workers write rows into the shared result table
  and ship back only the row index.  The measured sizes are recorded in
  ``benchmarks/results/result_payloads.txt``.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import SweepConfig, records_equal, run_sweep
from repro.experiments.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
    result_payload_stats,
)
from repro.experiments.runner import run_instance
from repro.workloads.datasets import assembly_dataset, synthetic_dataset

RESULTS_DIR = Path(__file__).parent / "results"

TIMING_FIELDS = ("scheduling_seconds", "scheduling_seconds_per_node")

#: fig8's sweep shape: MemBooking under the six AO/EO combinations.
FIG8_COMBOS = (
    ("memPO", "memPO"),
    ("memPO", "CP"),
    ("OptSeq", "CP"),
    ("OptSeq", "OptSeq"),
    ("perfPO", "CP"),
    ("perfPO", "perfPO"),
)
FIG8_FACTORS = (1.5, 2.0, 5.0, 20.0)

#: fig15's sweep shape: three heuristics, five processor counts.
FIG15_SWEEP = SweepConfig(memory_factors=(1.5, 2.0, 5.0, 10.0), processors=(2, 4, 8, 16, 32))

ALL_BACKENDS = (
    SerialBackend(),
    ProcessPoolBackend(jobs=2),
    SharedMemoryBackend(jobs=2),
)


def dict_pipeline(trees, config):
    """The PR 2 list-of-dicts pipeline: run_instance straight to dicts."""
    return [record for index, tree in enumerate(trees) for record in run_instance(tree, index, config)]


def test_fig8_records_value_identical_to_dict_pipeline(bench_scale):
    trees, _ = assembly_dataset(bench_scale, seed=2017)
    for ao_name, eo_name in FIG8_COMBOS:
        config = SweepConfig(
            schedulers=("MemBooking",),
            memory_factors=FIG8_FACTORS,
            activation_order=ao_name,
            execution_order=eo_name,
        )
        reference = dict_pipeline(trees, config)
        for backend in ALL_BACKENDS:
            table = run_sweep(trees, config, backend=backend)
            assert records_equal(table, reference, ignore=TIMING_FIELDS), (
                f"RecordTable records diverged from the dict pipeline on fig8 "
                f"{ao_name}/{eo_name} via {backend.name}"
            )


def test_fig15_records_value_identical_to_dict_pipeline(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    reference = dict_pipeline(trees, FIG15_SWEEP)
    for backend in ALL_BACKENDS:
        table = run_sweep(trees, FIG15_SWEEP, backend=backend)
        assert records_equal(table, reference, ignore=TIMING_FIELDS), (
            f"RecordTable records diverged from the dict pipeline on the fig15 "
            f"configuration via {backend.name}"
        )


def test_result_payload_bytes_drop(bench_scale):
    trees, _ = synthetic_dataset(bench_scale, seed=7011)
    table = run_sweep(trees, FIG15_SWEEP)
    stats = result_payload_stats(table)
    dicts, indices = stats["dict_records"], stats["row_indices"]

    mean_ratio = dicts["mean_bytes"] / indices["mean_bytes"]
    total_ratio = dicts["total_bytes"] / indices["total_bytes"]
    text = "\n".join(
        [
            "== result_payloads: per-result pool-pipe payload bytes ==",
            f"trees={len(trees)} scale={bench_scale} records={len(table)}",
            f"pickled dicts (pre-RecordTable pipeline): "
            f"mean {dicts['mean_bytes']:.0f} B, max {dicts['max_bytes']:.0f} B, "
            f"total {dicts['total_bytes']:.0f} B",
            f"row indices (shared-memory result table): "
            f"mean {indices['mean_bytes']:.0f} B, max {indices['max_bytes']:.0f} B, "
            f"total {indices['total_bytes']:.0f} B",
            f"shared result-table arena (out of band, crosses once): {table.nbytes} B",
            f"mean payload drop : {mean_ratio:.1f}x",
            f"total bytes drop  : {total_ratio:.1f}x",
        ]
    )
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "result_payloads.txt").write_text(text + "\n")

    assert mean_ratio >= 10.0, (
        f"expected >= 10x smaller per-result pipe payloads, got {mean_ratio:.1f}x"
    )


def test_suite_cache_hit_on_second_run(bench_scale, tmp_path):
    """A second run_suite at the same scale must hit the persistent cache."""
    from repro.experiments.records import ResultCache
    from repro.experiments.suite import run_suite

    cache = ResultCache(tmp_path / "result-cache")
    first = run_suite(["fig12"], scale=bench_scale, cache=cache)
    misses = cache.misses
    assert misses >= 1 and cache.hits == 0
    second = run_suite(["fig12"], scale=bench_scale, cache=cache)
    assert cache.hits == misses and cache.misses == misses
    assert second["fig12"].series == first["fig12"].series
    assert records_equal(second["fig12"].records, first["fig12"].records)
