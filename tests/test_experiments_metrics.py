"""Unit tests for experiment metrics and aggregation helpers."""

from __future__ import annotations

import math

import pytest

from repro.experiments.metrics import (
    completion_fraction,
    decile_band,
    group_by,
    mean,
    median,
    quantile,
    safe_ratio,
    series_over,
    speedup_records,
)


def make_record(**kwargs) -> dict:
    base = {
        "tree_index": 0,
        "tree_size": 10,
        "tree_height": 4,
        "scheduler": "MemBooking",
        "num_processors": 8,
        "memory_factor": 2.0,
        "completed": True,
        "makespan": 10.0,
        "normalized_makespan": 1.2,
        "activation_order": "memPO",
        "execution_order": "memPO",
    }
    base.update(kwargs)
    return base


class TestScalarHelpers:
    def test_mean_median_quantile(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert median([1.0, 2.0, 30.0]) == pytest.approx(2.0)
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_empty_inputs_give_nan(self):
        assert math.isnan(mean([]))
        assert math.isnan(median([]))
        assert math.isnan(quantile([], 0.5))
        low, high = decile_band([])
        assert math.isnan(low) and math.isnan(high)

    def test_nan_values_ignored(self):
        assert mean([1.0, float("nan"), 3.0]) == pytest.approx(2.0)

    def test_decile_band(self):
        low, high = decile_band(list(range(101)))
        assert low == pytest.approx(10.0)
        assert high == pytest.approx(90.0)

    def test_safe_ratio(self):
        assert safe_ratio(4.0, 2.0) == 2.0
        assert math.isnan(safe_ratio(1.0, 0.0))
        assert math.isnan(safe_ratio(float("inf"), 2.0))


class TestGrouping:
    def test_group_by(self):
        records = [make_record(scheduler=s, memory_factor=f) for s in ("A", "B") for f in (1.0, 2.0)]
        grouped = group_by(records, "scheduler")
        assert set(grouped) == {("A",), ("B",)}
        assert len(grouped[("A",)]) == 2

    def test_completion_fraction(self):
        records = [make_record(completed=True), make_record(completed=False)]
        assert completion_fraction(records) == pytest.approx(0.5)
        assert math.isnan(completion_fraction([]))


class TestSpeedups:
    def test_pairing(self):
        records = [
            make_record(scheduler="Activation", makespan=12.0),
            make_record(scheduler="MemBooking", makespan=10.0),
            make_record(scheduler="Activation", makespan=20.0, tree_index=1),
            make_record(scheduler="MemBooking", makespan=20.0, tree_index=1),
        ]
        speedups = speedup_records(records)
        assert len(speedups) == 2
        values = sorted(s["speedup"] for s in speedups)
        assert values == pytest.approx([1.0, 1.2])

    def test_incomplete_pairs_skipped(self):
        records = [
            make_record(scheduler="Activation", makespan=12.0, completed=False),
            make_record(scheduler="MemBooking", makespan=10.0),
            make_record(scheduler="MemBooking", makespan=10.0, tree_index=2),
        ]
        assert speedup_records(records) == []


class TestSeriesOver:
    def test_basic_aggregation(self):
        records = [
            make_record(memory_factor=1.0, normalized_makespan=2.0),
            make_record(memory_factor=1.0, normalized_makespan=4.0),
            make_record(memory_factor=2.0, normalized_makespan=1.0),
        ]
        series = series_over(records, "memory_factor", "normalized_makespan")
        assert series == [(1.0, pytest.approx(3.0)), (2.0, pytest.approx(1.0))]

    def test_filter_and_completion_threshold(self):
        records = [
            make_record(memory_factor=1.0, completed=False),
            make_record(memory_factor=1.0),
            make_record(memory_factor=2.0),
        ]
        series = series_over(
            records, "memory_factor", "normalized_makespan", min_completion=0.95
        )
        # The factor-1 bucket has 50% completion -> dropped.
        assert [x for x, _ in series] == [2.0]

    def test_where_filter(self):
        records = [
            make_record(scheduler="A", normalized_makespan=5.0),
            make_record(scheduler="B", normalized_makespan=1.0),
        ]
        series = series_over(
            records,
            "memory_factor",
            "normalized_makespan",
            where=lambda r: r["scheduler"] == "B",
        )
        assert series == [(2.0, pytest.approx(1.0))]

    def test_where_mapping_filter(self):
        records = [
            make_record(scheduler="A", normalized_makespan=5.0),
            make_record(scheduler="B", normalized_makespan=1.0),
        ]
        series = series_over(
            records, "memory_factor", "normalized_makespan", where={"scheduler": "B"}
        )
        assert series == [(2.0, pytest.approx(1.0))]


class TestRecordTablePath:
    """The vectorised columnar paths must agree with the dict fallback."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments import SweepConfig, run_sweep
        from repro.workloads import SyntheticTreeConfig, synthetic_trees

        trees = synthetic_trees(4, SyntheticTreeConfig(num_nodes=60), rng=13)
        config = SweepConfig(
            schedulers=("Activation", "MemBooking"),
            memory_factors=(1.0, 2.0),
            processors=(2, 8),
        )
        table = run_sweep(trees, config)
        return table, table.to_dicts()

    def test_completion_fraction_matches(self, sweep):
        table, dicts = sweep
        assert completion_fraction(table) == completion_fraction(dicts)

    def test_series_over_matches(self, sweep):
        table, dicts = sweep
        for where in (None, {"scheduler": "MemBooking"}, {"scheduler": "MemBooking", "num_processors": 8}):
            for min_completion in (None, 0.95):
                assert series_over(
                    table, "memory_factor", "normalized_makespan",
                    where=where, min_completion=min_completion,
                ) == series_over(
                    dicts, "memory_factor", "normalized_makespan",
                    where=where, min_completion=min_completion,
                )

    def test_series_over_callable_where_on_table(self, sweep):
        table, dicts = sweep
        predicate = lambda r: r["scheduler"] == "Activation"  # noqa: E731
        assert series_over(
            table, "memory_factor", "memory_fraction", where=predicate
        ) == series_over(dicts, "memory_factor", "memory_fraction", where=predicate)

    def test_speedup_records_match(self, sweep):
        table, dicts = sweep
        from_table = speedup_records(table)
        from_dicts = speedup_records(dicts)
        assert from_table == from_dicts
        assert [type(v) for v in from_table[0].values()] == [
            type(v) for v in from_dicts[0].values()
        ]

    def test_empty_table(self):
        from repro.experiments.records import RecordTable

        empty = RecordTable.empty(0)
        assert math.isnan(completion_fraction(empty))
        assert series_over(empty, "memory_factor", "makespan") == []
        assert speedup_records(empty) == []
