"""Shared helpers for the test-suite: small random trees and brute-force oracles."""

from __future__ import annotations

import numpy as np

from repro.core.task_tree import NO_PARENT, TaskTree
from repro.orders.base import Ordering
from repro.orders.peak_memory import sequential_peak_memory


def random_tree(
    rng: np.random.Generator,
    n: int,
    *,
    max_fout: float = 10.0,
    max_nexec: float = 5.0,
    max_ptime: float = 4.0,
    integer_data: bool = True,
) -> TaskTree:
    """A random tree built by uniform random attachment.

    Node ``0`` is the root; node ``i`` attaches to a uniformly random earlier
    node.  Data sizes and durations are positive (integers by default, which
    keeps comparisons exact in the oracles).
    """
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for i in range(1, n):
        parent[i] = rng.integers(0, i)

    def draw(high: float) -> np.ndarray:
        if integer_data:
            return rng.integers(1, max(2, int(high)) + 1, size=n).astype(float)
        return rng.uniform(0.5, high, size=n)

    return TaskTree(parent, fout=draw(max_fout), nexec=draw(max_nexec), ptime=draw(max_ptime))


def random_chainy_tree(rng: np.random.Generator, n: int) -> TaskTree:
    """A random tree biased towards long chains (attach to the previous node often)."""
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for i in range(1, n):
        if rng.random() < 0.7:
            parent[i] = i - 1
        else:
            parent[i] = rng.integers(0, i)
    return TaskTree(
        parent,
        fout=rng.integers(1, 10, size=n).astype(float),
        nexec=rng.integers(0, 5, size=n).astype(float),
        ptime=rng.integers(1, 5, size=n).astype(float),
    )


def enumerate_topological_orders(tree: TaskTree, *, limit: int = 2_000_000) -> list[list[int]]:
    """Every topological order (children before parents) of a small tree.

    Implemented as a simple backtracking enumeration; raises ``ValueError``
    if more than ``limit`` orders would be produced.
    """
    n = tree.n
    remaining_children = [tree.num_children(i) for i in range(n)]
    available = [i for i in range(n) if remaining_children[i] == 0]
    result: list[list[int]] = []
    order: list[int] = []

    def backtrack() -> None:
        if len(result) > limit:
            raise ValueError("too many topological orders to enumerate")
        if len(order) == n:
            result.append(list(order))
            return
        # Iterate over a snapshot since ``available`` mutates during recursion.
        for node in list(available):
            available.remove(node)
            order.append(node)
            parent = int(tree.parent[node])
            unlocked = False
            if parent != NO_PARENT:
                remaining_children[parent] -= 1
                if remaining_children[parent] == 0:
                    available.append(parent)
                    unlocked = True
            backtrack()
            if parent != NO_PARENT:
                if unlocked:
                    available.remove(parent)
                remaining_children[parent] += 1
            order.pop()
            available.append(node)

    backtrack()
    return result


def brute_force_optimal_peak(tree: TaskTree) -> float:
    """Minimum sequential peak memory over all topological orders (exponential)."""
    best = np.inf
    for seq in enumerate_topological_orders(tree):
        peak = sequential_peak_memory(tree, Ordering(seq), check=False)
        best = min(best, peak)
    return float(best)


def brute_force_best_postorder_peak(tree: TaskTree) -> float:
    """Minimum sequential peak memory over all postorders (exponential)."""
    from repro.orders.postorder import enumerate_postorders

    best = np.inf
    for order in enumerate_postorders(tree):
        best = min(best, sequential_peak_memory(tree, order, check=False))
    return float(best)
