"""Unit tests for the makespan lower bounds (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import (
    classical_lower_bound,
    combined_lower_bound,
    lower_bound_improvement_stats,
    lower_bounds,
    memory_lower_bound,
)
from repro.core.task_tree import TaskTree
from repro.core.tree_metrics import critical_path_length
from repro.orders import minimum_memory_postorder, sequential_peak_memory
from repro.schedulers import ActivationScheduler, ListScheduler, MemBookingScheduler

from .helpers import random_tree


class TestClassicalBound:
    def test_chain_is_critical_path(self, chain3):
        assert classical_lower_bound(chain3, 4) == pytest.approx(chain3.total_work)

    def test_star_is_work_bound(self, star5):
        assert classical_lower_bound(star5, 1) == pytest.approx(star5.total_work)

    def test_invalid_processors(self, chain3):
        with pytest.raises(ValueError):
            classical_lower_bound(chain3, 0)

    def test_monotone_in_processors(self, rng):
        tree = random_tree(rng, 40)
        values = [classical_lower_bound(tree, p) for p in (1, 2, 4, 8, 1000)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(critical_path_length(tree))


class TestMemoryBound:
    def test_formula(self, chain3):
        expected = float(np.dot(chain3.mem_needed, chain3.ptime)) / 10.0
        assert memory_lower_bound(chain3, 10.0) == pytest.approx(expected)

    def test_decreases_with_memory(self, rng):
        tree = random_tree(rng, 30)
        assert memory_lower_bound(tree, 10.0) > memory_lower_bound(tree, 100.0)

    def test_invalid_memory(self, chain3):
        with pytest.raises(ValueError):
            memory_lower_bound(chain3, 0.0)

    def test_tight_memory_dominates(self):
        # Four independent 2-task chains under a common root, scheduled with
        # barely enough memory: each chain needs ~11 units of memory for ~10
        # time units, so the memory-time demand forces a long makespan even
        # with many processors — the regime where Theorem 3 beats the
        # classical bound.
        #   leaves 0..3 (f=10, t=5) -> mids 4..7 (f=1, t=5) -> root 8 (f=1, t=1)
        tree = TaskTree(
            parent=[4, 5, 6, 7, 8, 8, 8, 8, -1],
            fout=[10.0] * 4 + [1.0] * 4 + [1.0],
            nexec=0.0,
            ptime=[5.0] * 4 + [5.0] * 4 + [1.0],
        )
        ao = minimum_memory_postorder(tree)
        memory = sequential_peak_memory(tree, ao)
        bounds = lower_bounds(tree, 32, memory)
        assert bounds.memory_bound_improves
        assert bounds.combined == pytest.approx(bounds.memory_bound)
        # And the bound is still valid: MemBooking at that memory respects it.
        result = MemBookingScheduler().schedule(tree, 32, memory, ao=ao, eo=ao)
        assert result.completed
        assert result.makespan >= bounds.combined - 1e-9


class TestValidity:
    """Every lower bound must actually lower-bound every valid schedule."""

    @pytest.mark.parametrize("scheduler_cls", [ActivationScheduler, MemBookingScheduler])
    def test_bounds_below_heuristic_makespans(self, rng, scheduler_cls):
        for _ in range(8):
            tree = random_tree(rng, 50)
            ao = minimum_memory_postorder(tree)
            memory = float(rng.uniform(1.0, 3.0)) * sequential_peak_memory(tree, ao)
            p = int(rng.integers(1, 9))
            result = scheduler_cls().schedule(tree, p, memory, ao=ao, eo=ao)
            assert result.completed
            bound = combined_lower_bound(tree, p, memory)
            assert result.makespan >= bound - 1e-9 * max(1.0, bound)

    def test_memory_bound_valid_even_for_memory_oblivious(self, rng):
        # The classical part must hold for the list scheduler too (it has no
        # memory bound, so only compare with the classical term).
        tree = random_tree(rng, 50)
        result = ListScheduler().schedule(tree, 4, 1e18)
        assert result.makespan >= classical_lower_bound(tree, 4) - 1e-9


class TestImprovementStats:
    def test_stats_structure(self, rng):
        trees = [random_tree(rng, 30) for _ in range(10)]
        limits = []
        for tree in trees:
            ao = minimum_memory_postorder(tree)
            limits.append(2.0 * sequential_peak_memory(tree, ao))
        stats = lower_bound_improvement_stats(trees, 8, limits)
        assert stats["count"] == 10
        assert 0.0 <= stats["improved_fraction"] <= 1.0
        assert stats["average_improvement"] >= 0.0

    def test_improvement_fraction_grows_when_memory_shrinks(self, rng):
        trees = [random_tree(rng, 40) for _ in range(10)]
        tight, loose = [], []
        for tree in trees:
            ao = minimum_memory_postorder(tree)
            peak = sequential_peak_memory(tree, ao)
            tight.append(1.0 * peak)
            loose.append(20.0 * peak)
        stats_tight = lower_bound_improvement_stats(trees, 8, tight)
        stats_loose = lower_bound_improvement_stats(trees, 8, loose)
        assert stats_tight["improved_fraction"] >= stats_loose["improved_fraction"]

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            lower_bound_improvement_stats([random_tree(rng, 10)], 8, [1.0, 2.0])


class TestLowerBoundsObject:
    def test_fields_and_properties(self, small_tree):
        bounds = lower_bounds(small_tree, 2, 50.0)
        assert bounds.work_bound == pytest.approx(small_tree.total_work / 2)
        assert bounds.critical_path_bound == pytest.approx(critical_path_length(small_tree))
        assert bounds.classical == pytest.approx(max(bounds.work_bound, bounds.critical_path_bound))
        assert bounds.combined >= bounds.classical
        assert bounds.improvement_ratio >= 0.0

    def test_invalid_processors(self, small_tree):
        with pytest.raises(ValueError):
            lower_bounds(small_tree, 0, 10.0)
