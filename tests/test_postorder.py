"""Unit tests for postorder traversals (memPO, perfPO, average-memory, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.orders.peak_memory import sequential_average_memory, sequential_peak_memory
from repro.orders.postorder import (
    average_memory_postorder,
    enumerate_postorders,
    minimum_memory_postorder,
    natural_postorder,
    performance_postorder,
    postorder_from_child_keys,
    postorder_peaks,
    random_postorder,
)

from .helpers import random_tree


class TestGenericPostorder:
    def test_natural_postorder_is_postorder(self, small_tree):
        order = natural_postorder(small_tree)
        assert order.is_postorder(small_tree)

    def test_child_keys_array_and_callable_agree(self, small_tree):
        keys = np.arange(small_tree.n, dtype=float)
        a = postorder_from_child_keys(small_tree, keys)
        b = postorder_from_child_keys(small_tree, lambda i: float(i))
        assert a == b

    def test_child_keys_wrong_shape(self, small_tree):
        with pytest.raises(ValueError):
            postorder_from_child_keys(small_tree, np.ones(3))

    def test_descending_vs_ascending(self, star5):
        descending = postorder_from_child_keys(star5, star5.fout, descending=True)
        ascending = postorder_from_child_keys(star5, star5.fout, descending=False)
        assert descending.sequence.tolist() == [5, 4, 3, 2, 1, 0]
        assert ascending.sequence.tolist() == [1, 2, 3, 4, 5, 0]

    def test_random_postorder_valid(self, rng):
        tree = random_tree(rng, 40)
        order = random_postorder(tree, rng)
        assert order.is_postorder(tree)

    def test_all_generators_produce_postorders(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 30)
            for factory in (
                minimum_memory_postorder,
                performance_postorder,
                average_memory_postorder,
                natural_postorder,
            ):
                assert factory(tree).is_postorder(tree), factory.__name__


class TestMinimumMemoryPostorder:
    def test_chain_peak(self, chain3):
        order = minimum_memory_postorder(chain3)
        assert order.sequence.tolist() == [0, 1, 2]
        assert sequential_peak_memory(chain3, order) == pytest.approx(8.0)

    def test_peaks_recursion_matches_evaluator(self, rng):
        # The recursion value at the root equals the simulated peak of the
        # generated postorder.
        for _ in range(25):
            tree = random_tree(rng, int(rng.integers(2, 40)))
            peaks = postorder_peaks(tree)
            order = minimum_memory_postorder(tree)
            simulated = sequential_peak_memory(tree, order)
            assert simulated == pytest.approx(peaks[tree.root])

    def test_optimal_among_postorders_exhaustive(self, rng):
        # On small trees, memPO must match the best peak over *all* postorders.
        for _ in range(15):
            tree = random_tree(rng, int(rng.integers(2, 9)))
            best = min(
                sequential_peak_memory(tree, order) for order in enumerate_postorders(tree)
            )
            mem_po = sequential_peak_memory(tree, minimum_memory_postorder(tree))
            assert mem_po == pytest.approx(best)

    def test_beats_or_matches_other_postorders(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 60)
            mem_po = sequential_peak_memory(tree, minimum_memory_postorder(tree))
            for other in (natural_postorder(tree), performance_postorder(tree)):
                assert mem_po <= sequential_peak_memory(tree, other) + 1e-9


class TestAverageMemoryPostorder:
    def test_optimal_among_postorders_exhaustive(self, rng):
        # Appendix A: the T_i/f_i rule minimises the average memory among postorders.
        for _ in range(10):
            tree = random_tree(rng, int(rng.integers(2, 8)))
            best = min(
                sequential_average_memory(tree, order) for order in enumerate_postorders(tree)
            )
            ours = sequential_average_memory(tree, average_memory_postorder(tree))
            assert ours == pytest.approx(best, rel=1e-9)

    def test_handles_zero_output(self):
        tree = TaskTree(parent=[2, 2, -1], fout=[0.0, 1.0, 1.0], ptime=[5.0, 1.0, 1.0])
        order = average_memory_postorder(tree)
        assert order.is_postorder(tree)


class TestEnumeratePostorders:
    def test_count_star(self, star5):
        # A star with 5 leaves has 5! postorders.
        assert len(enumerate_postorders(star5)) == 120

    def test_count_chain(self, chain3):
        assert len(enumerate_postorders(chain3)) == 1

    def test_limit(self, rng):
        tree = random_tree(rng, 30)
        with pytest.raises(ValueError):
            enumerate_postorders(tree, limit=10)
