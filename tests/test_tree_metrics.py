"""Unit tests for structural tree metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tree_metrics as tm
from repro.core.task_tree import TaskTree

from .helpers import random_tree


class TestDepthHeight:
    def test_chain(self, chain3):
        assert tm.depths(chain3).tolist() == [2, 1, 0]
        assert tm.height(chain3) == 3

    def test_small_tree(self, small_tree):
        d = tm.depths(small_tree)
        assert d[6] == 0
        assert d[4] == d[5] == 1
        assert d[0] == d[3] == 2
        assert tm.height(small_tree) == 3

    def test_single_node(self):
        tree = TaskTree(parent=[-1])
        assert tm.height(tree) == 1
        assert tm.depths(tree).tolist() == [0]


class TestLevels:
    def test_bottom_levels_chain(self, chain3):
        # ptime = [1, 2, 3], root = 2.
        assert tm.bottom_levels(chain3).tolist() == [6.0, 5.0, 3.0]

    def test_top_levels_chain(self, chain3):
        assert tm.top_levels(chain3).tolist() == [1.0, 3.0, 6.0]

    def test_critical_path_small_tree(self, small_tree):
        # longest leaf-to-root chain: 1 (2) -> 4 (3) -> 6 (4) = 9
        assert tm.critical_path_length(small_tree) == pytest.approx(9.0)

    def test_bottom_ge_parent(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 40)
            bottom = tm.bottom_levels(tree)
            for child, parent in tree.edges():
                assert bottom[child] >= bottom[parent]

    def test_custom_weights(self, chain3):
        weights = np.asarray([1.0, 1.0, 1.0])
        assert tm.bottom_levels(chain3, weights=weights).tolist() == [3.0, 2.0, 1.0]


class TestSubtreeAggregates:
    def test_subtree_sizes(self, small_tree):
        sizes = tm.subtree_sizes(small_tree)
        assert sizes[6] == 7
        assert sizes[4] == 3
        assert sizes[0] == 1

    def test_subtree_work(self, small_tree):
        work = tm.subtree_work(small_tree)
        assert work[4] == pytest.approx(1.0 + 2.0 + 3.0)
        assert work[6] == pytest.approx(small_tree.total_work)

    def test_subtree_output(self, small_tree):
        out = tm.subtree_output(small_tree)
        assert out[5] == pytest.approx(4.0 + 1.0 + 2.0)
        assert out[6] == pytest.approx(float(small_tree.fout.sum()))

    def test_consistency_random(self, rng):
        tree = random_tree(rng, 80)
        sizes = tm.subtree_sizes(tree)
        for node in range(tree.n):
            assert sizes[node] == tree.subtree(node).size


class TestDegreesAndStats:
    def test_num_leaves(self, small_tree, star5):
        assert tm.num_leaves(small_tree) == 4
        assert tm.num_leaves(star5) == 5

    def test_degree_histogram(self, star5):
        assert tm.degree_histogram(star5) == {0: 5, 5: 1}

    def test_max_degree(self, small_tree, star5):
        assert tm.max_degree(small_tree) == 2
        assert tm.max_degree(star5) == 5

    def test_tree_stats(self, small_tree):
        stats = tm.tree_stats(small_tree)
        assert stats.n == 7
        assert stats.height == 3
        assert stats.num_leaves == 4
        assert stats.max_degree == 2
        assert stats.total_work == pytest.approx(small_tree.total_work)
        assert stats.max_mem_needed == pytest.approx(small_tree.max_mem_needed)
        d = stats.as_dict()
        assert d["n"] == 7 and "critical_path" in d
