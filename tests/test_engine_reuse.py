"""Reusing one scheduler object must be indistinguishable from a fresh one.

``EventDrivenScheduler._run`` re-initialises every piece of bookkeeping in
``_setup`` and clears the per-run engine references (tree, orders, ready
queue) when the simulation ends, so calling ``schedule`` repeatedly on the
same object — as the CLI, the ablations and user code do — must produce
identical :class:`~repro.schedulers.base.ScheduleResult`\\ s every time, and
must not keep the previously scheduled tree alive.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.orders import minimum_memory_postorder, sequential_peak_memory
from repro.schedulers import SCHEDULER_FACTORIES

from .helpers import random_tree

ENGINE_SCHEDULERS = sorted(SCHEDULER_FACTORIES)


def _schedule(scheduler, tree, factor=1.5):
    order = minimum_memory_postorder(tree)
    minimum = sequential_peak_memory(tree, order, check=False)
    return scheduler.schedule(tree, 4, factor * minimum, ao=order, eo=order)


def _assert_identical(first, second):
    assert second.completed == first.completed
    assert second.makespan == first.makespan
    assert second.peak_memory == first.peak_memory
    assert second.num_events == first.num_events
    assert second.failure_reason == first.failure_reason
    np.testing.assert_array_equal(second.start_times, first.start_times)
    np.testing.assert_array_equal(second.finish_times, first.finish_times)
    np.testing.assert_array_equal(second.processor, first.processor)


class TestSchedulerReuse:
    @pytest.mark.parametrize("name", ENGINE_SCHEDULERS)
    def test_two_runs_identical(self, name, rng):
        tree = random_tree(rng, 60)
        scheduler = SCHEDULER_FACTORIES[name]()
        first = _schedule(scheduler, tree)
        second = _schedule(scheduler, tree)
        _assert_identical(first, second)

    @pytest.mark.parametrize("name", ENGINE_SCHEDULERS)
    def test_interleaved_trees_identical_to_fresh(self, name, rng):
        """A run on tree B between two runs on tree A must not leak state."""
        tree_a = random_tree(rng, 50)
        tree_b = random_tree(rng, 70)
        reused = SCHEDULER_FACTORIES[name]()
        first = _schedule(reused, tree_a)
        _schedule(reused, tree_b)
        again = _schedule(reused, tree_a)
        fresh = _schedule(SCHEDULER_FACTORIES[name](), tree_a)
        _assert_identical(first, again)
        _assert_identical(fresh, again)

    def test_engine_state_cleared_after_run(self, rng):
        tree = random_tree(rng, 40)
        scheduler = SCHEDULER_FACTORIES["Activation"]()
        _schedule(scheduler, tree)
        assert scheduler.tree is None
        assert scheduler.ao is None and scheduler.eo is None
        assert scheduler.ready_queue is None

    def test_engine_state_cleared_when_hook_raises(self, rng):
        """The reset must run on the failure path too (try/finally)."""
        from repro.schedulers.activation import ActivationScheduler

        class ExplodingScheduler(ActivationScheduler):
            def _activate(self) -> None:
                raise RuntimeError("boom")

        tree = random_tree(rng, 20)
        scheduler = ExplodingScheduler()
        with pytest.raises(RuntimeError, match="boom"):
            _schedule(scheduler, tree)
        assert scheduler.tree is None
        assert scheduler.ao is None and scheduler.eo is None
        assert scheduler.ready_queue is None

    def test_scheduler_does_not_keep_tree_alive(self, rng):
        """The weak-keyed sweep memo relies on trees becoming collectable."""
        tree = random_tree(rng, 40)
        ref = weakref.ref(tree)
        scheduler = SCHEDULER_FACTORIES["MemBooking"]()
        _schedule(scheduler, tree)
        del tree
        gc.collect()
        assert ref() is None, "a finished scheduler must not pin the tree"
