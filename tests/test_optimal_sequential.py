"""Unit tests for the optimal sequential traversal (OptSeq, Liu 1987)."""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush

import numpy as np
import pytest

from repro.core.task_tree import NO_PARENT, TaskTree
from repro.orders.base import Ordering
from repro.orders.optimal_sequential import optimal_sequential_order, optimal_sequential_peak
from repro.orders.peak_memory import sequential_peak_memory
from repro.orders.postorder import minimum_memory_postorder

from .helpers import brute_force_optimal_peak, random_chainy_tree, random_tree


class TestBasics:
    def test_returns_topological_order(self, rng):
        for _ in range(20):
            tree = random_tree(rng, int(rng.integers(2, 60)))
            order = optimal_sequential_order(tree)
            assert order.is_topological(tree)
            assert sorted(order.sequence.tolist()) == list(range(tree.n))

    def test_single_node(self):
        tree = TaskTree(parent=[-1], fout=[2.0], nexec=[1.0])
        order = optimal_sequential_order(tree)
        assert order.sequence.tolist() == [0]
        assert optimal_sequential_peak(tree) == pytest.approx(3.0)

    def test_chain(self, chain3):
        order = optimal_sequential_order(chain3)
        assert order.sequence.tolist() == [0, 1, 2]

    def test_never_worse_than_mempo(self, rng):
        for _ in range(25):
            tree = random_tree(rng, int(rng.integers(2, 80)))
            opt = optimal_sequential_peak(tree)
            mem_po = sequential_peak_memory(tree, minimum_memory_postorder(tree))
            assert opt <= mem_po + 1e-9


# --------------------------------------------------------------------------- #
# Reference implementation for the parity test: the pre-rewrite algorithm,
# which accumulated one ``_Segment`` dataclass (with a Python node list) per
# hill–valley segment per level.  The production version performs the same
# merge and re-normalisation over flat arrays; this transcription pins down
# the behaviour the rewrite must reproduce *exactly* (same tie-breaking, same
# first-occurrence argmax/argmin), so the traversals must be bit-identical.
# --------------------------------------------------------------------------- #
@dataclass
class _Segment:
    hill: float
    valley: float
    nodes: list[int]

    @property
    def key(self) -> float:
        return self.hill - self.valley


def _reference_merge(children_segments: list[list[_Segment]]) -> list[_Segment]:
    if len(children_segments) == 1:
        return list(children_segments[0])
    heap: list[tuple[float, int, int]] = []
    for child_pos, segments in enumerate(children_segments):
        if segments:
            heap.append((-segments[0].key, child_pos, 0))
    heapify(heap)
    merged: list[_Segment] = []
    while heap:
        _, child_pos, index = heappop(heap)
        segments = children_segments[child_pos]
        merged.append(segments[index])
        if index + 1 < len(segments):
            heappush(heap, (-segments[index + 1].key, child_pos, index + 1))
    return merged


def _reference_canonical(
    tree: TaskTree, nodes: list[int], child_fout: np.ndarray
) -> list[_Segment]:
    nodes_arr = np.asarray(nodes, dtype=np.int64)
    out = tree.fout[nodes_arr]
    delta = out - child_fout[nodes_arr]
    residents = np.cumsum(delta)
    peaks = residents - delta + tree.nexec[nodes_arr] + out
    n = len(nodes)
    segments: list[_Segment] = []
    start = 0
    base = 0.0
    while start < n:
        hill_pos = start + int(np.argmax(peaks[start:]))
        hill = float(peaks[hill_pos])
        valley_pos = hill_pos + int(np.argmin(residents[hill_pos:]))
        valley = float(residents[valley_pos])
        segments.append(
            _Segment(hill=hill - base, valley=valley - base, nodes=list(nodes[start : valley_pos + 1]))
        )
        base = valley
        start = valley_pos + 1
    return segments


def reference_optimal_order(tree: TaskTree) -> Ordering:
    child_fout = np.zeros(tree.n, dtype=np.float64)
    has_parent = tree.parent != NO_PARENT
    np.add.at(child_fout, tree.parent[has_parent], tree.fout[has_parent])
    segments_of: dict[int, list[_Segment]] = {}
    for node in tree.topological_order():
        kids = tree.children(node)
        if not kids:
            segments_of[node] = [
                _Segment(
                    hill=float(tree.nexec[node] + tree.fout[node]),
                    valley=float(tree.fout[node]),
                    nodes=[node],
                )
            ]
            continue
        merged = _reference_merge([segments_of.pop(c) for c in kids])
        order_nodes: list[int] = []
        for segment in merged:
            order_nodes.extend(segment.nodes)
        order_nodes.append(node)
        segments_of[node] = _reference_canonical(tree, order_nodes, child_fout)
    sequence: list[int] = []
    for segment in segments_of[tree.root]:
        sequence.extend(segment.nodes)
    return Ordering(np.asarray(sequence, dtype=np.int64), name="OptSeq-reference")


class TestArrayRewriteParity:
    """The array-based accumulation must match the reference bit-for-bit."""

    @pytest.mark.parametrize("seed", range(20))
    def test_identical_traversal_random_trees(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, int(rng.integers(1, 120)), integer_data=False)
        fast = optimal_sequential_order(tree)
        reference = reference_optimal_order(tree)
        assert fast.sequence.tolist() == reference.sequence.tolist()

    @pytest.mark.parametrize("seed", range(10))
    def test_identical_traversal_chainy_trees(self, seed):
        rng = np.random.default_rng(1000 + seed)
        tree = random_chainy_tree(rng, int(rng.integers(2, 80)))
        fast = optimal_sequential_order(tree)
        reference = reference_optimal_order(tree)
        assert fast.sequence.tolist() == reference.sequence.tolist()

    def test_identical_peak(self, rng):
        for _ in range(10):
            tree = random_tree(rng, int(rng.integers(2, 100)))
            assert optimal_sequential_peak(tree) == pytest.approx(
                sequential_peak_memory(tree, reference_optimal_order(tree), check=False)
            )


class TestOptimalityExhaustive:
    """Compare against brute-force enumeration of every topological order."""

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_small_random(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, int(rng.integers(2, 8)))
        assert optimal_sequential_peak(tree) == pytest.approx(brute_force_optimal_peak(tree))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_chainy(self, seed):
        rng = np.random.default_rng(100 + seed)
        tree = random_chainy_tree(rng, int(rng.integers(2, 8)))
        assert optimal_sequential_peak(tree) == pytest.approx(brute_force_optimal_peak(tree))

    def test_classic_non_postorder_win(self):
        # A tree where interleaving subtrees beats every postorder:
        # root with two children; each child is a node with a large temporary
        # peak but a tiny output.  A postorder must keep one subtree's output
        # while climbing the other's peak; the optimal order does the same —
        # but with execution data the optimum can still only match the best
        # postorder, so we simply check consistency on a crafted example
        # where the known optimal value is easy to compute by hand.
        #     structure: 4 <- {2, 3}; 2 <- {0}; 3 <- {1}
        tree = TaskTree(
            parent=[2, 3, 4, 4, -1],
            fout=[10.0, 10.0, 1.0, 1.0, 1.0],
            nexec=[0.0, 0.0, 0.0, 0.0, 0.0],
            ptime=1.0,
        )
        opt = optimal_sequential_peak(tree)
        assert opt == pytest.approx(brute_force_optimal_peak(tree))
