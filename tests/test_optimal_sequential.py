"""Unit tests for the optimal sequential traversal (OptSeq, Liu 1987)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.orders.optimal_sequential import optimal_sequential_order, optimal_sequential_peak
from repro.orders.peak_memory import sequential_peak_memory
from repro.orders.postorder import minimum_memory_postorder

from .helpers import brute_force_optimal_peak, random_chainy_tree, random_tree


class TestBasics:
    def test_returns_topological_order(self, rng):
        for _ in range(20):
            tree = random_tree(rng, int(rng.integers(2, 60)))
            order = optimal_sequential_order(tree)
            assert order.is_topological(tree)
            assert sorted(order.sequence.tolist()) == list(range(tree.n))

    def test_single_node(self):
        tree = TaskTree(parent=[-1], fout=[2.0], nexec=[1.0])
        order = optimal_sequential_order(tree)
        assert order.sequence.tolist() == [0]
        assert optimal_sequential_peak(tree) == pytest.approx(3.0)

    def test_chain(self, chain3):
        order = optimal_sequential_order(chain3)
        assert order.sequence.tolist() == [0, 1, 2]

    def test_never_worse_than_mempo(self, rng):
        for _ in range(25):
            tree = random_tree(rng, int(rng.integers(2, 80)))
            opt = optimal_sequential_peak(tree)
            mem_po = sequential_peak_memory(tree, minimum_memory_postorder(tree))
            assert opt <= mem_po + 1e-9


class TestOptimalityExhaustive:
    """Compare against brute-force enumeration of every topological order."""

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_small_random(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, int(rng.integers(2, 8)))
        assert optimal_sequential_peak(tree) == pytest.approx(brute_force_optimal_peak(tree))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_chainy(self, seed):
        rng = np.random.default_rng(100 + seed)
        tree = random_chainy_tree(rng, int(rng.integers(2, 8)))
        assert optimal_sequential_peak(tree) == pytest.approx(brute_force_optimal_peak(tree))

    def test_classic_non_postorder_win(self):
        # A tree where interleaving subtrees beats every postorder:
        # root with two children; each child is a node with a large temporary
        # peak but a tiny output.  A postorder must keep one subtree's output
        # while climbing the other's peak; the optimal order does the same —
        # but with execution data the optimum can still only match the best
        # postorder, so we simply check consistency on a crafted example
        # where the known optimal value is easy to compute by hand.
        #     structure: 4 <- {2, 3}; 2 <- {0}; 3 <- {1}
        tree = TaskTree(
            parent=[2, 3, 4, 4, -1],
            fout=[10.0, 10.0, 1.0, 1.0, 1.0],
            nexec=[0.0, 0.0, 0.0, 0.0, 0.0],
            ptime=1.0,
        )
        opt = optimal_sequential_peak(tree)
        assert opt == pytest.approx(brute_force_optimal_peak(tree))
