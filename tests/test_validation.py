"""Unit tests for schedule validation and memory-profile reconstruction."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.schedulers.base import UNSCHEDULED, ScheduleResult
from repro.schedulers.validation import memory_profile, validate_schedule


def _make_result(tree, start, finish, processor, *, p=2, limit=100.0, completed=True):
    start = np.asarray(start, dtype=float)
    finish = np.asarray(finish, dtype=float)
    return ScheduleResult(
        scheduler="handmade",
        tree_size=tree.n,
        num_processors=p,
        memory_limit=limit,
        completed=completed,
        makespan=float(np.nanmax(finish)) if completed else math.inf,
        start_times=start,
        finish_times=finish,
        processor=np.asarray(processor, dtype=np.int64),
        peak_memory=math.nan,
        scheduling_seconds=0.0,
        num_events=tree.n,
    )


@pytest.fixture
def two_leaf_tree() -> TaskTree:
    """Root 2 with children 0 and 1."""
    return TaskTree(
        parent=[2, 2, -1],
        fout=[2.0, 3.0, 4.0],
        nexec=[1.0, 1.0, 2.0],
        ptime=[2.0, 2.0, 3.0],
    )


class TestMemoryProfile:
    def test_sequential_profile(self, two_leaf_tree):
        # 0 on [0,2), 1 on [2,4), 2 on [4,7) -- sequential on one processor.
        result = _make_result(two_leaf_tree, [0, 2, 4], [2, 4, 7], [0, 0, 0], p=1)
        profile = memory_profile(two_leaf_tree, result)
        # During 0: f0 + n0 = 3; during 1: f0 + f1 + n1 = 6;
        # during 2: f0 + f1 + f2 + n2 = 11; after 2: f2 = 4.
        assert profile.at(1.0) == pytest.approx(3.0)
        assert profile.at(3.0) == pytest.approx(6.0)
        assert profile.at(5.0) == pytest.approx(11.0)
        assert profile.peak == pytest.approx(11.0)

    def test_parallel_profile(self, two_leaf_tree):
        # Leaves in parallel on [0,2), root on [2,5).
        result = _make_result(two_leaf_tree, [0, 0, 2], [2, 2, 5], [0, 1, 0])
        profile = memory_profile(two_leaf_tree, result)
        assert profile.at(1.0) == pytest.approx((2 + 1) + (3 + 1))
        assert profile.at(3.0) == pytest.approx(2 + 3 + 2 + 4)
        assert profile.peak == pytest.approx(11.0)
        # After the root completes only its output remains.
        assert profile.at(5.0) == pytest.approx(4.0)

    def test_average_between_bounds(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [2, 2, 5], [0, 1, 0])
        profile = memory_profile(two_leaf_tree, result)
        assert profile.memory.min() <= profile.average() <= profile.peak

    def test_partial_schedule(self, two_leaf_tree):
        # Only leaf 0 ran; its output stays resident until the horizon.
        result = _make_result(
            two_leaf_tree,
            [0, np.nan, np.nan],
            [2, np.nan, np.nan],
            [0, UNSCHEDULED, UNSCHEDULED],
            completed=False,
        )
        profile = memory_profile(two_leaf_tree, result)
        assert profile.peak == pytest.approx(3.0)
        assert profile.at(2.0) == pytest.approx(2.0)

    def test_empty_schedule(self, two_leaf_tree):
        result = _make_result(
            two_leaf_tree,
            [np.nan] * 3,
            [np.nan] * 3,
            [UNSCHEDULED] * 3,
            completed=False,
        )
        assert memory_profile(two_leaf_tree, result).peak == 0.0


class TestValidateSchedule:
    def test_valid_schedule(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [2, 2, 5], [0, 1, 0])
        report = validate_schedule(two_leaf_tree, result)
        assert report.valid, report.errors
        report.raise_if_invalid()
        assert report.peak_memory == pytest.approx(11.0)

    def test_wrong_duration_detected(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [1, 2, 5], [0, 1, 0])
        report = validate_schedule(two_leaf_tree, result)
        assert not report.valid
        assert any("ran for" in e for e in report.errors)

    def test_precedence_violation_detected(self, two_leaf_tree):
        # Root starts before leaf 1 finishes.
        result = _make_result(two_leaf_tree, [0, 0, 1], [2, 2, 4], [0, 1, 0])
        report = validate_schedule(two_leaf_tree, result)
        assert not report.valid
        assert any("before child" in e for e in report.errors)

    def test_processor_overload_detected(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [2, 2, 5], [0, 1, 0], p=1)
        report = validate_schedule(two_leaf_tree, result)
        assert not report.valid
        assert any("simultaneously" in e for e in report.errors)

    def test_same_processor_overlap_detected(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [2, 2, 5], [0, 0, 0])
        report = validate_schedule(two_leaf_tree, result)
        assert not report.valid
        assert any("overlap on processor" in e for e in report.errors)

    def test_memory_violation_detected(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [2, 2, 5], [0, 1, 0], limit=10.0)
        report = validate_schedule(two_leaf_tree, result)
        assert not report.valid
        assert any("memory" in e for e in report.errors)

    def test_incomplete_completion_claim_detected(self, two_leaf_tree):
        result = _make_result(
            two_leaf_tree,
            [0, np.nan, np.nan],
            [2, np.nan, np.nan],
            [0, UNSCHEDULED, UNSCHEDULED],
            completed=True,
        )
        report = validate_schedule(two_leaf_tree, result)
        assert not report.valid

    def test_raise_if_invalid(self, two_leaf_tree):
        result = _make_result(two_leaf_tree, [0, 0, 2], [1, 2, 5], [0, 1, 0])
        with pytest.raises(AssertionError):
            validate_schedule(two_leaf_tree, result).raise_if_invalid()
