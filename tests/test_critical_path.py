"""Unit tests for the critical-path (CP) ordering."""

from __future__ import annotations


from repro.core.task_tree import TaskTree
from repro.core.tree_metrics import bottom_levels
from repro.orders.critical_path import critical_path_order

from .helpers import random_tree


class TestCriticalPathOrder:
    def test_is_topological(self, rng):
        for _ in range(20):
            tree = random_tree(rng, int(rng.integers(2, 60)))
            assert critical_path_order(tree).is_topological(tree)

    def test_sorted_by_bottom_level(self, small_tree):
        order = critical_path_order(small_tree)
        bottom = bottom_levels(small_tree)
        values = bottom[order.sequence]
        assert all(values[i] >= values[i + 1] - 1e-12 for i in range(len(values) - 1))

    def test_zero_duration_still_topological(self):
        # With all-zero durations every bottom level ties; the depth tie-break
        # must keep the order topological.
        tree = TaskTree(parent=[1, 2, -1, 2], ptime=0.0)
        assert critical_path_order(tree).is_topological(tree)

    def test_root_is_last(self, rng):
        tree = random_tree(rng, 30)
        order = critical_path_order(tree)
        assert order.sequence[-1] == tree.root

    def test_name(self, small_tree):
        assert critical_path_order(small_tree).name == "CP"
