"""Unit tests for the plain-text / CSV reporting helpers."""

from __future__ import annotations

import csv
import math

from repro.experiments.reporting import (
    _format_value,
    format_records_table,
    format_series_table,
    quantize_x,
    read_records_csv,
    write_records_csv,
    write_series_csv,
)


class TestSeriesTable:
    def test_alignment_and_content(self):
        series = {
            "Activation": [(1.0, 1.5), (2.0, 1.2)],
            "MemBooking": [(1.0, 1.3), (2.0, 1.0)],
        }
        text = format_series_table(series, x_label="memory", title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Activation" in lines[1] and "MemBooking" in lines[1]
        assert len(lines) == 3 + 2  # title, header, rule, two rows

    def test_missing_points_rendered_as_dash(self):
        series = {"A": [(1.0, 2.0)], "B": [(2.0, 3.0)]}
        text = format_series_table(series)
        assert "-" in text.splitlines()[-1]

    def test_nan_rendered_as_dash(self):
        text = format_series_table({"A": [(1.0, math.nan)]})
        assert text.splitlines()[-1].split()[-1] == "-"

    def test_float_noise_x_values_share_a_row(self):
        """Two series whose x keys differ by float noise must not split rows."""
        noisy = 2.0 + 2.0 * math.ulp(2.0)
        series = {"A": [(2.0, 1.0)], "B": [(noisy, 3.0)]}
        lines = format_series_table(series).splitlines()
        assert len(lines) == 3  # header, rule, ONE shared row
        assert "1.000" in lines[-1] and "3.000" in lines[-1]


class TestFormatValue:
    def test_non_finite_rendered_explicitly(self):
        assert _format_value(math.inf) == "inf"
        assert _format_value(-math.inf) == "-inf"
        assert _format_value(math.nan) == "-"

    def test_zero_keeps_its_sign(self):
        assert _format_value(0.0) == "0"
        assert _format_value(-0.0) == "-0"

    def test_finite_formatting_unchanged(self):
        assert _format_value(1.5) == "1.500"
        assert _format_value(12345.0) == "1.234e+04"
        assert _format_value(0.001) == "1.000e-03"
        assert _format_value("text") == "text"


class TestQuantizeX:
    def test_noise_collapses_exact_preserved(self):
        assert quantize_x(2.0 + 2.0 * math.ulp(2.0)) == quantize_x(2.0)
        assert quantize_x(1.5) == 1.5
        assert quantize_x(1.5) != quantize_x(1.6)


class TestRecordsTable:
    def test_columns_and_truncation(self):
        records = [{"a": i, "b": i * 2.0} for i in range(10)]
        text = format_records_table(records, ["a", "b"], max_rows=3, title="records")
        lines = text.splitlines()
        assert lines[0] == "records"
        assert len(lines) == 3 + 3


class TestCsvWriters:
    def test_records_csv_roundtrip(self, tmp_path):
        records = [
            {"x": 1, "y": 2.5},
            {"x": 2, "z": "hello"},
        ]
        path = write_records_csv(records, tmp_path / "out" / "records.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["x"] == "1"
        assert rows[1]["z"] == "hello"
        assert set(rows[0].keys()) == {"x", "y", "z"}

    def test_series_csv(self, tmp_path):
        series = {"A": [(1.0, 2.0), (2.0, 3.0)], "B": [(1.0, 5.0)]}
        path = write_series_csv(series, tmp_path / "series.csv", x_label="factor")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["factor", "A", "B"]
        assert rows[1][0] == "1.0"
        assert rows[2][2] == ""  # B has no point at x=2

    def test_series_csv_quantises_x_keys(self, tmp_path):
        noisy = 2.0 + 2.0 * math.ulp(2.0)
        series = {"A": [(2.0, 1.0)], "B": [(noisy, 3.0)]}
        path = write_series_csv(series, tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 2  # header + the ONE merged row
        assert rows[1] == ["2.0", "1.0", "3.0"]


class TestCsvRoundTrip:
    def test_types_and_missing_keys_survive(self, tmp_path):
        records = [
            {"i": 1, "f": 2.5, "b": True, "s": "hello", "none": None},
            {"i": 2, "f": math.nan, "b": False, "s": "true"},  # "s" is a *string*
            {"f": math.inf, "s": "-3.5", "extra": "1_0"},
        ]
        path = write_records_csv(records, tmp_path / "r.csv")
        out = read_records_csv(path)
        assert len(out) == 3
        assert out[0] == {"i": 1, "f": 2.5, "b": True, "s": "hello", "none": None}
        assert type(out[0]["i"]) is int and type(out[0]["f"]) is float
        assert out[1]["s"] == "true" and out[1]["b"] is False
        assert math.isnan(out[1]["f"])
        assert "i" not in out[2] and "b" not in out[2]  # missing stays missing
        assert out[2]["f"] == math.inf
        assert out[2]["s"] == "-3.5" and type(out[2]["s"]) is str
        assert out[2]["extra"] == "1_0"  # would int()-parse; must stay a string

    def test_empty_string_and_quotes_survive(self, tmp_path):
        records = [{"a": "", "b": 'say "hi"', "c": "null"}]
        out = read_records_csv(write_records_csv(records, tmp_path / "q.csv"))
        assert out == records

    def test_leading_quote_strings_survive(self, tmp_path):
        """Strings starting with a double quote must not crash the encoder."""
        records = [{"a": '"hi" she said', "b": '"fully quoted"', "c": '"'}]
        out = read_records_csv(write_records_csv(records, tmp_path / "lq.csv"))
        assert out == records

    def test_empty_inputs(self, tmp_path):
        path = write_records_csv([], tmp_path / "none.csv")
        assert read_records_csv(path) == []

    def test_sweep_records_roundtrip_exactly(self, tmp_path):
        """The CSV path must agree with the RecordTable encoding end to end."""
        from repro.experiments import SweepConfig, records_equal, run_sweep
        from repro.workloads import SyntheticTreeConfig, synthetic_trees

        trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=40), rng=3)
        table = run_sweep(
            trees,
            SweepConfig(schedulers=("Activation", "MemBooking"), memory_factors=(1.0, 2.0)),
        )
        out = read_records_csv(write_records_csv(table, tmp_path / "sweep.csv"))
        assert records_equal(out, table.to_dicts())
