"""Unit tests for the plain-text / CSV reporting helpers."""

from __future__ import annotations

import csv
import math

from repro.experiments.reporting import (
    format_records_table,
    format_series_table,
    write_records_csv,
    write_series_csv,
)


class TestSeriesTable:
    def test_alignment_and_content(self):
        series = {
            "Activation": [(1.0, 1.5), (2.0, 1.2)],
            "MemBooking": [(1.0, 1.3), (2.0, 1.0)],
        }
        text = format_series_table(series, x_label="memory", title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Activation" in lines[1] and "MemBooking" in lines[1]
        assert len(lines) == 3 + 2  # title, header, rule, two rows

    def test_missing_points_rendered_as_dash(self):
        series = {"A": [(1.0, 2.0)], "B": [(2.0, 3.0)]}
        text = format_series_table(series)
        assert "-" in text.splitlines()[-1]

    def test_nan_rendered_as_dash(self):
        text = format_series_table({"A": [(1.0, math.nan)]})
        assert text.splitlines()[-1].split()[-1] == "-"


class TestRecordsTable:
    def test_columns_and_truncation(self):
        records = [{"a": i, "b": i * 2.0} for i in range(10)]
        text = format_records_table(records, ["a", "b"], max_rows=3, title="records")
        lines = text.splitlines()
        assert lines[0] == "records"
        assert len(lines) == 3 + 3


class TestCsvWriters:
    def test_records_csv_roundtrip(self, tmp_path):
        records = [
            {"x": 1, "y": 2.5},
            {"x": 2, "z": "hello"},
        ]
        path = write_records_csv(records, tmp_path / "out" / "records.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["x"] == "1"
        assert rows[1]["z"] == "hello"
        assert set(rows[0].keys()) == {"x", "y", "z"}

    def test_series_csv(self, tmp_path):
        series = {"A": [(1.0, 2.0), (2.0, 3.0)], "B": [(1.0, 5.0)]}
        path = write_series_csv(series, tmp_path / "series.csv", x_label="factor")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["factor", "A", "B"]
        assert rows[1][0] == "1.0"
        assert rows[2][2] == ""  # B has no point at x=2
