"""Unit tests for the Section 7.1 synthetic tree generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tree_metrics import degree_histogram, height
from repro.workloads.synthetic import SyntheticTreeConfig, synthetic_tree, synthetic_trees


class TestConfig:
    def test_defaults(self):
        config = SyntheticTreeConfig()
        assert config.num_nodes == 1000
        assert config.exec_fraction == pytest.approx(0.10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            SyntheticTreeConfig(num_nodes=0)
        with pytest.raises(ValueError):
            SyntheticTreeConfig(weight_range=(100.0, 10.0))
        with pytest.raises(ValueError):
            SyntheticTreeConfig(exec_fraction=-0.1)
        with pytest.raises(ValueError):
            SyntheticTreeConfig(expansion="zigzag")  # type: ignore[arg-type]


class TestGenerator:
    def test_exact_size(self):
        for n in (1, 2, 10, 500):
            tree = synthetic_tree(num_nodes=n, rng=0)
            assert tree.n == n

    def test_deterministic_for_seed(self):
        a = synthetic_tree(num_nodes=300, rng=42)
        b = synthetic_tree(num_nodes=300, rng=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = synthetic_tree(num_nodes=300, rng=1)
        b = synthetic_tree(num_nodes=300, rng=2)
        assert a != b

    def test_weight_truncation(self):
        tree = synthetic_tree(num_nodes=2000, rng=3)
        assert tree.fout.min() >= 10.0
        assert tree.fout.max() <= 10_000.0

    def test_exec_and_time_proportional_to_output(self):
        config = SyntheticTreeConfig(num_nodes=200, exec_fraction=0.1, time_factor=2.0)
        tree = synthetic_tree(config, rng=5)
        assert np.allclose(tree.nexec, 0.1 * tree.fout)
        assert np.allclose(tree.ptime, 2.0 * tree.fout)

    def test_degree_bounded_by_five(self):
        tree = synthetic_tree(num_nodes=3000, rng=7)
        assert max(degree_histogram(tree)) <= 5

    def test_degree_distribution_roughly_matches(self):
        # Over a large tree the interior-node degree histogram should put most
        # of the mass on degree 1, as specified in Section 7.1.
        tree = synthetic_tree(num_nodes=5000, rng=11)
        histogram = degree_histogram(tree)
        interior = {d: c for d, c in histogram.items() if d > 0}
        total = sum(interior.values())
        assert interior.get(1, 0) / total > 0.4

    def test_expansion_modes_change_depth(self):
        shallow = synthetic_tree(num_nodes=1000, expansion="breadth", rng=13)
        deep = synthetic_tree(num_nodes=1000, expansion="depth", rng=13)
        assert height(deep) > height(shallow)

    def test_config_with_overrides(self):
        config = SyntheticTreeConfig(num_nodes=100)
        tree = synthetic_tree(config, rng=1, num_nodes=50)
        assert tree.n == 50


class TestBatch:
    def test_batch_generation(self):
        trees = synthetic_trees(5, SyntheticTreeConfig(num_nodes=200), rng=17)
        assert len(trees) == 5
        assert all(tree.n == 200 for tree in trees)
        # Trees from the same stream must differ from each other.
        assert len({hash(tree) for tree in trees}) == 5
