"""Smoke tests of the per-figure experiment entry points (tiny scale).

The full reproduction (with the qualitative assertions at the default scale)
lives in ``benchmarks/``; here we only check that every figure function runs
end-to-end on the tiny datasets, produces well-formed series and renders to
text.  A few cheap structural checks are asserted where they must hold at any
scale.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import FIGURES, FigureResult, run_figure

CHEAP_FIGURES = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "lb_stats",
    "redtree_failures",
    "ablation_lazy_subtree",
]


class TestFigureRegistry:
    def test_registry_contains_every_paper_figure(self):
        expected = {f"fig{i}" for i in range(2, 16)}
        assert expected <= set(FIGURES)
        assert {"lb_stats", "redtree_failures"} <= set(FIGURES)

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_timing_figures_use_min_of_n_timing(self):
        from repro.experiments.figures import FIGURE_SPECS

        for figure_id in ("fig5", "fig6", "fig13"):
            grid = FIGURE_SPECS[figure_id].grids[0]
            assert (grid.timing_repetitions or 1) > 1, (
                f"{figure_id} is a timing figure: its committed artifact must "
                f"come from min-of-N timing to be stable across regenerations"
            )
            assert (
                grid.value_config().timing_repetitions == grid.timing_repetitions
            )


@pytest.mark.parametrize("figure_id", CHEAP_FIGURES)
class TestFigureSmoke:
    def test_runs_and_renders(self, figure_id):
        result = run_figure(figure_id, scale="tiny")
        assert isinstance(result, FigureResult)
        assert result.figure_id == figure_id
        assert result.series, "every figure must produce at least one series"
        for name, points in result.series.items():
            assert isinstance(name, str)
            for x, y in points:
                assert math.isfinite(x)
        text = result.as_text()
        assert figure_id in text
        assert "check[" in text


class TestSelectedShapes:
    """Scale-independent structural properties."""

    def test_fig2_membooking_present_at_minimum_memory(self):
        result = run_figure("fig2", scale="tiny")
        mb = dict(result.series["MemBooking"])
        assert 1.0 in mb
        assert all(y >= 1.0 - 1e-9 for y in mb.values() if math.isfinite(y))

    def test_redtree_failures_membooking_never_fails(self):
        result = run_figure("redtree_failures", scale="tiny")
        assert all(y == 0.0 for _, y in result.series["MemBooking"])

    def test_lb_stats_fractions_in_range(self):
        result = run_figure("lb_stats", scale="tiny")
        for name, points in result.series.items():
            if name.endswith("improved_fraction"):
                assert all(0.0 <= y <= 1.0 for _, y in points)

    def test_speedup_series_have_decile_bands(self):
        result = run_figure("fig11", scale="tiny")
        assert set(result.series) == {"mean", "median", "decile_1", "decile_9"}
        for (x1, low), (x2, high) in zip(result.series["decile_1"], result.series["decile_9"]):
            assert x1 == x2
            assert low <= high + 1e-12
