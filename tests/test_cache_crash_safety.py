"""Crash-safety of the persistent caches: torn writes read as misses.

The result cache's row store (``rows.records`` + ``rows.index.json``) and
the workload cache's tree arenas publish through
:mod:`repro.resilience.atomic` (temp file + fsync + atomic rename), so a
writer killed at *any* point — simulated here both by deterministic
truncation at every interesting length and by a real ``SIGKILL`` landing
mid-``put_rows`` in a subprocess — can only ever produce (a) the old bytes,
(b) the new bytes, or (c) an inert ``*.tmp`` next to intact data.  Readers
must treat anything torn as a cache miss, never crash, and the next write
must rebuild a clean store.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.plan import SweepPlan, execute_plan_cached
from repro.experiments.records import ResultCache
from repro.resilience import atomic_write_bytes, atomic_write_text, reset_run_health
from repro.workloads import SyntheticTreeConfig, synthetic_trees
from repro.workloads.datasets import WorkloadCache

CONFIG = SweepConfig(schedulers=("Activation",), memory_factors=(2.0,), processors=(4,))


@pytest.fixture(autouse=True)
def _fresh_health():
    reset_run_health()
    yield
    reset_run_health()


@pytest.fixture
def trees():
    return synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)


class TestAtomicWriter:
    def test_write_and_overwrite(self, tmp_path):
        path = tmp_path / "nested" / "blob.bin"
        assert atomic_write_bytes(path, b"one") == path
        assert path.read_bytes() == b"one"
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert not path.with_name("blob.bin.tmp").exists()

    def test_text_helper(self, tmp_path):
        path = tmp_path / "t.json"
        atomic_write_text(path, '{"a": 1}')
        assert json.loads(path.read_text()) == {"a": 1}

    def test_leftover_tmp_is_inert_and_overwritten(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"good")
        # A killed writer's leftover temp file must not shadow the data...
        path.with_name("blob.bin.tmp").write_bytes(b"torn")
        assert path.read_bytes() == b"good"
        # ...and the next successful write simply replaces it.
        atomic_write_bytes(path, b"better")
        assert path.read_bytes() == b"better"
        assert not path.with_name("blob.bin.tmp").exists()


class TestTruncatedRowStore:
    def _fill(self, directory, trees):
        cache = ResultCache(directory)
        plan = SweepPlan.from_config(CONFIG, len(trees))
        execute_plan_cached(trees, plan, cache=cache)
        return plan

    def test_truncation_at_every_length_is_a_miss_never_a_crash(
        self, tmp_path, trees
    ):
        plan = self._fill(tmp_path, trees)
        keys = plan.instance_keys(trees)
        payload = (tmp_path / "rows.records").read_bytes()
        # Every header boundary plus a spread of cut points through the body.
        cuts = sorted({0, 1, 7, 8, 15, 16, 31, len(payload) // 2, len(payload) - 1})
        for cut in cuts:
            store = tmp_path / f"case-{cut}"
            store.mkdir()
            (store / "rows.records").write_bytes(payload[:cut])
            (store / "rows.index.json").write_bytes(
                (tmp_path / "rows.index.json").read_bytes()
            )
            cache = ResultCache(store)
            assert cache.get_rows(keys) == {}, f"cut at {cut} served torn rows"

    def test_torn_index_is_a_miss(self, tmp_path, trees):
        plan = self._fill(tmp_path, trees)
        keys = plan.instance_keys(trees)
        index_path = tmp_path / "rows.index.json"
        index_path.write_text(index_path.read_text()[: len(index_path.read_text()) // 2])
        cache = ResultCache(tmp_path)
        assert cache.get_rows(keys) == {}

    def test_rewrite_after_truncation_recovers(self, tmp_path, trees):
        plan = self._fill(tmp_path, trees)
        keys = plan.instance_keys(trees)
        rows = tmp_path / "rows.records"
        rows.write_bytes(rows.read_bytes()[:20])
        cache = ResultCache(tmp_path)
        execute_plan_cached(trees, plan, cache=cache)
        warm = ResultCache(tmp_path)
        assert len(warm.get_rows(keys)) == len(keys)


class TestKillMidWrite:
    def test_sigkill_during_put_rows_leaves_store_loadable(self, tmp_path, trees):
        """A writer killed mid-``put_rows`` never leaves a crashing store.

        The subprocess fills the cache once (so there is an old generation
        to preserve), then loops ``put_rows`` forever; the parent SIGKILLs
        it mid-loop.  Whatever instant the kill landed, a fresh
        :class:`ResultCache` must open the directory without error and
        serve either the old rows or the new rows — all-or-nothing.
        """
        script = textwrap.dedent(
            """
            import sys
            from repro.experiments.config import SweepConfig
            from repro.experiments.plan import SweepPlan, execute_plan_cached
            from repro.experiments.records import ResultCache
            from repro.workloads import SyntheticTreeConfig, synthetic_trees

            directory = sys.argv[1]
            trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)
            config = SweepConfig(
                schedulers=("Activation",), memory_factors=(2.0,), processors=(4,)
            )
            plan = SweepPlan.from_config(config, len(trees))
            cache = ResultCache(directory)
            execute_plan_cached(trees, plan, cache=cache)
            keys = plan.instance_keys(trees)
            rows = [cache.get_rows(keys)[key] for key in keys]
            print("READY", flush=True)
            while True:  # overwrite the same rows until killed
                cache.put_rows(zip(keys, rows))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        env.pop("REPRO_FAULTS", None)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout is not None and proc.stdout.readline().strip() == "READY"
            # Let a few write cycles run, then kill mid-flight.
            import time

            time.sleep(0.2)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
        cache = ResultCache(tmp_path)
        plan = SweepPlan.from_config(CONFIG, len(trees))
        keys = plan.instance_keys(trees)
        served = cache.get_rows(keys)
        # Atomic rename guarantees all-or-nothing: with one generation ever
        # written per key, a readable store serves every key or none.
        assert len(served) in (0, len(keys))
        # And the next run rebuilds/refills regardless.
        execute_plan_cached(trees, plan, cache=cache)
        warm = ResultCache(tmp_path)
        assert len(warm.get_rows(keys)) == len(keys)


class TestWorkloadCacheCrashSafety:
    def test_torn_arena_is_a_miss_and_quarantined(self, tmp_path, trees):
        cache = WorkloadCache(tmp_path)
        key = cache.key(("synthetic", "test", 1))
        cache.put(key, trees)
        assert cache.get(key) is not None
        arena = cache.path(key)
        arena.write_bytes(arena.read_bytes()[:10])
        fresh = WorkloadCache(tmp_path)
        assert fresh.get(key) is None
        assert arena.with_name(arena.name + ".quarantined").exists()
        # Regeneration overwrites cleanly.
        fresh.put(key, trees)
        assert fresh.get(key) is not None

    def test_leftover_tmp_does_not_break_fetch(self, tmp_path, trees):
        cache = WorkloadCache(tmp_path)
        key = cache.key(("synthetic", "test", 2))
        (tmp_path / f"{key}.trees.tmp").write_bytes(b"torn half-write")
        fetched = cache.fetch(("synthetic", "test", 2), lambda: trees)
        assert len(fetched) == len(trees)
        assert cache.misses == 1
        warm = WorkloadCache(tmp_path)
        assert warm.get(key) is not None
