"""Unit and integration tests for the fault-tolerant execution plane.

Covers the deterministic :class:`~repro.resilience.faults.FaultPlan`
(grammar, pure firing decision, parent-site counters), the
:class:`~repro.resilience.health.RunHealth` ledger, the retry/quarantine
machinery of :func:`~repro.experiments.runner.resilient_run_single`, the
recovery behaviour of every backend under injected crashes/hangs, the
degradation ladder and the cache-corruption quarantine.  The cross-backend
byte-identity fuzz lives in ``test_fault_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.plan import SweepPlan, execute_plan_cached
from repro.experiments.records import ResultCache, records_equal
from repro.experiments.runner import (
    prepare_instance,
    quarantine_record,
    resilient_run_single,
    run_single,
    run_sweep,
)
from repro.resilience import (
    FAULT_KINDS,
    QUARANTINE_PREFIX,
    FaultPlan,
    RetrySettings,
    current_health,
    instance_fault_key,
    parse_fault_plan,
    reset_fault_state,
    reset_run_health,
    resolve_fault_plan,
)
from repro.workloads import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = ("scheduling_seconds", "scheduling_seconds_per_node")


@pytest.fixture(autouse=True)
def _fresh_resilience_state():
    """Each test starts with a clean health ledger and plan cache."""
    reset_run_health()
    reset_fault_state()
    yield
    reset_run_health()
    reset_fault_state()


@pytest.fixture
def trees():
    return synthetic_trees(3, SyntheticTreeConfig(num_nodes=40), rng=11)


SMALL = SweepConfig(schedulers=("Activation",), memory_factors=(2.0,), processors=(4,))


# --------------------------------------------------------------------------- #
# plan grammar
# --------------------------------------------------------------------------- #
class TestParseFaultPlan:
    def test_full_grammar(self):
        plan = parse_fault_plan(
            "seed=7;worker-crash:40;hang:97:2;watchdog=5;backoff=0.05;hang=12;retries=6"
        )
        assert plan.seed == 7
        assert plan.rules["worker-crash"].period == 40
        assert plan.rules["worker-crash"].max_attempt == 1
        assert plan.rules["hang"].period == 97
        assert plan.rules["hang"].max_attempt == 2
        assert plan.watchdog == 5.0
        assert plan.backoff == 0.05
        assert plan.hang_seconds == 12.0
        assert plan.max_attempts == 6

    def test_empty_parts_are_skipped(self):
        plan = parse_fault_plan(";;os-transient:3;;")
        assert set(plan.rules) == {"os-transient"}

    @pytest.mark.parametrize(
        "bad",
        [
            "bogus-kind:2",
            "worker-crash:0",
            "worker-crash:2:0",
            "worker-crash:2:3:4",
            "seed=x",
            "watchdog=0",
            "frequency=2",
            "justaword",
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_plan(bad)

    def test_every_kind_accepted(self):
        spec = ";".join(f"{kind}:3" for kind in sorted(FAULT_KINDS))
        assert set(parse_fault_plan(spec).rules) == FAULT_KINDS

    def test_config_validates_plan_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            SweepConfig(fault_plan="not-a-kind:2")
        assert SweepConfig(fault_plan="worker-crash:5").fault_plan == "worker-crash:5"


class TestFiringDecision:
    def test_pure_and_deterministic(self):
        a = parse_fault_plan("seed=1;os-transient:3")
        b = parse_fault_plan("seed=1;os-transient:3")
        keys = [f"inst:{i}" for i in range(50)]
        fires = [a.should_fire("os-transient", k, 0) for k in keys]
        assert fires == [b.should_fire("os-transient", k, 0) for k in keys]
        # Period 3 hits roughly a third of the keys — and at least one.
        assert 0 < sum(fires) < len(keys)

    def test_seed_changes_selection(self):
        a = parse_fault_plan("seed=1;os-transient:2")
        b = parse_fault_plan("seed=2;os-transient:2")
        keys = [f"inst:{i}" for i in range(64)]
        assert [a.should_fire("os-transient", k, 0) for k in keys] != [
            b.should_fire("os-transient", k, 0) for k in keys
        ]

    def test_max_attempt_bounds_refires(self):
        plan = parse_fault_plan("os-transient:1:2")
        assert plan.should_fire("os-transient", "k", 0)
        assert plan.should_fire("os-transient", "k", 1)
        assert not plan.should_fire("os-transient", "k", 2)

    def test_unarmed_kind_never_fires(self):
        plan = parse_fault_plan("hang:1")
        assert not plan.should_fire("worker-crash", "k", 0)

    def test_parent_site_fire_counts_once(self):
        plan = parse_fault_plan("cache-corrupt:1")
        assert plan.fire("cache-corrupt", "rows-store")
        assert not plan.fire("cache-corrupt", "rows-store")
        assert current_health().injected["cache-corrupt"] == 1

    def test_maybe_raise_records_injection(self):
        plan = parse_fault_plan("shm-lost:1")
        with pytest.raises(OSError, match="injected shm-lost"):
            plan.maybe_raise("shm-lost", "arena")
        assert current_health().injected["shm-lost"] == 1
        # Fire-once: the retry does not re-raise.
        plan.maybe_raise("shm-lost", "arena")

    def test_preview_matches_worker_decision(self):
        plan = parse_fault_plan("worker-crash:1")
        plan.preview(("worker-crash", "hang"), "k", 0)
        assert current_health().injected == {"worker-crash": 1}


class TestResolution:
    def test_none_without_spec_or_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_fault_plan(None) is None

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang:5")
        reset_fault_state()
        plan = resolve_fault_plan(None)
        assert plan is not None and "hang" in plan.rules

    def test_explicit_spec_wins_and_caches(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "hang:5")
        plan = resolve_fault_plan("os-transient:2")
        assert set(plan.rules) == {"os-transient"}
        assert resolve_fault_plan("os-transient:2") is plan

    def test_retry_settings_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG", raising=False)
        settings = RetrySettings.from_plan(None)
        assert settings.watchdog == 600.0
        monkeypatch.setenv("REPRO_WATCHDOG", "42")
        assert RetrySettings.from_plan(None).watchdog == 42.0
        plan = parse_fault_plan("watchdog=3;retries=2;backoff=0.5")
        settings = RetrySettings.from_plan(plan)
        assert (settings.watchdog, settings.max_attempts, settings.backoff) == (3.0, 2, 0.5)


# --------------------------------------------------------------------------- #
# health ledger
# --------------------------------------------------------------------------- #
class TestRunHealth:
    def test_reset_returns_fresh_singleton(self):
        old = current_health()
        old.retries = 5
        new = reset_run_health()
        assert new is current_health()
        assert new.retries == 0 and old is not new

    def test_summary_and_json_roundtrip(self):
        import json

        health = current_health()
        health.record_injected("hang")
        health.record_degradation("batched->serial")
        health.retries = 2
        payload = json.loads(health.to_json())
        assert payload["injected"] == {"hang": 1}
        assert payload["degradations"] == {"batched->serial": 1}
        assert payload["retries"] == 2
        assert "1 faults injected" in health.summary()
        assert health.any_activity()
        assert not reset_run_health().any_activity()


# --------------------------------------------------------------------------- #
# instance-level retry and quarantine
# --------------------------------------------------------------------------- #
class TestResilientRunSingle:
    def test_no_plan_matches_run_single(self, trees):
        context = prepare_instance(trees[0], 0, SMALL)
        a = run_single(context, "Activation", 4, 2.0, SMALL)
        b = resilient_run_single(context, "Activation", 4, 2.0, SMALL, None)
        assert records_equal([a], [b], ignore=TIMING_FIELDS)

    def test_transient_fault_retries_to_identical_record(self, trees):
        context = prepare_instance(trees[0], 0, SMALL)
        plan = parse_fault_plan("os-transient:1;backoff=0")
        clean = run_single(context, "Activation", 4, 2.0, SMALL)
        recovered = resilient_run_single(context, "Activation", 4, 2.0, SMALL, plan)
        assert records_equal([clean], [recovered], ignore=TIMING_FIELDS)
        health = current_health()
        assert health.injected["os-transient"] == 1
        assert health.retries == 1
        assert health.quarantined_instances == 0

    def test_exhausted_budget_quarantines(self, trees):
        context = prepare_instance(trees[0], 0, SMALL)
        plan = parse_fault_plan("os-transient:1:99;retries=3;backoff=0")
        record = resilient_run_single(context, "Activation", 4, 2.0, SMALL, plan)
        assert record["completed"] is False
        assert record["failure_reason"].startswith(QUARANTINE_PREFIX)
        assert current_health().quarantined_instances == 1
        # The quarantined record still carries the instance identity.
        assert record["scheduler"] == "Activation"
        assert record["num_processors"] == 4

    def test_quarantine_record_schema(self, trees):
        import math

        context = prepare_instance(trees[0], 0, SMALL)
        clean = run_single(context, "Activation", 4, 2.0, SMALL)
        poisoned = quarantine_record(
            context, "Activation", 4, 2.0, SMALL, f"{QUARANTINE_PREFIX}: test"
        )
        assert set(poisoned) == set(clean)
        assert poisoned["completed"] is False
        assert math.isinf(poisoned["makespan"])
        assert poisoned["failure_reason"] == f"{QUARANTINE_PREFIX}: test"

    def test_instance_fault_key_stable(self):
        assert instance_fault_key(3, "Activation", 8, 2.0) == "inst:3:Activation:8:2.0"


# --------------------------------------------------------------------------- #
# backend recovery (crash, hang, ladder)
# --------------------------------------------------------------------------- #
def _sweep(trees, **overrides):
    return run_sweep(trees, SMALL.with_overrides(**overrides)).to_dicts()


class TestBackendRecovery:
    def test_serial_backend_with_faults_identical(self, trees):
        base = _sweep(trees)
        injected = _sweep(trees, fault_plan="seed=2;os-transient:2;backoff=0")
        assert records_equal(base, injected, ignore=TIMING_FIELDS)

    @pytest.mark.parametrize("backend", ["process", "shared-memory"])
    def test_worker_crash_recovery(self, trees, backend):
        base = _sweep(trees)
        # seed 2 fires on some (not all) keys of both key families — the
        # per-tree keys of the process pool and the per-instance keys of
        # the shared-memory pool — so one round always makes progress.
        injected = _sweep(
            trees,
            backend=backend,
            jobs=2,
            fault_plan="seed=2;worker-crash:2;watchdog=5;backoff=0.01",
        )
        assert records_equal(base, injected, ignore=TIMING_FIELDS)
        health = current_health()
        assert health.injected.get("worker-crash", 0) >= 1
        assert health.timeouts >= 1
        assert health.retries >= 1
        assert health.lost_instances == 0

    @pytest.mark.parametrize("backend", ["process", "shared-memory"])
    def test_hang_watchdog_recovery(self, trees, backend):
        base = _sweep(trees)
        injected = _sweep(
            trees,
            backend=backend,
            jobs=2,
            fault_plan="seed=4;hang:2;hang=60;watchdog=3;backoff=0.01",
            # seed 4 fires on some (not all) keys of both key families.
        )
        assert records_equal(base, injected, ignore=TIMING_FIELDS)
        health = current_health()
        assert health.injected.get("hang", 0) >= 1
        assert health.timeouts >= 1

    def test_shm_lost_degrades_to_process(self, trees):
        base = _sweep(trees)
        injected = _sweep(
            trees, backend="shared-memory", jobs=2, fault_plan="seed=1;shm-lost:1"
        )
        assert records_equal(base, injected, ignore=TIMING_FIELDS)
        health = current_health()
        assert health.injected.get("shm-lost", 0) == 1
        assert health.degradations.get("shared-memory->process", 0) == 1

    def test_lane_engine_fault_degrades_batched_to_serial(self, trees):
        config = SMALL.with_overrides(
            schedulers=("Activation", "MemBooking"), backend="batched"
        )
        base = run_sweep(trees, config).to_dicts()
        injected = run_sweep(
            trees, config.with_overrides(fault_plan="seed=1;lane-engine:1")
        ).to_dicts()
        assert records_equal(base, injected, ignore=TIMING_FIELDS)
        health = current_health()
        assert health.injected.get("lane-engine", 0) >= 1
        assert health.degradations.get("batched->serial", 0) >= 1

    def test_unrecoverable_instance_quarantined_not_fatal(self, trees):
        # A transient fault armed past the retry budget poisons the instance:
        # the sweep still completes, the row lands in the failure plane.
        recs = _sweep(
            trees,
            backend="process",
            jobs=2,
            fault_plan="seed=1;os-transient:1:99;retries=2;watchdog=10;backoff=0",
        )
        assert all(not r["completed"] for r in recs)
        assert all(str(r["failure_reason"]).startswith(QUARANTINE_PREFIX) for r in recs)
        assert current_health().quarantined_instances == len(recs)


# --------------------------------------------------------------------------- #
# cache interaction
# --------------------------------------------------------------------------- #
class TestCacheInteraction:
    def test_key_ignores_fault_plan(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key(("synthetic", "tiny", 0), SMALL)
        armed = cache.key(
            ("synthetic", "tiny", 0), SMALL.with_overrides(fault_plan="hang:5")
        )
        assert base == armed

    def test_quarantined_rows_never_cached(self, trees, tmp_path):
        cache = ResultCache(tmp_path)
        config = SMALL.with_overrides(
            fault_plan="seed=1;os-transient:1:99;retries=2;backoff=0"
        )
        plan = SweepPlan.from_config(config, len(trees))
        poisoned = execute_plan_cached(trees, plan, cache=cache)
        assert all(
            str(r["failure_reason"]).startswith(QUARANTINE_PREFIX)
            for r in poisoned.to_dicts()
        )
        # A later fault-free run must recompute, not serve poisoned rows.
        reset_fault_state()
        clean_plan = SweepPlan.from_config(SMALL, len(trees))
        clean = execute_plan_cached(trees, clean_plan, cache=cache)
        assert all(r["completed"] for r in clean.to_dicts())

    def test_recoverable_faults_fill_cache_normally(self, trees, tmp_path):
        cache = ResultCache(tmp_path)
        config = SMALL.with_overrides(fault_plan="seed=2;os-transient:2;backoff=0")
        plan = SweepPlan.from_config(config, len(trees))
        first = execute_plan_cached(trees, plan, cache=cache)
        assert cache.rows_fresh == len(plan)
        warm_cache = ResultCache(tmp_path)
        warm = execute_plan_cached(
            trees, SweepPlan.from_config(SMALL, len(trees)), cache=warm_cache
        )
        assert warm_cache.rows_cached == len(plan)
        assert records_equal(first.to_dicts(), warm.to_dicts())

    def test_corrupt_row_store_quarantined_aside(self, trees, tmp_path):
        cache = ResultCache(tmp_path)
        plan = SweepPlan.from_config(SMALL, len(trees))
        execute_plan_cached(trees, plan, cache=cache)
        rows = tmp_path / "rows.records"
        rows.write_bytes(rows.read_bytes()[: rows.stat().st_size // 2])
        fresh = ResultCache(tmp_path)
        assert fresh.get_rows(plan.instance_keys(trees)) == {}
        assert (tmp_path / "rows.records.quarantined").exists()
        assert current_health().cache_quarantines >= 1
        # The next write rebuilds a clean store.
        execute_plan_cached(trees, plan, cache=fresh)
        warm = ResultCache(tmp_path)
        assert len(warm.get_rows(plan.instance_keys(trees))) == len(plan)

    def test_cache_corrupt_injection_torn_store_reads_as_miss(
        self, trees, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1;cache-corrupt:1")
        reset_fault_state()
        cache = ResultCache(tmp_path)
        plan = SweepPlan.from_config(SMALL, len(trees))
        execute_plan_cached(trees, plan, cache=cache)
        assert current_health().injected.get("cache-corrupt", 0) == 1
        # The injected truncation makes the warm read a miss, never a crash.
        warm = ResultCache(tmp_path)
        assert warm.get_rows(plan.instance_keys(trees)) == {}

    def test_corrupt_sweep_blob_quarantined(self, tmp_path, trees):
        cache = ResultCache(tmp_path)
        key = cache.key(("synthetic", "tiny", 0), SMALL)
        table = run_sweep(trees, SMALL)
        cache.put(key, table)
        blob = cache.path(key)
        blob.write_bytes(blob.read_bytes()[:16])
        assert cache.get(key) is None
        assert blob.with_name(blob.name + ".quarantined").exists()


# --------------------------------------------------------------------------- #
# native-build fault
# --------------------------------------------------------------------------- #
class TestNativeBuildFault:
    def test_injected_build_failure(self, tmp_path, monkeypatch):
        from repro.native.build import NativeBuildError, build_library

        monkeypatch.setenv("REPRO_FAULTS", "seed=1;native-build:1")
        reset_fault_state()
        with pytest.raises(NativeBuildError, match="injected native-build"):
            build_library(cache_dir=tmp_path)
        assert current_health().injected.get("native-build", 0) == 1
        # Fire-once: the rebuild after the fault clears succeeds (or fails
        # only for the genuine no-compiler reason, never the injection).
        try:
            build_library(cache_dir=tmp_path)
        except NativeBuildError as exc:
            assert "injected" not in str(exc)

    def test_auto_mode_degrades_to_python(self, tmp_path, monkeypatch):
        from repro.native import native_kernels, reset_native_cache

        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setenv("REPRO_FAULTS", "seed=1;native-build:1")
        reset_fault_state()
        reset_native_cache()
        try:
            assert native_kernels(None) is None
            assert current_health().degradations.get("native->python", 0) == 1
        finally:
            reset_native_cache()
            reset_fault_state()
