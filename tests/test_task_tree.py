"""Unit tests for the TaskTree data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import NO_PARENT, TaskTree

from .helpers import random_tree


class TestConstruction:
    def test_single_node(self):
        tree = TaskTree(parent=[-1], fout=[3.0], nexec=[2.0], ptime=[1.5])
        assert tree.n == 1
        assert tree.root == 0
        assert tree.is_leaf(0)
        assert tree.is_root(0)
        assert tree.mem_needed[0] == pytest.approx(5.0)

    def test_scalar_broadcast(self):
        tree = TaskTree(parent=[1, -1], fout=2.0, nexec=1.0, ptime=3.0)
        assert np.allclose(tree.fout, [2.0, 2.0])
        assert np.allclose(tree.nexec, [1.0, 1.0])
        assert np.allclose(tree.ptime, [3.0, 3.0])

    def test_children_and_parent(self, small_tree):
        assert small_tree.root == 6
        assert small_tree.children(6) == (4, 5)
        assert small_tree.children(4) == (0, 1)
        assert small_tree.children(0) == ()
        assert small_tree.parent[0] == 4
        assert small_tree.parent[6] == NO_PARENT

    def test_mem_needed_equation(self, small_tree):
        # MemNeeded_i = sum of children outputs + n_i + f_i (Equation 1).
        assert small_tree.mem_needed[0] == pytest.approx(1.0 + 2.0)
        assert small_tree.mem_needed[4] == pytest.approx((2.0 + 3.0) + 1.0 + 5.0)
        assert small_tree.mem_needed[6] == pytest.approx((5.0 + 2.0) + 3.0 + 6.0)

    def test_leaves(self, small_tree):
        assert small_tree.leaves().tolist() == [0, 1, 2, 3]

    def test_edges(self, small_tree):
        edges = set(small_tree.edges())
        assert (0, 4) in edges
        assert (4, 6) in edges
        assert len(edges) == small_tree.n - 1

    def test_names(self):
        tree = TaskTree(parent=[-1, 0], names=["root", "leaf"])
        assert tree.names == ("root", "leaf")

    def test_arrays_are_read_only(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.fout[0] = 99.0
        with pytest.raises(ValueError):
            small_tree.parent[0] = 2


class TestValidation:
    def test_no_root_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[1, 0])

    def test_two_roots_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[-1, -1])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[2, 0, 1, -1])

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[0, -1])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[5, -1])

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[-1], fout=[-1.0])

    def test_non_finite_data_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[-1], ptime=[np.inf])

    def test_wrong_length_data_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[-1, 0], fout=[1.0, 2.0, 3.0])

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[])

    def test_wrong_names_length_rejected(self):
        with pytest.raises(ValueError):
            TaskTree(parent=[-1, 0], names=["only-one"])


class TestTraversal:
    def test_topological_order_children_first(self, small_tree):
        order = small_tree.topological_order()
        rank = {int(node): k for k, node in enumerate(order)}
        for child, parent in small_tree.edges():
            assert rank[child] < rank[parent]
        assert sorted(order.tolist()) == list(range(small_tree.n))

    def test_subtree(self, small_tree):
        assert sorted(small_tree.subtree(4).tolist()) == [0, 1, 4]
        assert sorted(small_tree.subtree(6).tolist()) == list(range(7))
        assert small_tree.subtree(0).tolist() == [0]

    def test_ancestors(self, small_tree):
        assert list(small_tree.ancestors(0)) == [4, 6]
        assert list(small_tree.ancestors(0, include_self=True)) == [0, 4, 6]
        assert list(small_tree.ancestors(6)) == []

    def test_topological_order_random_trees(self, rng):
        for _ in range(20):
            tree = random_tree(rng, int(rng.integers(2, 60)))
            order = tree.topological_order()
            rank = np.empty(tree.n, dtype=int)
            rank[order] = np.arange(tree.n)
            for child, parent in tree.edges():
                assert rank[child] < rank[parent]


class TestDerived:
    def test_with_data_replaces_only_requested(self, small_tree):
        new = small_tree.with_data(ptime=np.ones(small_tree.n))
        assert np.allclose(new.ptime, 1.0)
        assert np.allclose(new.fout, small_tree.fout)
        assert new.check_same_structure(small_tree)

    def test_to_networkx_roundtrip(self, small_tree):
        from repro.core.tree_builders import from_networkx

        graph = small_tree.to_networkx()
        assert graph.number_of_nodes() == small_tree.n
        rebuilt = from_networkx(graph)
        assert rebuilt == small_tree

    def test_equality_and_hash(self, small_tree):
        clone = TaskTree(
            small_tree.parent.copy(),
            fout=small_tree.fout.copy(),
            nexec=small_tree.nexec.copy(),
            ptime=small_tree.ptime.copy(),
        )
        assert clone == small_tree
        assert hash(clone) == hash(small_tree)
        other = small_tree.with_data(fout=small_tree.fout + 1)
        assert other != small_tree

    def test_total_work_and_max_mem(self, small_tree):
        assert small_tree.total_work == pytest.approx(float(small_tree.ptime.sum()))
        assert small_tree.max_mem_needed == pytest.approx(float(small_tree.mem_needed.max()))


class TestFromArrays:
    """The zero-copy construction path used by TreeStore views."""

    def _arrays(self):
        parent = np.asarray([4, 4, 5, 5, 6, 6, -1], dtype=np.int64)
        fout = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        nexec = np.asarray([0.5] * 7)
        ptime = np.asarray([1.0] * 7)
        return parent, fout, nexec, ptime

    def test_copy_true_is_defensive(self):
        parent, fout, nexec, ptime = self._arrays()
        tree = TaskTree.from_arrays(parent, fout=fout, nexec=nexec, ptime=ptime)
        assert not np.shares_memory(tree.parent, parent)
        assert not np.shares_memory(tree.fout, fout)
        fout[0] = 99.0  # the caller's array stays writable and independent
        assert tree.fout[0] == 1.0

    def test_copy_false_adopts_buffers(self):
        parent, fout, nexec, ptime = self._arrays()
        tree = TaskTree.from_arrays(parent, fout=fout, nexec=nexec, ptime=ptime, copy=False)
        assert np.shares_memory(tree.parent, parent)
        assert np.shares_memory(tree.fout, fout)
        assert np.shares_memory(tree.nexec, nexec)
        assert np.shares_memory(tree.ptime, ptime)

    def test_copy_false_marks_read_only_in_place(self):
        parent, fout, nexec, ptime = self._arrays()
        TaskTree.from_arrays(parent, fout=fout, nexec=nexec, ptime=ptime, copy=False)
        assert not fout.flags.writeable
        with pytest.raises(ValueError):
            fout[0] = 99.0

    def test_copy_false_equivalent_tree(self, rng):
        reference = random_tree(rng, 40, integer_data=False)
        view = TaskTree.from_arrays(
            reference.parent,
            fout=reference.fout,
            nexec=reference.nexec,
            ptime=reference.ptime,
            copy=False,
            validate=False,
        )
        assert view == reference
        assert view.root == reference.root
        assert np.array_equal(view.mem_needed, reference.mem_needed)
        assert [view.children(i) for i in view.nodes()] == [
            reference.children(i) for i in reference.nodes()
        ]

    def test_copy_false_still_materialises_scalars(self):
        parent = np.asarray([1, -1], dtype=np.int64)
        tree = TaskTree.from_arrays(parent, fout=2.0, copy=False)
        assert np.allclose(tree.fout, [2.0, 2.0])

    def test_copy_false_converts_foreign_dtype(self):
        parent = np.asarray([1, -1], dtype=np.int64)
        fout32 = np.asarray([1.0, 2.0], dtype=np.float32)
        tree = TaskTree.from_arrays(parent, fout=fout32, copy=False)
        assert tree.fout.dtype == np.float64
        assert not np.shares_memory(tree.fout, fout32)

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            TaskTree.from_arrays(np.asarray([0, -1, -1], dtype=np.int64), copy=False)


class TestVectorisedStructure:
    """leaves()/children are built from bincount + argsort, not Python loops."""

    def test_leaves_matches_definition(self, rng):
        for _ in range(10):
            tree = random_tree(rng, int(rng.integers(1, 80)))
            expected = [i for i in range(tree.n) if not tree.children(i)]
            assert tree.leaves().tolist() == expected

    def test_children_sorted_by_index(self, rng):
        for _ in range(10):
            tree = random_tree(rng, int(rng.integers(2, 80)))
            for node in tree.nodes():
                kids = tree.children(node)
                assert list(kids) == sorted(kids)
                assert all(tree.parent[c] == node for c in kids)
            assert sum(len(tree.children(i)) for i in tree.nodes()) == tree.n - 1

    def test_children_are_plain_ints(self, small_tree):
        for node in small_tree.nodes():
            assert all(type(c) is int for c in small_tree.children(node))
