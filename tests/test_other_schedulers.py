"""Tests for the reference schedulers (list, sequential) and the scheduler API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.core.tree_metrics import critical_path_length
from repro.orders import Ordering, minimum_memory_postorder, sequential_peak_memory
from repro.schedulers import (
    SCHEDULER_FACTORIES,
    ListScheduler,
    Scheduler,
    SchedulingError,
    SequentialScheduler,
    make_scheduler,
)
from repro.schedulers.validation import validate_schedule

from .helpers import random_tree


class TestListScheduler:
    def test_ignores_memory(self, small_tree):
        # Even with an absurdly small bound the list scheduler completes
        # (it is memory-oblivious by design).
        result = ListScheduler().schedule(small_tree, 2, 0.001)
        assert result.completed
        assert result.extras["memory_oblivious"] is True

    def test_obeys_precedence_and_processors(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 50)
            result = ListScheduler().schedule(tree, 3, 1e18)
            assert result.completed
            validate_schedule(tree, result).raise_if_invalid()

    def test_unbounded_processors_reach_critical_path(self, rng):
        tree = random_tree(rng, 60)
        result = ListScheduler().schedule(tree, tree.n, 1e18)
        assert result.makespan == pytest.approx(critical_path_length(tree))

    def test_respects_classical_lower_bound(self, rng):
        for _ in range(5):
            tree = random_tree(rng, 60)
            p = 4
            result = ListScheduler().schedule(tree, p, 1e18)
            classical = max(tree.total_work / p, critical_path_length(tree))
            assert result.makespan >= classical - 1e-9


class TestSequentialScheduler:
    def test_matches_profile_evaluator(self, rng):
        tree = random_tree(rng, 40)
        ao = minimum_memory_postorder(tree)
        peak = sequential_peak_memory(tree, ao)
        result = SequentialScheduler().schedule(tree, 1, peak, ao=ao, eo=ao)
        assert result.completed
        assert result.peak_memory == pytest.approx(peak)
        assert result.makespan == pytest.approx(tree.total_work)
        validate_schedule(tree, result).raise_if_invalid()

    def test_fails_when_memory_too_small(self, rng):
        tree = random_tree(rng, 30)
        ao = minimum_memory_postorder(tree)
        peak = sequential_peak_memory(tree, ao)
        result = SequentialScheduler().schedule(tree, 1, 0.9 * peak, ao=ao, eo=ao)
        assert not result.completed
        assert result.failure_reason is not None

    def test_start_times_follow_order(self):
        tree = TaskTree(parent=[2, 2, -1], fout=1.0, ptime=[1.0, 2.0, 3.0])
        ao = Ordering([1, 0, 2])
        result = SequentialScheduler().schedule(tree, 1, 100.0, ao=ao, eo=ao)
        assert result.start_times[1] == 0.0
        assert result.start_times[0] == 2.0
        assert result.start_times[2] == 3.0


class TestSchedulerApi:
    def test_factory_registry(self):
        for name in SCHEDULER_FACTORIES:
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler)
            assert scheduler.name in (name, "MemBookingReference")

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("NotAScheduler")

    def test_invalid_processor_count(self, small_tree):
        with pytest.raises(SchedulingError):
            make_scheduler("MemBooking").schedule(small_tree, 0, 100.0)

    def test_invalid_memory(self, small_tree):
        with pytest.raises(SchedulingError):
            make_scheduler("MemBooking").schedule(small_tree, 2, 0.0)
        with pytest.raises(SchedulingError):
            make_scheduler("MemBooking").schedule(small_tree, 2, float("inf"))

    def test_non_topological_ao_rejected(self, small_tree):
        bad = Ordering(np.arange(small_tree.n)[::-1])
        with pytest.raises(SchedulingError):
            make_scheduler("Activation").schedule(small_tree, 2, 100.0, ao=bad, eo=bad)

    def test_wrong_size_order_rejected(self, small_tree, rng):
        other = Ordering([0, 1, 2])
        with pytest.raises(SchedulingError):
            make_scheduler("Activation").schedule(small_tree, 2, 100.0, ao=other, eo=other)

    def test_default_orders_are_mempo(self, small_tree):
        scheduler = make_scheduler("MemBooking")
        ao, eo = scheduler.default_orders(small_tree)
        assert ao.name == "memPO"
        assert ao == eo
