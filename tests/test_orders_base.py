"""Unit tests for the Ordering wrapper."""

from __future__ import annotations

import pytest

from repro.orders.base import Ordering

from .helpers import random_tree


class TestConstruction:
    def test_valid_permutation(self):
        order = Ordering([2, 0, 1], name="demo")
        assert order.n == 3
        assert order.name == "demo"
        assert order.sequence.tolist() == [2, 0, 1]
        assert order.rank.tolist() == [1, 2, 0]

    def test_rank_and_node_at(self):
        order = Ordering([2, 0, 1])
        assert order.rank_of(2) == 0
        assert order.node_at(0) == 2
        assert order[1] == 0
        assert len(order) == 3
        assert list(order) == [2, 0, 1]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Ordering([0, 0, 1])
        with pytest.raises(ValueError):
            Ordering([0, 1, 5])
        with pytest.raises(ValueError):
            Ordering([])
        with pytest.raises(ValueError):
            Ordering([[0, 1]])

    def test_equality_and_hash(self):
        assert Ordering([0, 1]) == Ordering([0, 1])
        assert Ordering([0, 1]) != Ordering([1, 0])
        assert hash(Ordering([0, 1])) == hash(Ordering([0, 1]))

    def test_sequence_read_only(self):
        order = Ordering([1, 0])
        with pytest.raises(ValueError):
            order.sequence[0] = 0


class TestTopologicalChecks:
    def test_topological(self, small_tree):
        assert Ordering(small_tree.topological_order()).is_topological(small_tree)
        # Root first is definitely not topological (children must come first).
        bad = [small_tree.root] + [i for i in range(small_tree.n) if i != small_tree.root]
        assert not Ordering(bad).is_topological(small_tree)

    def test_size_mismatch(self, small_tree):
        with pytest.raises(ValueError):
            Ordering([0, 1]).is_topological(small_tree)

    def test_postorder_detection(self, small_tree):
        postorder = Ordering(small_tree.topological_order())
        assert postorder.is_postorder(small_tree)
        # Interleaving the two subtrees of the root breaks the postorder
        # property but keeps the order topological.
        interleaved = Ordering([0, 2, 1, 3, 4, 5, 6])
        assert interleaved.is_topological(small_tree)
        assert not interleaved.is_postorder(small_tree)

    def test_random_topological_orders(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 30)
            assert Ordering(tree.topological_order()).is_topological(tree)


class TestFactories:
    def test_from_priorities_descending(self):
        order = Ordering.from_priorities([1.0, 5.0, 3.0])
        assert order.sequence.tolist() == [1, 2, 0]

    def test_from_priorities_ascending(self):
        order = Ordering.from_priorities([1.0, 5.0, 3.0], descending=False)
        assert order.sequence.tolist() == [0, 2, 1]

    def test_from_priorities_tie_break_by_index(self):
        order = Ordering.from_priorities([2.0, 2.0, 2.0])
        assert order.sequence.tolist() == [0, 1, 2]

    def test_restricted_to(self):
        order = Ordering([3, 1, 0, 2])
        assert order.restricted_to([0, 2, 3]).tolist() == [3, 0, 2]
