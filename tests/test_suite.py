"""Tests of the consolidated evaluation-suite runner."""

from __future__ import annotations

from repro.experiments.figures import FIGURES
from repro.experiments.suite import main, run_suite, write_suite_report


class TestRunSuite:
    def test_subset_run_and_report(self, tmp_path):
        results = run_suite(["lb_stats", "fig5"], scale="tiny")
        assert set(results) == {"lb_stats", "fig5"}
        summary = write_suite_report(results, tmp_path / "report", scale="tiny", elapsed_seconds=1.0)
        assert summary.exists()
        text = summary.read_text()
        assert "lb_stats" in text and "fig5" in text
        assert (tmp_path / "report" / "fig5.txt").exists()
        assert (tmp_path / "report" / "fig5.csv").exists()

    def test_default_covers_every_registered_figure(self):
        # Do not run them all here (the benchmarks do); only check the wiring.
        ids = sorted(FIGURES)
        assert ids  # non-empty registry
        results = run_suite(["redtree_failures"], scale="tiny")
        assert results["redtree_failures"].figure_id == "redtree_failures"


class TestCommandLine:
    def test_main_with_subset(self, tmp_path, capsys):
        code = main(["--scale", "tiny", "--out", str(tmp_path / "out"), "--figures", "lb_stats"])
        assert code == 0
        assert (tmp_path / "out" / "summary.md").exists()
        assert "wrote" in capsys.readouterr().out
