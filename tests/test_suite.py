"""Tests of the consolidated evaluation-suite runner."""

from __future__ import annotations

import math

from repro.experiments.figures import FIGURES, FigureResult
from repro.experiments.metrics import completion_fraction
from repro.experiments.records import ResultCache, records_equal
from repro.experiments.reporting import format_records_table
from repro.experiments.suite import main, run_suite, write_suite_report


class TestRunSuite:
    def test_subset_run_and_report(self, tmp_path):
        results = run_suite(["lb_stats", "fig5"], scale="tiny")
        assert set(results) == {"lb_stats", "fig5"}
        summary = write_suite_report(results, tmp_path / "report", scale="tiny", elapsed_seconds=1.0)
        assert summary.exists()
        text = summary.read_text()
        assert "lb_stats" in text and "fig5" in text
        assert (tmp_path / "report" / "fig5.txt").exists()
        assert (tmp_path / "report" / "fig5.csv").exists()

    def test_default_covers_every_registered_figure(self):
        # Do not run them all here (the benchmarks do); only check the wiring.
        ids = sorted(FIGURES)
        assert ids  # non-empty registry
        results = run_suite(["redtree_failures"], scale="tiny")
        assert results["redtree_failures"].figure_id == "redtree_failures"


class TestResultCacheIntegration:
    def test_second_suite_run_hits_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_suite(["fig5"], scale="tiny", cache=cache)
        assert cache.hits == 0 and cache.misses == 1
        second = run_suite(["fig5"], scale="tiny", cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert second["fig5"].series == first["fig5"].series
        assert records_equal(second["fig5"].records, first["fig5"].records)

    def test_report_mentions_cache_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        results = run_suite(["fig5"], scale="tiny", cache=cache)
        summary = write_suite_report(results, tmp_path / "report", scale="tiny", cache=cache)
        assert "result cache" in summary.read_text()


class TestDegenerateResults:
    """Empty/degenerate result sets must render, not crash."""

    def test_format_records_table_zero_rows(self):
        text = format_records_table([], ["scheduler", "makespan"], title="empty")
        lines = text.splitlines()
        assert lines[0] == "empty"
        assert "scheduler" in lines[1] and "makespan" in lines[1]
        assert len(lines) == 3  # title, header, rule — no data rows

    def test_empty_completion_fraction_propagates_into_report(self, tmp_path):
        fraction = completion_fraction([])
        assert math.isnan(fraction)
        empty_figure = FigureResult(
            figure_id="empty",
            title="degenerate sweep",
            x_label="x",
            y_label="y",
            series={"only": [(1.0, fraction)]},
            checks={"has_data": False},
        )
        summary = write_suite_report({"empty": empty_figure}, tmp_path / "report", scale="tiny")
        assert "FAILURES: has_data" in summary.read_text()
        figure_text = (tmp_path / "report" / "empty.txt").read_text()
        assert "-" in figure_text  # the NaN cell renders as a dash

    def test_empty_series_render(self, tmp_path):
        empty_figure = FigureResult(
            figure_id="blank", title="no series", x_label="x", y_label="y", series={"s": []}
        )
        summary = write_suite_report({"blank": empty_figure}, tmp_path / "report", scale="tiny")
        assert summary.exists()
        assert (tmp_path / "report" / "blank.csv").exists()


class TestCommandLine:
    def test_main_with_subset(self, tmp_path, capsys):
        code = main(["--scale", "tiny", "--out", str(tmp_path / "out"), "--figures", "lb_stats"])
        assert code == 0
        assert (tmp_path / "out" / "summary.md").exists()
        assert "wrote" in capsys.readouterr().out

    def test_main_uses_cache_on_rerun(self, tmp_path, capsys):
        args = ["--scale", "tiny", "--out", str(tmp_path / "out"), "--figures", "fig5"]
        assert main(args) == 0
        assert (tmp_path / "out" / ".result-cache").is_dir()
        assert main(args) == 0
        assert "1 hits" in capsys.readouterr().out

    def test_main_no_cache(self, tmp_path, capsys):
        args = [
            "--scale", "tiny", "--out", str(tmp_path / "out"), "--figures", "lb_stats",
            "--no-cache",
        ]
        assert main(args) == 0
        assert not (tmp_path / "out" / ".result-cache").exists()
        assert "result cache" not in capsys.readouterr().out
