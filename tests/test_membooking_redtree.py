"""Unit tests for the MemBookingRedTree baseline (Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.core.tree_transform import to_reduction_tree
from repro.orders import minimum_memory_postorder, sequential_peak_memory
from repro.schedulers.membooking_redtree import (
    MemBookingRedTreeScheduler,
    extend_order_to_reduction,
)
from repro.schedulers.validation import validate_schedule

from .helpers import random_tree


class TestOrderExtension:
    def test_extended_order_is_topological(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 25)
            reduction = to_reduction_tree(tree)
            ao = minimum_memory_postorder(tree)
            extended = extend_order_to_reduction(tree, reduction, ao)
            assert extended.n == reduction.tree.n
            assert extended.is_topological(reduction.tree)

    def test_real_nodes_keep_relative_order(self, small_tree):
        reduction = to_reduction_tree(small_tree)
        ao = minimum_memory_postorder(small_tree)
        extended = extend_order_to_reduction(small_tree, reduction, ao)
        real_sequence = [n for n in extended.sequence.tolist() if n < small_tree.n]
        assert real_sequence == ao.sequence.tolist()

    def test_fictitious_before_parent(self, small_tree):
        reduction = to_reduction_tree(small_tree)
        ao = minimum_memory_postorder(small_tree)
        extended = extend_order_to_reduction(small_tree, reduction, ao)
        for offset, parent in enumerate(reduction.fictitious_parent):
            fict = reduction.original_n + offset
            assert extended.rank_of(fict) < extended.rank_of(parent)


class TestRedTreeScheduling:
    def test_completes_with_generous_memory(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 40)
            result = MemBookingRedTreeScheduler().schedule(tree, 4, 1e9)
            assert result.completed
            validate_schedule(tree, result).raise_if_invalid()

    def test_result_refers_to_original_tree(self, small_tree):
        result = MemBookingRedTreeScheduler().schedule(small_tree, 2, 1e6)
        assert result.tree_size == small_tree.n
        assert result.start_times.shape == (small_tree.n,)
        assert result.extras["num_fictitious_nodes"] >= 1
        assert result.extras["transformed_tree_size"] > small_tree.n

    def test_respects_memory_bound_when_it_completes(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 40)
            ao = minimum_memory_postorder(tree)
            bound = 3.0 * sequential_peak_memory(tree, ao)
            result = MemBookingRedTreeScheduler().schedule(tree, 8, bound, ao=ao, eo=ao)
            if result.completed:
                assert result.peak_memory <= bound * (1 + 1e-9)
                validate_schedule(tree, result).raise_if_invalid()

    def test_may_fail_under_tight_memory(self, rng):
        # The transformation inflates the memory footprint, so at exactly the
        # original tree's minimal postorder memory the baseline frequently
        # cannot schedule the tree (Section 7.4).  We only require that the
        # failure is reported cleanly, and that it happens at least once over
        # a batch of trees with execution data.
        failures = 0
        for _ in range(15):
            tree = random_tree(rng, 30)
            ao = minimum_memory_postorder(tree)
            bound = sequential_peak_memory(tree, ao)
            result = MemBookingRedTreeScheduler().schedule(tree, 4, bound, ao=ao, eo=ao)
            if not result.completed:
                failures += 1
                assert result.failure_reason is not None
                assert result.makespan == np.inf
            else:
                validate_schedule(tree, result).raise_if_invalid()
        assert failures >= 1

    def test_needs_more_memory_than_membooking(self, rng):
        # Find the smallest memory (by bisection over a grid) at which each
        # heuristic completes; the reduction-tree baseline should never need
        # less than MemBooking (which completes at the minimum postorder peak).
        from repro.schedulers.membooking import MemBookingScheduler

        for _ in range(5):
            tree = random_tree(rng, 30)
            ao = minimum_memory_postorder(tree)
            minimum = sequential_peak_memory(tree, ao)
            mb = MemBookingScheduler().schedule(tree, 4, minimum, ao=ao, eo=ao)
            assert mb.completed
            red = MemBookingRedTreeScheduler().schedule(tree, 4, minimum, ao=ao, eo=ao)
            if red.completed:
                assert red.peak_memory <= minimum * (1 + 1e-9)

    def test_zero_exec_reduction_tree_input(self):
        # A tree that is already (almost) a reduction tree still schedules fine.
        tree = TaskTree(
            parent=[2, 2, -1],
            fout=[3.0, 4.0, 5.0],
            nexec=0.0,
            ptime=[1.0, 2.0, 3.0],
        )
        result = MemBookingRedTreeScheduler().schedule(tree, 2, 100.0)
        assert result.completed
        assert result.makespan == pytest.approx(5.0)
        validate_schedule(tree, result).raise_if_invalid()
