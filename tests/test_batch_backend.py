"""The ``batched`` execution backend and the backend registry."""

from __future__ import annotations

import pickle

import pytest

from repro.batch import BatchedBackend
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import (
    BACKEND_NAMES,
    SerialBackend,
    register_backend,
    resolve_backend,
)
import repro.experiments.backends as backends_mod
from repro.schedulers import SCHEDULER_FACTORIES
from repro.schedulers.reference import REFERENCE_FACTORIES
from repro.workloads.synthetic import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})


def record_bytes(records):
    return [
        pickle.dumps({k: v for k, v in r.items() if k not in TIMING_FIELDS})
        for r in records
    ]


@pytest.fixture
def trees():
    return synthetic_trees(3, SyntheticTreeConfig(num_nodes=90), rng=5)


@pytest.fixture
def config():
    return SweepConfig(
        memory_factors=(1.0, 1.5, 4.0),
        processors=(2, 8),
        min_completion_fraction=0.0,
    )


class TestRegistry:
    def test_builtin_names_registered(self):
        assert set(BACKEND_NAMES) == {"auto", "serial", "process", "shared-memory", "batched"}

    def test_register_and_resolve_custom_backend(self, config):
        calls = []

        def factory(jobs, cfg):
            calls.append((jobs, cfg))
            return SerialBackend()

        register_backend("custom-test", factory)
        try:
            assert "custom-test" in backends_mod.BACKEND_NAMES
            backend = resolve_backend("custom-test", config, 3, jobs=4)
            assert isinstance(backend, SerialBackend)
            assert calls == [(4, config)]
        finally:
            backends_mod._BACKEND_FACTORIES.pop("custom-test")
            backends_mod.BACKEND_NAMES = (
                "auto", *sorted(backends_mod._BACKEND_FACTORIES)
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", lambda jobs, cfg: SerialBackend())

    def test_auto_is_reserved(self):
        with pytest.raises(ValueError, match="resolution rule"):
            register_backend("auto", lambda jobs, cfg: SerialBackend())

    def test_unknown_backend_lists_names(self, config):
        with pytest.raises(ValueError, match="batched"):
            resolve_backend("teleport", config, 3)

    def test_batched_resolves_with_config_batch_size(self, config):
        backend = resolve_backend("batched", config.with_overrides(batch_size=7), 3)
        assert isinstance(backend, BatchedBackend)
        assert backend.batch_size == 7

    def test_jobsless_batched_instance_with_explicit_jobs_warns(self, config):
        """The jobs-override warning semantics survive the registry refactor."""
        with pytest.warns(RuntimeWarning, match="jobs=4"):
            resolve_backend(BatchedBackend(), config, 3, jobs=4)

    def test_batched_instance_accepts_single_worker(self, config, recwarn):
        backend = BatchedBackend()
        assert resolve_backend(backend, config, 3, jobs=1) is backend
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]


class TestBatchedBackend:
    def test_config_spelling_matches_serial(self, trees, config):
        serial = run_sweep(trees, config, backend=SerialBackend())
        batched = run_sweep(trees, config.with_overrides(backend="batched"))
        assert record_bytes(batched) == record_bytes(serial)

    @pytest.mark.parametrize("batch_size", [1, 2, 5])
    def test_batch_size_chunking_is_invisible(self, trees, config, batch_size):
        serial = run_sweep(trees, config, backend=SerialBackend())
        chunked = run_sweep(trees, config, backend=BatchedBackend(batch_size=batch_size))
        assert record_bytes(chunked) == record_bytes(serial)

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            BatchedBackend(batch_size=-1)
        with pytest.raises(ValueError, match="batch_size"):
            SweepConfig(batch_size=-1)

    def test_empty_sweep(self, config):
        assert len(BatchedBackend().run([], config)) == 0

    def test_patched_scheduler_registry_falls_back_to_scalar(
        self, trees, config, monkeypatch
    ):
        """A factory registry pointing elsewhere must bypass the lane kernels.

        The engine-speed benchmarks monkeypatch the reference schedulers into
        ``SCHEDULER_FACTORIES``; the batched backend must then produce what
        those factories produce, not what its (now stale) kernels would.
        """
        for name, factory in REFERENCE_FACTORIES.items():
            monkeypatch.setitem(SCHEDULER_FACTORIES, name, factory)
        serial = run_sweep(trees, config, backend=SerialBackend())
        batched = run_sweep(trees, config, backend=BatchedBackend())
        assert record_bytes(batched) == record_bytes(serial)

    def test_batch_size_excluded_from_result_cache_key(self, config):
        from repro.experiments.records import ResultCache

        assert "batch_size" in ResultCache.EXECUTION_ONLY_FIELDS
