"""Unit tests for the sequential memory profile evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.orders.base import Ordering
from repro.orders.peak_memory import (
    sequential_average_memory,
    sequential_peak_memory,
    sequential_profile,
)

from .helpers import random_tree


class TestChain:
    def test_chain_profile(self, chain3):
        # chain: 0 -> 1 -> 2 (root 2), fout=[2,3,4], nexec=[1,1,1]
        order = Ordering([0, 1, 2])
        profile = sequential_profile(chain3, order)
        # node 0: nothing resident, uses n0+f0 = 3, leaves f0 = 2.
        # node 1: resident 2, uses 2 + 1 + 3 = 6, leaves 3.
        # node 2: resident 3, uses 3 + 1 + 4 = 8, leaves 4.
        assert profile.peaks.tolist() == [3.0, 6.0, 8.0]
        assert profile.residents.tolist() == [2.0, 3.0, 4.0]
        assert profile.peak_memory == 8.0

    def test_average_memory(self, chain3):
        order = Ordering([0, 1, 2])
        # durations 1, 2, 3 -> weighted average of peaks
        expected = (3.0 * 1 + 6.0 * 2 + 8.0 * 3) / 6.0
        assert sequential_average_memory(chain3, order) == pytest.approx(expected)


class TestSmallTree:
    def test_peak_depends_on_order(self, small_tree):
        postorder = Ordering([0, 1, 4, 2, 3, 5, 6])
        interleaved = Ordering([0, 2, 1, 3, 4, 5, 6])
        peak_post = sequential_peak_memory(small_tree, postorder)
        peak_mixed = sequential_peak_memory(small_tree, interleaved)
        # Interleaving keeps more outputs resident, so it cannot be better here.
        assert peak_mixed >= peak_post

    def test_final_resident_is_root_output(self, small_tree):
        profile = sequential_profile(small_tree, Ordering(small_tree.topological_order()))
        assert profile.residents[-1] == pytest.approx(small_tree.fout[small_tree.root])

    def test_peak_at_least_max_memneeded(self, rng):
        for _ in range(20):
            tree = random_tree(rng, 30)
            peak = sequential_peak_memory(tree, Ordering(tree.topological_order()))
            assert peak >= tree.max_mem_needed - 1e-9


class TestValidation:
    def test_non_topological_rejected(self, small_tree):
        bad = Ordering([6, 5, 4, 3, 2, 1, 0])
        with pytest.raises(ValueError):
            sequential_profile(small_tree, bad)

    def test_check_can_be_disabled(self, small_tree):
        bad = Ordering([6, 5, 4, 3, 2, 1, 0])
        profile = sequential_profile(small_tree, bad, check=False)
        assert profile.peaks.size == small_tree.n

    def test_size_mismatch(self, small_tree):
        with pytest.raises(ValueError):
            sequential_profile(small_tree, Ordering([0, 1]))

    def test_zero_duration_average(self):
        tree = TaskTree(parent=[-1, 0], fout=[2.0, 1.0], ptime=[0.0, 0.0])
        avg = sequential_average_memory(tree, Ordering([1, 0]))
        assert avg == pytest.approx(np.mean([1.0, 1.0 + 2.0]))


class TestInvariant:
    def test_resident_never_negative(self, rng):
        for _ in range(20):
            tree = random_tree(rng, 40)
            profile = sequential_profile(tree, Ordering(tree.topological_order()))
            assert np.all(profile.residents >= -1e-9)
            assert np.all(profile.peaks >= profile.residents - 1e-9)
