"""Property-based tests of the scheduling heuristics (hypothesis).

These are the highest-value properties of the whole reproduction:

* **Theorem 1** — MemBooking processes the whole tree whenever the memory
  bound is at least the sequential peak of the activation order, for *any*
  number of processors and *any* execution order;
* every schedule produced by any heuristic is feasible (precedence,
  processor count, memory bound) and consistent with the makespan bounds;
* the optimised MemBooking implementation takes exactly the same decisions
  as the reference transcription of Algorithms 2–4;
* the Lemma 2–5 bookkeeping invariants hold after every event.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import combined_lower_bound
from repro.orders import minimum_memory_postorder, sequential_peak_memory
from repro.schedulers.activation import ActivationScheduler
from repro.schedulers.list_scheduler import ListScheduler
from repro.schedulers.membooking import MemBookingReferenceScheduler, MemBookingScheduler
from repro.schedulers.membooking_redtree import MemBookingRedTreeScheduler
from repro.schedulers.validation import validate_schedule

from .strategies import task_trees, topological_orders
from .test_membooking import check_booking_invariants


def _minimum_memory(tree, order) -> float:
    """Sequential peak of ``order``, bumped to a positive value for empty data."""
    return max(sequential_peak_memory(tree, order, check=False), 1.0)


@st.composite
def scheduling_instances(draw, *, max_nodes=20, factor_range=(1.0, 3.0)):
    """A tree, a random AO, a processor count and a feasible memory bound."""
    tree = draw(task_trees(max_nodes=max_nodes))
    ao = draw(topological_orders(tree))
    eo = draw(topological_orders(tree))
    processors = draw(st.integers(1, 8))
    factor = draw(st.floats(*factor_range, allow_nan=False, allow_infinity=False))
    memory = factor * _minimum_memory(tree, ao)
    return tree, ao, eo, processors, memory


class TestTheorem1:
    @given(scheduling_instances(factor_range=(1.0, 1.0)))
    @settings(max_examples=60)
    def test_membooking_completes_at_exact_minimum(self, instance):
        tree, ao, eo, processors, memory = instance
        result = MemBookingScheduler().schedule(tree, processors, memory, ao=ao, eo=eo)
        assert result.completed, result.failure_reason
        assert result.peak_memory <= memory * (1 + 1e-9)
        validate_schedule(tree, result).raise_if_invalid()

    @given(scheduling_instances())
    @settings(max_examples=40)
    def test_membooking_completes_above_minimum(self, instance):
        tree, ao, eo, processors, memory = instance
        result = MemBookingScheduler().schedule(tree, processors, memory, ao=ao, eo=eo)
        assert result.completed, result.failure_reason
        validate_schedule(tree, result).raise_if_invalid()


class TestFeasibilityAndBounds:
    @given(scheduling_instances())
    @settings(max_examples=40)
    def test_all_heuristics_produce_feasible_schedules(self, instance):
        tree, ao, eo, processors, memory = instance
        for scheduler in (
            ActivationScheduler(),
            MemBookingScheduler(),
            MemBookingRedTreeScheduler(),
            ListScheduler(),
        ):
            result = scheduler.schedule(tree, processors, memory, ao=ao, eo=eo)
            if not result.completed:
                # Only the reduction-tree baseline is allowed to give up, and
                # only with an explanation.
                assert scheduler.name == "MemBookingRedTree"
                assert result.failure_reason is not None
                continue
            if scheduler.name == "ListNoMemory":
                # Memory-oblivious: check everything except the memory bound.
                report = validate_schedule(
                    tree,
                    result,
                )
                memory_errors = [e for e in report.errors if "memory" in e]
                assert len(report.errors) == len(memory_errors), report.errors
            else:
                validate_schedule(tree, result).raise_if_invalid()

    @given(scheduling_instances())
    @settings(max_examples=40)
    def test_makespan_between_bounds(self, instance):
        tree, ao, eo, processors, memory = instance
        result = MemBookingScheduler().schedule(tree, processors, memory, ao=ao, eo=eo)
        assert result.completed
        lower = combined_lower_bound(tree, processors, memory)
        assert result.makespan >= lower - 1e-9 * max(1.0, lower)
        # A completed schedule never idles completely, so it cannot exceed the
        # total work.
        assert result.makespan <= tree.total_work + 1e-9

    @given(scheduling_instances(factor_range=(1.0, 2.0)))
    @settings(max_examples=40)
    def test_activation_completes_whenever_memory_covers_its_ao(self, instance):
        tree, ao, eo, processors, memory = instance
        result = ActivationScheduler().schedule(tree, processors, memory, ao=ao, eo=eo)
        assert result.completed, result.failure_reason
        validate_schedule(tree, result).raise_if_invalid()


class TestEquivalenceAndInvariants:
    @given(scheduling_instances())
    @settings(max_examples=30)
    def test_optimised_equals_reference(self, instance):
        tree, ao, eo, processors, memory = instance
        fast = MemBookingScheduler().schedule(tree, processors, memory, ao=ao, eo=eo)
        slow = MemBookingReferenceScheduler().schedule(tree, processors, memory, ao=ao, eo=eo)
        assert fast.completed and slow.completed
        np.testing.assert_allclose(fast.start_times, slow.start_times)
        np.testing.assert_allclose(fast.finish_times, slow.finish_times)

    @given(scheduling_instances(max_nodes=15))
    @settings(max_examples=30)
    def test_booking_invariants_hold_at_every_event(self, instance):
        tree, ao, eo, processors, memory = instance
        MemBookingScheduler().schedule(
            tree, processors, memory, ao=ao, eo=eo, invariant_hook=check_booking_invariants
        )

    @given(scheduling_instances(max_nodes=15))
    @settings(max_examples=20)
    def test_strict_dispatch_variant_also_satisfies_theorem1(self, instance):
        tree, ao, eo, processors, memory = instance
        scheduler = MemBookingScheduler(dispatch_to_candidates=False)
        result = scheduler.schedule(tree, processors, memory, ao=ao, eo=eo)
        assert result.completed, result.failure_reason
        validate_schedule(tree, result).raise_if_invalid()


class TestDefaultOrderPath:
    @given(task_trees(max_nodes=18))
    @settings(max_examples=25)
    def test_default_orders_used_when_not_supplied(self, tree):
        order = minimum_memory_postorder(tree)
        memory = _minimum_memory(tree, order)
        result = MemBookingScheduler().schedule(tree, 4, memory)
        assert result.completed
        assert result.activation_order == "memPO"
        assert result.execution_order == "memPO"
