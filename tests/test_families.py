"""Unit tests for the structured tree families."""

from __future__ import annotations

import pytest

from repro.core.tree_metrics import degree_histogram, height, num_leaves
from repro.core.tree_transform import is_reduction_tree
from repro.workloads import families


class TestChainStar:
    def test_chain_shape(self):
        tree = families.chain(5, fout=2.0, ptime=lambda i: float(i + 1))
        assert tree.n == 5
        assert height(tree) == 5
        assert num_leaves(tree) == 1
        assert tree.ptime[3] == 4.0

    def test_chain_single_node(self):
        assert families.chain(1).n == 1

    def test_chain_invalid(self):
        with pytest.raises(ValueError):
            families.chain(0)

    def test_star_shape(self):
        tree = families.star(7)
        assert tree.n == 8
        assert tree.root == 0
        assert num_leaves(tree) == 7
        assert height(tree) == 2

    def test_star_invalid(self):
        with pytest.raises(ValueError):
            families.star(0)


class TestBalancedAndComb:
    def test_balanced_tree_sizes(self):
        tree = families.balanced_tree(2, 3)
        assert tree.n == 15
        assert height(tree) == 4
        assert num_leaves(tree) == 8

    def test_balanced_tree_depth_zero(self):
        assert families.balanced_tree(3, 0).n == 1

    def test_balanced_tree_invalid(self):
        with pytest.raises(ValueError):
            families.balanced_tree(0, 2)
        with pytest.raises(ValueError):
            families.balanced_tree(2, -1)

    def test_comb(self):
        tree = families.comb(3, 4)
        assert tree.n == 1 + 3 * 4
        assert height(tree) == 5
        assert num_leaves(tree) == 3

    def test_comb_invalid(self):
        with pytest.raises(ValueError):
            families.comb(0, 1)


class TestCaterpillarSpine:
    def test_caterpillar(self):
        tree = families.caterpillar(4, legs_per_node=2)
        assert tree.n == 4 + 8
        assert height(tree) == 5

    def test_caterpillar_leaf_count(self):
        # Every spine node has legs, so only the 8 legs are leaves.
        tree = families.caterpillar(4, legs_per_node=2)
        assert num_leaves(tree) == 8

    def test_caterpillar_no_legs_is_chain(self):
        tree = families.caterpillar(6, legs_per_node=0)
        assert tree.n == 6
        assert height(tree) == 6

    def test_spine_with_subtrees(self):
        tree = families.spine_with_subtrees(5, subtree_arity=2, subtree_depth=1)
        assert tree.n == 5 + 5 * 2
        assert height(tree) >= 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            families.caterpillar(0)
        with pytest.raises(ValueError):
            families.spine_with_subtrees(0)


class TestRandomAndReduction:
    def test_random_attachment_deterministic(self):
        a = families.random_attachment_tree(50, rng=3)
        b = families.random_attachment_tree(50, rng=3)
        assert a == b

    def test_random_attachment_valid(self):
        tree = families.random_attachment_tree(200, rng=1)
        assert tree.n == 200
        assert 0 in dict(degree_histogram(tree))  # there are leaves

    def test_binary_reduction_tree_is_reduction(self):
        tree = families.binary_reduction_tree(4)
        assert is_reduction_tree(tree)
        assert tree.n == 31

    def test_binary_reduction_invalid_factor(self):
        with pytest.raises(ValueError):
            families.binary_reduction_tree(3, reduction_factor=0.0)

    def test_data_spec_validation(self):
        with pytest.raises(ValueError):
            families.chain(3, fout=[1.0, 2.0])  # wrong length
