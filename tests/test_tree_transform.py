"""Unit tests for tree transformations (reduction trees, subtrees, relabelling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tree_transform as tt
from repro.core.task_tree import TaskTree

from .helpers import random_tree


class TestIsReductionTree:
    def test_true_case(self):
        tree = TaskTree(parent=[2, 2, -1], fout=[3.0, 4.0, 5.0], nexec=0.0)
        assert tt.is_reduction_tree(tree)

    def test_execution_data_breaks_it(self):
        tree = TaskTree(parent=[2, 2, -1], fout=[3.0, 4.0, 5.0], nexec=[0.0, 0.0, 1.0])
        assert not tt.is_reduction_tree(tree)

    def test_large_output_breaks_it(self):
        tree = TaskTree(parent=[2, 2, -1], fout=[1.0, 1.0, 5.0], nexec=0.0)
        assert not tt.is_reduction_tree(tree)

    def test_leaves_always_fine(self):
        # A single leaf with huge output is still a reduction tree (no children).
        tree = TaskTree(parent=[-1], fout=[100.0], nexec=[0.0])
        assert tt.is_reduction_tree(tree)


class TestToReductionTree:
    def test_interior_reduction_nodes_untouched(self):
        tree = TaskTree(parent=[2, 2, -1], fout=[3.0, 4.0, 5.0], nexec=0.0)
        result = tt.to_reduction_tree(tree)
        # Leaves always receive a fictitious child (their own output must be
        # covered by inputs); interior node 2 already satisfies the reduction
        # property so it is untouched.
        assert result.num_fictitious == 2
        assert set(result.fictitious_parent) == {0, 1}

    def test_result_is_reduction_tree(self, small_tree, rng):
        for tree in [small_tree] + [random_tree(rng, 30) for _ in range(10)]:
            result = tt.to_reduction_tree(tree)
            assert tt.is_reduction_tree(result.tree)

    def test_original_nodes_preserved(self, small_tree):
        result = tt.to_reduction_tree(small_tree)
        reduced = result.tree
        assert reduced.n >= small_tree.n
        # Original indices keep their output size and processing time.
        assert np.allclose(reduced.fout[: small_tree.n], small_tree.fout)
        assert np.allclose(reduced.ptime[: small_tree.n], small_tree.ptime)
        # Execution data is folded into fictitious inputs.
        assert np.allclose(reduced.nexec, 0.0)

    def test_fictitious_nodes_are_leaves_with_zero_time(self, small_tree):
        result = tt.to_reduction_tree(small_tree)
        for node in range(result.original_n, result.tree.n):
            assert result.tree.is_leaf(node)
            assert result.tree.ptime[node] == 0.0
            assert result.is_fictitious(node)
            assert result.to_original(node) is None
        assert result.to_original(0) == 0

    def test_added_output_accounting(self, small_tree):
        result = tt.to_reduction_tree(small_tree)
        added = float(result.tree.fout[small_tree.n :].sum())
        assert added == pytest.approx(result.added_output)

    def test_total_work_unchanged(self, rng):
        tree = random_tree(rng, 40)
        result = tt.to_reduction_tree(tree)
        assert result.tree.total_work == pytest.approx(tree.total_work)


class TestExtractSubtree:
    def test_extract(self, small_tree):
        sub, nodes = tt.extract_subtree(small_tree, 4)
        assert sub.n == 3
        assert sorted(nodes.tolist()) == [0, 1, 4]
        assert sub.total_work == pytest.approx(1.0 + 2.0 + 3.0)

    def test_extract_leaf(self, small_tree):
        sub, nodes = tt.extract_subtree(small_tree, 2)
        assert sub.n == 1
        assert nodes.tolist() == [2]

    def test_extract_root_is_whole_tree(self, small_tree):
        sub, nodes = tt.extract_subtree(small_tree, small_tree.root)
        assert sub.n == small_tree.n
        assert sub.total_work == pytest.approx(small_tree.total_work)


class TestRelabelByOrder:
    def test_relabel_by_topological_order(self, small_tree):
        order = small_tree.topological_order()
        relabelled, new_of_old = tt.relabel_by_order(small_tree, order)
        # After relabelling by a topological order, every parent has a larger index.
        for child, parent in relabelled.edges():
            assert child < parent
        # Data follows the nodes.
        for old in range(small_tree.n):
            assert relabelled.fout[new_of_old[old]] == pytest.approx(small_tree.fout[old])

    def test_identity_relabel(self, small_tree):
        identity = np.arange(small_tree.n)
        relabelled, mapping = tt.relabel_by_order(small_tree, identity)
        assert relabelled == small_tree
        assert mapping.tolist() == identity.tolist()

    def test_invalid_permutation_rejected(self, small_tree):
        with pytest.raises(ValueError):
            tt.relabel_by_order(small_tree, np.zeros(small_tree.n, dtype=int))
