"""The static kernel-contract analyzer (:mod:`repro.analysis`).

Each rule family is exercised on small fixture modules written to
``tmp_path`` (the analyzer matches contract files by path *suffix*, so a
fixture at ``<tmp>/experiments/records.py`` is held to the RecordTable
schema contract).  The meta-test at the bottom asserts the AST scan and the
runtime registries agree on which functions are registered — neither a
decorator the scan cannot see nor a scanned decorator that never runs can
slip through.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    HOT_KERNELS,
    PLANE_MUTATORS,
    analyze_paths,
    apply_baseline,
    failing,
    iter_registered,
    load_baseline,
    main,
    registration_key,
    write_baseline,
)

# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_module(tmp_path: Path, relative: str, source: str) -> Path:
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_of(findings) -> list[str]:
    return sorted({f.rule for f in findings})


def kernel_findings(tmp_path: Path, body: str) -> list:
    """Analyze a one-kernel module whose def body is ``body``."""
    header = textwrap.dedent(
        """
        from repro.analysis.registry import hot_kernel

        @hot_kernel
        def kernel(a, b):
        """
    )
    source = header + textwrap.indent(textwrap.dedent(body).strip("\n"), "    ") + "\n"
    path = write_module(tmp_path, "kernels.py", source)
    return analyze_paths([path])


# --------------------------------------------------------------------------- #
# kernel purity (KP1xx)
# --------------------------------------------------------------------------- #


def test_clean_kernel_passes(tmp_path):
    findings = kernel_findings(
        tmp_path,
        """
        total = 0.0
        for i in range(a):
            total += b[i]
        return total
        """,
    )
    assert findings == []


def test_undecorated_function_is_not_checked(tmp_path):
    path = write_module(
        tmp_path,
        "setup.py",
        """
        def build():
            try:
                return {"a": 1}
            except KeyError:
                return {}
        """,
    )
    assert analyze_paths([path]) == []


@pytest.mark.parametrize(
    "body, rule",
    [
        ("state = {}\nreturn state", "KP101"),
        ("seen = set()\nreturn seen", "KP101"),
        ("pairs = {k: v for k, v in a}\nreturn pairs", "KP101"),
        (
            "import numpy as np\nout = np.empty(a, dtype=object)\nreturn out",
            "KP102",
        ),
        (
            "import numpy as np\nreturn np.asarray(a).astype(object)",
            "KP102",
        ),
        ("try:\n    return a[b]\nexcept IndexError:\n    return 0", "KP103"),
        ("yield a", "KP104"),
        ("for i in range(a):\n    chunk = [0] * b\nreturn chunk", "KP106"),
        (
            "import numpy as np\n"
            "while a > 0:\n"
            "    buf = np.zeros(b, dtype=np.float64)\n"
            "    a -= 1\n"
            "return buf",
            "KP106",
        ),
    ],
    ids=[
        "dict-literal",
        "set-call",
        "dict-comp",
        "object-dtype-kw",
        "astype-object",
        "try",
        "yield",
        "loop-list-mult",
        "loop-np-alloc",
    ],
)
def test_kernel_violation_detected(tmp_path, body, rule):
    findings = kernel_findings(tmp_path, body)
    assert rule in rules_of(findings), findings
    assert failing(findings)


def test_kwargs_signature_rejected(tmp_path):
    path = write_module(
        tmp_path,
        "kernels.py",
        """
        from repro.analysis.registry import hot_kernel

        @hot_kernel
        def kernel(a, **kwargs):
            return a
        """,
    )
    assert rules_of(analyze_paths([path])) == ["KP105"]


def test_closure_cell_rejected(tmp_path):
    path = write_module(
        tmp_path,
        "kernels.py",
        """
        from repro.analysis.registry import hot_kernel

        @hot_kernel
        def kernel(a):
            total = 0

            def step():
                nonlocal total
                total += a
            step()
            return total
        """,
    )
    assert "KP107" in rules_of(analyze_paths([path]))


def test_parameter_default_binding_passes(tmp_path):
    # The sanctioned alternative to a closure cell: bind via default args.
    path = write_module(
        tmp_path,
        "kernels.py",
        """
        from repro.analysis.registry import hot_kernel

        @hot_kernel
        def kernel(a):
            def step(a=a):
                return a + 1
            return step()
        """,
    )
    assert analyze_paths([path]) == []


def test_statement_level_comprehension_allowed(tmp_path):
    # Setup comprehensions outside For/While bodies are not hot-loop allocs.
    findings = kernel_findings(
        tmp_path,
        """
        ranks = [0 for _ in range(a)]
        total = 0
        for i in range(a):
            total += ranks[i]
        return total
        """,
    )
    assert findings == []


# --------------------------------------------------------------------------- #
# escape hatch
# --------------------------------------------------------------------------- #


def test_waiver_suppresses_same_line(tmp_path):
    findings = kernel_findings(
        tmp_path,
        """
        for i in range(a):
            buf = [0] * b  # kernel-ok: loop-alloc (test fixture)
        return buf
        """,
    )
    assert rules_of(findings) == ["KP106"]
    assert all(f.waived for f in findings)
    assert failing(findings) == []


def test_waiver_suppresses_line_above(tmp_path):
    findings = kernel_findings(
        tmp_path,
        """
        for i in range(a):
            # kernel-ok: KP106
            buf = [0] * b
        return buf
        """,
    )
    assert failing(findings) == []


def test_waiver_for_other_rule_does_not_suppress(tmp_path):
    findings = kernel_findings(
        tmp_path,
        """
        for i in range(a):
            buf = [0] * b  # kernel-ok: try
        return buf
        """,
    )
    assert rules_of(failing(findings)) == ["KP106"]


# --------------------------------------------------------------------------- #
# plane contracts (PC2xx)
# --------------------------------------------------------------------------- #


def test_record_fields_drift_detected(tmp_path):
    path = write_module(
        tmp_path,
        "experiments/records.py",
        """
        RECORD_FIELDS = (
            Field("tree_index", "<i8"),
            Field("run_index", "<i8"),
        )
        """,
    )
    findings = analyze_paths([path])
    assert rules_of(findings) == ["PC201"]
    # Every missing contract field is reported individually.
    assert any("missing contract field" in f.message for f in findings)


def test_record_fields_matching_contract_passes():
    # The live module satisfies its own contract.
    findings = analyze_paths([SRC_ROOT / "experiments" / "records.py"])
    assert [f for f in findings if f.rule == "PC201"] == []


def test_named_array_dtype_mismatch_detected(tmp_path):
    path = write_module(
        tmp_path,
        "schedulers/engine.py",
        """
        import numpy as np

        def build(n):
            block = np.zeros(n, dtype=np.int32)
            return block
        """,
    )
    assert rules_of(analyze_paths([path])) == ["PC202"]


def test_named_array_missing_dtype_detected(tmp_path):
    path = write_module(
        tmp_path,
        "schedulers/engine.py",
        """
        import numpy as np

        def build(n):
            block = np.zeros(n)
            return block
        """,
    )
    assert rules_of(analyze_paths([path])) == ["PC203"]


def test_workspace_plane_name_drift_detected(tmp_path):
    path = write_module(
        tmp_path,
        "batch/planes.py",
        """
        WORKSPACE_PLANE_NAMES = ("ws:not_a_real_plane",)
        """,
    )
    assert rules_of(analyze_paths([path])) == ["PC205"]


def test_unregistered_plane_append_detected(tmp_path):
    path = write_module(
        tmp_path,
        "batch/workspace.py",
        """
        def fill(planes, values):
            planes["ws:bogus_plane"].append(values)
        """,
    )
    findings = analyze_paths([path])
    assert rules_of(findings) == ["PC205"]
    assert "unregistered workspace plane" in findings[0].message


# --------------------------------------------------------------------------- #
# anti-drift (AD301)
# --------------------------------------------------------------------------- #

DRIFT_SOURCE = """
from repro.analysis.registry import hot_kernel


{decorator}def transition(activated, node):
    activated[node] = 1
"""


def test_unregistered_plane_mutation_detected(tmp_path):
    path = write_module(
        tmp_path,
        "schedulers/membooking.py",
        DRIFT_SOURCE.format(decorator=""),
    )
    findings = analyze_paths([path])
    assert rules_of(findings) == ["AD301"]
    assert findings[0].scope == "transition"


def test_registered_kernel_may_mutate_planes(tmp_path):
    path = write_module(
        tmp_path,
        "schedulers/membooking.py",
        DRIFT_SOURCE.format(decorator="@hot_kernel\n"),
    )
    assert analyze_paths([path]) == []


def test_drift_rule_scoped_to_scheduler_modules(tmp_path):
    # The same store in a non-policed module is fine.
    path = write_module(
        tmp_path,
        "experiments/metrics.py",
        DRIFT_SOURCE.format(decorator=""),
    )
    assert analyze_paths([path]) == []


# --------------------------------------------------------------------------- #
# baseline + CLI
# --------------------------------------------------------------------------- #


def test_baseline_filters_known_findings(tmp_path):
    path = write_module(
        tmp_path,
        "schedulers/membooking.py",
        DRIFT_SOURCE.format(decorator=""),
    )
    findings = analyze_paths([path])
    assert failing(findings)

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    fingerprints = load_baseline(baseline_path)
    assert failing(apply_baseline(findings, fingerprints)) == []

    # A new finding in the same file is not masked by the baseline.
    path.write_text(
        path.read_text(encoding="utf-8")
        + "\n\ndef other(booked, node):\n    booked[node] = 0.0\n",
        encoding="utf-8",
    )
    fresh = apply_baseline(analyze_paths([path]), fingerprints)
    assert [f.scope for f in failing(fresh)] == ["other"]


def test_cli_exit_codes(tmp_path, capsys):
    bad = write_module(
        tmp_path,
        "schedulers/membooking.py",
        DRIFT_SOURCE.format(decorator=""),
    )
    clean = write_module(tmp_path, "clean.py", "X = 1\n")

    assert main([str(clean)]) == 0
    assert main([str(bad)]) == 1
    capsys.readouterr()

    report = tmp_path / "report.json"
    assert main([str(bad), "--json", str(report)]) == 1
    capsys.readouterr()
    payload = json.loads(report.read_text(encoding="utf-8"))
    assert payload["counts"]["failing"] == 1
    assert payload["findings"][0]["rule"] == "AD301"

    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()
    assert main([str(bad), "--baseline", str(baseline)]) == 0


def test_syntax_error_is_a_finding(tmp_path):
    path = write_module(tmp_path, "broken.py", "def oops(:\n")
    findings = analyze_paths([path])
    assert rules_of(findings) == ["AN000"]
    assert failing(findings)


def test_live_tree_is_clean():
    """The repo itself lints clean: every live finding is waived in place."""
    findings = analyze_paths([SRC_ROOT])
    assert failing(findings) == [], "\n".join(
        f.location() + " " + f.rule + " " + f.message for f in failing(findings)
    )
    # The accountability ledger is not empty: the deliberate waivers exist.
    assert any(f.waived for f in findings)


# --------------------------------------------------------------------------- #
# meta-test: AST scan == runtime registries
# --------------------------------------------------------------------------- #


def _scanned_keys() -> dict[str, set[str]]:
    keys: dict[str, set[str]] = {"kernel": set(), "mutator": set()}
    for module, registered in iter_registered([SRC_ROOT]):
        relative = module.path.relative_to(SRC_ROOT.parent).with_suffix("")
        module_name = ".".join(relative.parts)
        keys[registered.kind].add(registration_key(module_name, registered.qualname))
    return keys


def test_scan_matches_runtime_registries():
    # Import every module that registers kernels so the runtime side is full.
    import repro.batch.lanes  # noqa: F401
    import repro.schedulers.activation  # noqa: F401
    import repro.schedulers.engine  # noqa: F401
    import repro.schedulers.membooking  # noqa: F401

    scanned = _scanned_keys()
    assert scanned["kernel"] == set(HOT_KERNELS)
    assert scanned["mutator"] == set(PLANE_MUTATORS)
    # The shared transition kernels of PR 5 are registered on both sides.
    assert (
        registration_key("repro.schedulers.activation", "run_activation_scan")
        in HOT_KERNELS
    )
