"""The native kernel plane: build cache, fallback policy, bit-identity.

Three contracts are pinned here:

- **Fallback policy** — in AUTO mode (``REPRO_NATIVE`` unset) a missing
  compiler degrades silently to the pure-Python kernels and the failure is
  remembered for the process; in REQUIRED mode (``REPRO_NATIVE=1``,
  ``--native``, ``SweepConfig.native=True``) the same failure raises
  :class:`~repro.native.NativeUnavailableError` so CI can forbid silent
  fallbacks.
- **Content-addressed cache** — the shared object is keyed by the SHA-256
  of (ABI version, flags, source text): editing the source transparently
  rebuilds under a new name, warm rebuilds are a no-op, and
  ``REPRO_NATIVE_CACHE`` relocates the cache wholesale.
- **Bit-identity** — the compiled steppers reproduce the Python kernels
  byte-for-byte on the randomized fuzz grid of
  :mod:`tests.test_batch_parity`, closing the four-way chain
  native == python == batched-native == frozen reference.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.native as native_mod
from repro.batch import BatchedBackend
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import SerialBackend
from repro.native import NativeBuildError, NativeUnavailableError, native_kernels
from repro.native.abi import load_kernels
from repro.native.build import (
    ABI_VERSION,
    SOURCE_PATH,
    _find_compiler,
    build_library,
    source_digest,
)
from repro.schedulers import SCHEDULER_FACTORIES, ActivationScheduler
from repro.schedulers.reference import REFERENCE_FACTORIES

from .test_batch_parity import FUZZ_CONFIGS, fuzz_trees, record_bytes

needs_cc = pytest.mark.skipif(
    _find_compiler() is None, reason="no C compiler on this machine"
)


@pytest.fixture
def fresh_native():
    """Isolate the process-wide load state from the surrounding suite."""
    native_mod.reset_native_cache()
    yield
    native_mod.reset_native_cache()


def _broken_build(monkeypatch, calls):
    def failing_build(*args, **kwargs):
        calls.append(1)
        raise NativeBuildError("no C compiler found (tried $CC, cc, gcc, clang)")

    monkeypatch.setattr(native_mod, "build_library", failing_build)


# ---------------------------------------------------------------------------
# Fallback policy
# ---------------------------------------------------------------------------


def test_auto_mode_falls_back_silently_when_build_fails(
    monkeypatch, fresh_native, small_tree
):
    """No compiler + AUTO mode: pure Python, no error, failure cached."""
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    calls: list[int] = []
    _broken_build(monkeypatch, calls)

    assert native_kernels(None) is None
    assert native_kernels(None) is None
    assert len(calls) == 1, "AUTO mode must remember the failed attempt"

    # The scalar scheduler still runs end to end on the Python kernels and
    # produces the exact same schedule as an explicit native=False run.
    fallback = ActivationScheduler().schedule(small_tree, 2, 60.0)
    off = ActivationScheduler()
    off.native = False
    explicit = off.schedule(small_tree, 2, 60.0)
    assert fallback.completed and explicit.completed
    assert list(fallback.start_times) == list(explicit.start_times)
    assert list(fallback.finish_times) == list(explicit.finish_times)


def test_required_mode_raises_when_build_fails(monkeypatch, fresh_native, small_tree):
    """REQUIRED mode turns the same failure into NativeUnavailableError."""
    _broken_build(monkeypatch, [])

    with pytest.raises(NativeUnavailableError, match="no C compiler"):
        native_kernels(True)

    monkeypatch.setenv("REPRO_NATIVE", "1")
    with pytest.raises(NativeUnavailableError):
        native_kernels(None)

    # The per-scheduler override propagates the error out of schedule().
    required = ActivationScheduler()
    required.native = True
    with pytest.raises(NativeUnavailableError):
        required.schedule(small_tree, 2, 60.0)


def test_subclass_hook_override_opts_out_of_native(fresh_native, small_tree):
    """A subclass customising an engine hook never takes the C fast path.

    The compiled stepper cannot call back into Python per event, so an
    overridden hook (instrumentation, extra bookkeeping, deliberate test
    faults) must route the run through the Python kernels — even when
    native was explicitly requested.
    """
    calls: list[tuple[int, ...]] = []

    class CountingScheduler(ActivationScheduler):
        def _on_tasks_finished(self, nodes):
            calls.append(tuple(nodes))
            super()._on_tasks_finished(nodes)

    scheduler = CountingScheduler()
    scheduler.native = True
    result = scheduler.schedule(small_tree, 2, 60.0)
    assert result.completed
    assert calls, "the overridden hook must still observe every completion"


def test_env_zero_disables_native_entirely(monkeypatch, fresh_native):
    """REPRO_NATIVE=0 never builds or loads, even with a working toolchain."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    calls: list[int] = []
    _broken_build(monkeypatch, calls)
    assert native_kernels(None) is None
    assert native_kernels(False) is None
    assert calls == [], "OFF mode must not attempt a build"


# ---------------------------------------------------------------------------
# Content-addressed build cache
# ---------------------------------------------------------------------------


@needs_cc
def test_source_edit_rebuilds_under_new_name(tmp_path):
    """Stale shared objects can never be loaded: the name is the content."""
    source = SOURCE_PATH.read_text(encoding="utf-8")

    first = build_library(source, cache_dir=tmp_path)
    assert first.parent == tmp_path and first.exists()
    stamp = first.stat().st_mtime_ns

    # Warm rebuild: same digest, same file, no recompilation.
    assert build_library(source, cache_dir=tmp_path) == first
    assert first.stat().st_mtime_ns == stamp

    # An edited source (here: one appended comment) gets a new digest and
    # therefore a fresh shared object beside the old one.
    edited = source + "\n/* cache-busting tweak */\n"
    assert source_digest(edited) != source_digest(source)
    second = build_library(edited, cache_dir=tmp_path)
    assert second != first and second.exists() and first.exists()

    # The rebuilt library is genuinely loadable and reports the ABI version.
    kernels = load_kernels(second)
    assert kernels.path == second


@needs_cc
def test_cache_env_override_relocates_cache(tmp_path, monkeypatch, fresh_native):
    """REPRO_NATIVE_CACHE points the whole build cache somewhere else."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    kernels = native_kernels(True)
    assert kernels is not None
    assert kernels.path.parent == tmp_path


def test_broken_source_raises_build_error(tmp_path):
    """A compiler error surfaces as NativeBuildError with the stderr."""
    if _find_compiler() is None:
        pytest.skip("no C compiler on this machine")
    with pytest.raises(NativeBuildError, match="build failed"):
        build_library("int64_t broken(void) { return }", cache_dir=tmp_path)


def test_abi_version_is_part_of_the_cache_key(monkeypatch):
    """Bumping ABI_VERSION orphans every cached shared object."""
    import repro.native.build as build_mod

    source = SOURCE_PATH.read_text(encoding="utf-8")
    baseline = source_digest(source)
    assert source_digest(source) == baseline, "digest must be deterministic"
    assert source_digest(source + " ") != baseline
    monkeypatch.setattr(build_mod, "ABI_VERSION", ABI_VERSION + 1)
    assert source_digest(source) != baseline


# ---------------------------------------------------------------------------
# Bit-identity: native == python == frozen reference
# ---------------------------------------------------------------------------


def _require_native():
    try:
        if native_kernels(True) is None:  # pragma: no cover - defensive
            pytest.skip("native kernels unavailable")
    except NativeUnavailableError as exc:  # pragma: no cover - no compiler
        pytest.skip(f"native kernels unavailable: {exc}")


@needs_cc
@pytest.mark.parametrize("config_index", range(len(FUZZ_CONFIGS)))
def test_native_equals_python_equals_reference(config_index, monkeypatch):
    """Randomized four-way parity with exact float comparisons.

    The same sweep runs through (a) the Python kernels, (b) the compiled
    scalar stepper, (c) the compiled batched lane engine, and (d) the
    Python kernels with the frozen reference factories patched in; all
    four must produce literally identical record bytes (timing aside).
    """
    _require_native()
    trees = fuzz_trees(1337)
    config = FUZZ_CONFIGS[config_index]

    python = record_bytes(
        run_sweep(trees, replace(config, native=False), backend=SerialBackend())
    )
    native_serial = record_bytes(
        run_sweep(trees, replace(config, native=True), backend=SerialBackend())
    )
    assert native_serial == python, "compiled scalar stepper diverged from Python"

    native_batched = record_bytes(
        run_sweep(trees, replace(config, native=True), backend=BatchedBackend())
    )
    assert native_batched == python, "compiled lane engine diverged from Python"

    for name, factory in REFERENCE_FACTORIES.items():
        monkeypatch.setitem(SCHEDULER_FACTORIES, name, factory)
    reference = record_bytes(
        run_sweep(trees, replace(config, native=False), backend=SerialBackend())
    )
    assert python == reference, "Python kernels diverged from the reference engine"


@needs_cc
def test_native_covers_failure_paths(monkeypatch):
    """Deadlocks and t=0 failures reproduce verbatim through the C plane."""
    _require_native()
    trees = fuzz_trees(7)
    config = SweepConfig(
        memory_factors=(1.0, 1.05),
        processors=(2, 8),
        min_completion_fraction=0.0,
        validate=False,
    )
    python = run_sweep(trees, replace(config, native=False), backend=SerialBackend())
    native = run_sweep(trees, replace(config, native=True), backend=SerialBackend())
    assert record_bytes(native) == record_bytes(python)
    completed = list(python.column("completed"))
    assert not all(completed), "tight-memory grid produced no failures to compare"
    assert list(native.column("failure_reason")) == list(python.column("failure_reason"))
