"""Unit tests for tree construction helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.tree_builders import (
    TreeBuilder,
    from_children_lists,
    from_edges,
    from_networkx,
    from_parents,
    relabelled_from_labels,
)


class TestFromParents:
    def test_basic(self):
        tree = from_parents([1, -1], fout=[1.0, 2.0])
        assert tree.n == 2
        assert tree.root == 1


class TestFromEdges:
    def test_with_labels(self):
        tree, index = from_edges(
            [("a", "c"), ("b", "c")],
            fout={"a": 1.0, "b": 2.0, "c": 3.0},
            ptime={"a": 1.0, "b": 1.0, "c": 5.0},
        )
        assert tree.n == 3
        root = index["c"]
        assert tree.is_root(root)
        assert tree.fout[index["b"]] == pytest.approx(2.0)
        assert tree.names is not None

    def test_single_node_with_root(self):
        tree, index = from_edges([], root="only")
        assert tree.n == 1
        assert index == {"only": 0}

    def test_duplicate_parent_rejected(self):
        with pytest.raises(ValueError):
            from_edges([("a", "b"), ("a", "c")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            from_edges([])

    def test_missing_attribute_defaults(self):
        tree, index = from_edges([("x", "y")], fout={"y": 7.0})
        assert tree.fout[index["x"]] == pytest.approx(1.0)
        assert tree.fout[index["y"]] == pytest.approx(7.0)


class TestFromChildrenLists:
    def test_basic(self):
        tree = from_children_lists([[1, 2], [], []], fout=[3.0, 1.0, 2.0])
        assert tree.root == 0
        assert tree.children(0) == (1, 2)

    def test_double_parent_rejected(self):
        with pytest.raises(ValueError):
            from_children_lists([[1], [2], [1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            from_children_lists([[5]])


class TestFromNetworkx:
    def test_child_to_parent(self):
        graph = nx.DiGraph()
        graph.add_node("r", fout=4.0, ptime=2.0)
        graph.add_node("l", fout=1.0, nexec=0.5)
        graph.add_edge("l", "r")
        tree = from_networkx(graph)
        assert tree.n == 2
        assert tree.fout[tree.root] == pytest.approx(4.0)

    def test_parent_to_child(self):
        graph = nx.DiGraph()
        graph.add_edge("r", "l")
        tree = from_networkx(graph, orientation="parent_to_child")
        assert tree.is_leaf([i for i in range(2) if not tree.is_root(i)][0])

    def test_bad_orientation(self):
        with pytest.raises(ValueError):
            from_networkx(nx.DiGraph(), orientation="sideways")

    def test_multi_parent_rejected(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        with pytest.raises(ValueError):
            from_networkx(graph)


class TestRelabelledFromLabels:
    def test_basic(self):
        tree, index = relabelled_from_labels({"root": None, "a": "root", "b": "root"})
        assert tree.n == 3
        assert tree.is_root(index["root"])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError):
            relabelled_from_labels({"a": "ghost"})


class TestTreeBuilder:
    def test_incremental(self):
        builder = TreeBuilder()
        root = builder.add_node(fout=4.0, ptime=2.0, name="root")
        a = builder.add_node(parent=root, fout=1.0)
        b = builder.add_node(parent=root, fout=2.0)
        builder.set_data(a, ptime=9.0)
        assert len(builder) == 3
        tree = builder.build()
        assert tree.root == root
        assert tree.children(root) == (a, b)
        assert tree.ptime[a] == pytest.approx(9.0)
        assert tree.names is not None and tree.names[root] == "root"

    def test_unknown_parent_rejected(self):
        builder = TreeBuilder()
        with pytest.raises(ValueError):
            builder.add_node(parent=3)

    def test_set_data_unknown_node(self):
        builder = TreeBuilder()
        builder.add_node()
        with pytest.raises(ValueError):
            builder.set_data(5, fout=1.0)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            TreeBuilder().build()
