"""The heavy-leaf caterpillar workload family and its dataset wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import NO_PARENT
from repro.workloads import WorkloadCache, heavy_leaf_caterpillar, heavyleaf_dataset
from repro.workloads.datasets import GENERATOR_VERSION


class TestFamily:
    def test_structure(self):
        tree = heavy_leaf_caterpillar(4, 3, leaf_output=20.0, spine_output=1.0)
        assert tree.n == 4 + 4 * 3
        # Spine: node i feeds node i + 1, the last spine node is the root.
        assert [int(p) for p in tree.parent[:4]] == [1, 2, 3, NO_PARENT]
        # Legs: three leaves per spine node, heavy outputs.
        for spine_node in range(4):
            legs = [
                node
                for node in range(4, tree.n)
                if int(tree.parent[node]) == spine_node
            ]
            assert len(legs) == 3
        assert np.all(tree.fout[4:] == 20.0)
        assert np.all(tree.fout[:4] == 1.0)

    def test_leaves_dominate_volume(self):
        tree = heavy_leaf_caterpillar(10, 2, leaf_output=50.0, spine_output=1.0)
        leaves = tree.fout[10:].sum()
        spine = tree.fout[:10].sum()
        assert leaves > 20 * spine

    def test_jitter_is_seeded(self):
        a = heavy_leaf_caterpillar(6, 2, rng=9, leaf_jitter=0.3)
        b = heavy_leaf_caterpillar(6, 2, rng=9, leaf_jitter=0.3)
        c = heavy_leaf_caterpillar(6, 2, rng=10, leaf_jitter=0.3)
        np.testing.assert_array_equal(a.fout, b.fout)
        assert not np.array_equal(a.fout, c.fout)

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_leaf_caterpillar(0, 2)
        with pytest.raises(ValueError):
            heavy_leaf_caterpillar(3, 0)
        with pytest.raises(ValueError):
            heavy_leaf_caterpillar(3, 2, leaf_output=-1.0)
        with pytest.raises(ValueError):
            heavy_leaf_caterpillar(3, 2, leaf_jitter=1.0)


class TestDataset:
    def test_scales_and_determinism(self):
        trees, spec = heavyleaf_dataset("tiny", seed=77)
        again, _ = heavyleaf_dataset("tiny", seed=77)
        assert spec.name == "heavy-leaf"
        assert spec.num_trees == len(trees) > 1
        for a, b in zip(trees, again):
            np.testing.assert_array_equal(a.fout, b.fout)
        with pytest.raises(ValueError, match="unknown scale"):
            heavyleaf_dataset("galactic")

    def test_keyed_through_workload_cache(self, tmp_path):
        """The family is cacheable like every generated dataset (v2 keys)."""
        assert GENERATOR_VERSION >= 2  # the heavy-leaf family bumped it
        cache = WorkloadCache(tmp_path)
        key = ("heavyleaf", "tiny", 4099)
        first = cache.fetch(key, lambda: heavyleaf_dataset("tiny")[0])
        assert cache.misses == 1
        second = cache.fetch(key, lambda: pytest.fail("must hit the cache"))
        assert cache.hits == 1
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.fout, b.fout)

    def test_reachable_from_figure_dataset_helper(self, tmp_path):
        from repro.experiments.figures import _dataset

        cache = WorkloadCache(tmp_path)
        trees = _dataset("heavyleaf", "tiny", 4099, cache)
        assert len(trees) == heavyleaf_dataset("tiny")[1].num_trees
        assert cache.misses == 1

    def test_reachable_from_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["generate", "heavyleaf", "--scale", "tiny", "--out", str(tmp_path / "d"), "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "d" / "index.json").exists()
