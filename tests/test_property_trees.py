"""Property-based tests of the core tree substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import tree_io, tree_metrics, tree_transform
from repro.core.task_tree import NO_PARENT
from repro.orders.base import Ordering

from .strategies import task_trees, tree_and_order


class TestStructuralInvariants:
    @given(task_trees())
    def test_exactly_one_root_and_n_minus_one_edges(self, tree):
        roots = [i for i in range(tree.n) if tree.parent[i] == NO_PARENT]
        assert roots == [tree.root]
        assert sum(1 for _ in tree.edges()) == tree.n - 1

    @given(task_trees())
    def test_children_and_parent_are_consistent(self, tree):
        for node in range(tree.n):
            for child in tree.children(node):
                assert tree.parent[child] == node
        assert sum(tree.num_children(i) for i in range(tree.n)) == tree.n - 1

    @given(task_trees())
    def test_mem_needed_equation(self, tree):
        for node in range(tree.n):
            expected = (
                sum(tree.fout[c] for c in tree.children(node))
                + tree.nexec[node]
                + tree.fout[node]
            )
            assert tree.mem_needed[node] == pytest.approx(expected)

    @given(task_trees())
    def test_subtree_sizes_sum(self, tree):
        sizes = tree_metrics.subtree_sizes(tree)
        assert sizes[tree.root] == tree.n
        depths = tree_metrics.depths(tree)
        # Sum of subtree sizes equals sum over nodes of (depth + 1).
        assert int(sizes.sum()) == int((depths + 1).sum())

    @given(task_trees())
    def test_height_consistent_with_depths(self, tree):
        assert tree_metrics.height(tree) == int(tree_metrics.depths(tree).max()) + 1

    @given(task_trees())
    def test_bottom_levels_dominate_parents(self, tree):
        bottom = tree_metrics.bottom_levels(tree)
        for child, parent in tree.edges():
            assert bottom[child] >= bottom[parent] - 1e-9

    @given(task_trees())
    def test_critical_path_at_most_total_work(self, tree):
        assert tree_metrics.critical_path_length(tree) <= tree.total_work + 1e-9

    @given(task_trees())
    def test_topological_order_is_valid(self, tree):
        order = Ordering(tree.topological_order())
        assert order.is_topological(tree)
        assert order.is_postorder(tree)


class TestSerializationRoundTrips:
    @given(task_trees())
    @settings(max_examples=50)
    def test_dict_roundtrip(self, tree):
        assert tree_io.from_dict(tree_io.to_dict(tree)) == tree

    @given(task_trees(max_nodes=15))
    @settings(max_examples=30)
    def test_text_roundtrip(self, tmp_path_factory, tree):
        path = tmp_path_factory.mktemp("trees") / "tree.txt"
        tree_io.save_text(tree, path)
        assert tree_io.load_text(path) == tree


class TestTransforms:
    @given(task_trees())
    def test_reduction_transform_properties(self, tree):
        result = tree_transform.to_reduction_tree(tree)
        reduced = result.tree
        assert tree_transform.is_reduction_tree(reduced)
        # Real nodes keep their index, output and duration.
        assert np.allclose(reduced.fout[: tree.n], tree.fout)
        assert np.allclose(reduced.ptime[: tree.n], tree.ptime)
        # The transformation never shrinks a task's memory requirement.
        for node in range(tree.n):
            assert reduced.mem_needed[node] >= tree.mem_needed[node] - 1e-9

    @given(tree_and_order(max_nodes=16))
    def test_relabel_preserves_aggregates(self, tree_order):
        tree, order = tree_order
        relabelled, mapping = tree_transform.relabel_by_order(tree, order.sequence)
        assert relabelled.n == tree.n
        assert relabelled.total_work == pytest.approx(tree.total_work)
        assert float(relabelled.fout.sum()) == pytest.approx(float(tree.fout.sum()))
        assert tree_metrics.height(relabelled) == tree_metrics.height(tree)
        # The mapping is a bijection.
        assert sorted(mapping.tolist()) == list(range(tree.n))

    @given(task_trees(max_nodes=16))
    def test_extract_root_subtree_is_identity_up_to_relabel(self, tree):
        sub, nodes = tree_transform.extract_subtree(tree, tree.root)
        assert sub.n == tree.n
        assert sub.total_work == pytest.approx(tree.total_work)
        assert sorted(nodes.tolist()) == list(range(tree.n))
