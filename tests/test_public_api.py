"""Tests of the top-level package surface (imports, __all__, version)."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ exports missing attribute {name}"

    def test_subpackages_exposed(self):
        for module in ("core", "orders", "schedulers", "bounds", "workloads", "experiments"):
            assert hasattr(repro, module)

    def test_docstring_example_runs(self):
        tree = repro.synthetic_tree(num_nodes=200, rng=0)
        order = repro.minimum_memory_postorder(tree)
        memory = 2.0 * repro.sequential_peak_memory(tree, order)
        result = repro.MemBookingScheduler().schedule(tree, num_processors=8, memory_limit=memory)
        assert result.completed

    def test_factories(self):
        tree = repro.synthetic_tree(num_nodes=50, rng=1)
        assert repro.make_order(tree, "CP").n == tree.n
        assert repro.make_scheduler("Activation").name == "Activation"
        with pytest.raises(ValueError):
            repro.make_order(tree, "nope")
        with pytest.raises(ValueError):
            repro.make_scheduler("nope")
