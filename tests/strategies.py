"""Hypothesis strategies shared by the property-based tests.

The central strategy is :func:`task_trees`, which generates arbitrary rooted
in-trees with integer data sizes and durations.  Integer data keeps the
oracles exact (no floating-point tolerance juggling) while still exercising
every structural edge case: single nodes, chains, stars, zero-size outputs,
zero execution data and zero-duration tasks.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.task_tree import NO_PARENT, TaskTree
from repro.orders.base import Ordering

__all__ = ["task_trees", "topological_orders", "tree_and_order"]


@st.composite
def task_trees(
    draw,
    *,
    min_nodes: int = 1,
    max_nodes: int = 24,
    max_output: int = 12,
    max_exec: int = 6,
    max_time: int = 5,
    allow_zero_output: bool = True,
    allow_zero_time: bool = True,
    chain_bias: bool = True,
) -> TaskTree:
    """Generate a random :class:`TaskTree`.

    ``chain_bias`` occasionally attaches node ``i`` to node ``i - 1`` so the
    generated population contains deep chains as well as bushy trees.
    """
    n = draw(st.integers(min_nodes, max_nodes))
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for i in range(1, n):
        if chain_bias and draw(st.booleans()):
            parent[i] = i - 1
        else:
            parent[i] = draw(st.integers(0, i - 1))

    min_output = 0 if allow_zero_output else 1
    min_time = 0 if allow_zero_time else 1
    fout = [draw(st.integers(min_output, max_output)) for _ in range(n)]
    nexec = [draw(st.integers(0, max_exec)) for _ in range(n)]
    ptime = [draw(st.integers(min_time, max_time)) for _ in range(n)]
    return TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime)


@st.composite
def topological_orders(draw, tree: TaskTree) -> Ordering:
    """A random topological order (children before parents) of ``tree``."""
    remaining = [tree.num_children(i) for i in range(tree.n)]
    available = sorted(i for i in range(tree.n) if remaining[i] == 0)
    sequence: list[int] = []
    while available:
        index = draw(st.integers(0, len(available) - 1))
        node = available.pop(index)
        sequence.append(node)
        p = int(tree.parent[node])
        if p != NO_PARENT:
            remaining[p] -= 1
            if remaining[p] == 0:
                available.append(p)
    return Ordering(sequence, name="random-topo")


@st.composite
def tree_and_order(draw, **tree_kwargs) -> tuple[TaskTree, Ordering]:
    """A random tree together with a random topological order of it."""
    tree = draw(task_trees(**tree_kwargs))
    order = draw(topological_orders(tree))
    return tree, order
