"""Unit tests for :class:`repro.schedulers.ReadyQueue` and schedule parity.

The ReadyQueue replaced three ad-hoc ready-pool implementations (two
``IndexedHeap`` usages with hand-computed priorities and an O(n) ``min``
scan over a plain set).  The parity tests pin the contract that made the
replacement safe: every ReadyQueue-backed scheduler produces exactly the
same schedule as :class:`MemBookingReferenceScheduler` / the seed
behaviour on random instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.orders import minimum_memory_postorder, sequential_peak_memory
from repro.schedulers import ReadyQueue
from repro.schedulers.membooking import (
    MemBookingReferenceScheduler,
    MemBookingScheduler,
)

from .helpers import random_tree


class TestReadyQueue:
    def test_pops_in_rank_order(self):
        rank = np.asarray([3, 0, 2, 1])
        queue = ReadyQueue(rank, items=[0, 1, 2, 3])
        assert [queue.pop() for _ in range(4)] == [1, 3, 2, 0]

    def test_pop_empty_returns_none(self):
        queue = ReadyQueue(np.arange(4))
        assert queue.pop() is None
        assert queue.peek() is None

    def test_len_bool_contains(self):
        queue = ReadyQueue(np.arange(5))
        assert not queue and len(queue) == 0
        queue.add(3)
        assert queue and len(queue) == 1 and 3 in queue and 2 not in queue

    def test_peek_does_not_remove(self):
        queue = ReadyQueue(np.asarray([1, 0]), items=[0, 1])
        assert queue.peek() == 1
        assert len(queue) == 2

    def test_remove_and_discard(self):
        queue = ReadyQueue(np.arange(6), items=[2, 4])
        queue.remove(2)
        assert 2 not in queue
        with pytest.raises(KeyError):
            queue.remove(2)
        queue.discard(2)  # no-op
        queue.discard(4)
        assert not queue

    def test_duplicate_add_rejected(self):
        queue = ReadyQueue(np.arange(3), items=[1])
        with pytest.raises(ValueError):
            queue.add(1)

    def test_interleaved_adds_and_pops(self):
        rng = np.random.default_rng(7)
        rank = rng.permutation(50)
        queue = ReadyQueue(rank)
        reference: set[int] = set()
        for node in rng.permutation(50):
            queue.add(int(node))
            reference.add(int(node))
            if len(reference) % 3 == 0:
                expected = min(reference, key=lambda i: rank[i])
                assert queue.pop() == expected
                reference.discard(expected)
        while reference:
            expected = min(reference, key=lambda i: rank[i])
            assert queue.pop() == expected
            reference.discard(expected)
        assert queue.pop() is None


class TestScheduleParity:
    """ReadyQueue-backed schedulers versus the reference implementation."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("factor", [1.0, 1.5, 3.0])
    def test_membooking_matches_reference(self, seed, factor):
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, 60)
        order = minimum_memory_postorder(tree)
        memory = factor * sequential_peak_memory(tree, order, check=False)
        optimized = MemBookingScheduler().schedule(tree, 4, memory, ao=order, eo=order)
        reference = MemBookingReferenceScheduler().schedule(tree, 4, memory, ao=order, eo=order)
        assert optimized.completed == reference.completed
        np.testing.assert_array_equal(optimized.start_times, reference.start_times)
        np.testing.assert_array_equal(optimized.finish_times, reference.finish_times)
        np.testing.assert_array_equal(optimized.processor, reference.processor)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_reference_pop_is_rank_minimiser(self, seed):
        """The heap pop extracts exactly what the seed's O(n) min scan did."""
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, 40)
        order = minimum_memory_postorder(tree)
        memory = 2.0 * sequential_peak_memory(tree, order, check=False)

        popped: list[int] = []

        class RecordingReference(MemBookingReferenceScheduler):
            def _pop_ready_task(self):
                before = {n for n in range(self.tree.n) if n in self.ready_queue}
                node = super()._pop_ready_task()
                if node is not None:
                    rank = self.eo.rank
                    assert node == min(before, key=lambda i: rank[i])
                    popped.append(node)
                return node

        result = RecordingReference().schedule(tree, 4, memory, ao=order, eo=order)
        assert result.completed
        assert sorted(popped) == list(range(tree.n))
