"""Cross-process safety of the :class:`ResultCache` row store.

``put_rows`` is a read-merge-write over ``rows.records`` +
``rows.index.json``.  Each individual write has always been atomic
(tmp-file + ``os.replace``), but atomic *writes* do not make the
*read-modify-write* atomic: two processes that both read the store, merge
their own rows and replace it would each publish a store missing the
other's rows — the last replace silently wins.  The fix serialises the
whole section under an exclusive :class:`~repro.resilience.locks.FileLock`
(``rows.lock``) and re-reads the on-disk store inside the lock.

These tests hammer one cache directory from genuinely separate processes
(``subprocess``, not threads — the GIL serialises threads enough to hide
the race) and assert the contract the daemon and parallel sweep backends
rely on: **no lost rows, no quarantined stores, and cached values
identical to a serial run**.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.plan import SweepPlan, execute_plan
from repro.experiments.records import ResultCache, records_equal
from repro.resilience import reset_run_health
from repro.workloads import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = ("scheduling_seconds", "scheduling_seconds_per_node")

#: Both workers and the in-test serial reference regenerate this exact
#: workload — content-addressed instance keys then agree across processes.
CONFIG = SweepConfig(
    schedulers=("Activation", "MemBooking"),
    memory_factors=(2.0, 4.0),
    processors=(2,),
)

WORKER = textwrap.dedent(
    """
    import json
    import sys
    import time
    from pathlib import Path

    from repro.experiments.config import SweepConfig
    from repro.experiments.plan import SweepPlan, execute_plan_cached
    from repro.experiments.records import ResultCache
    from repro.experiments.runner import prepare_instance, run_single
    from repro.workloads import SyntheticTreeConfig, synthetic_trees

    mode, cache_dir, go_file, slot = sys.argv[1:5]
    slot = int(slot)
    cache = ResultCache(cache_dir)
    trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)
    config = SweepConfig(
        schedulers=("Activation", "MemBooking"),
        memory_factors=(2.0, 4.0),
        processors=(2,),
    )

    # Start gate: both workers spin here until the parent says go, so the
    # read-merge-write sections genuinely overlap.
    deadline = time.monotonic() + 30.0
    while not Path(go_file).exists():
        if time.monotonic() > deadline:
            sys.exit("timed out waiting for the go file")
        time.sleep(0.001)

    if mode == "plan":
        plan = SweepPlan.from_config(config, len(trees))
        windows = [list(range(0, 6)), list(range(2, 8))]
        table = execute_plan_cached(trees, plan.subset(windows[slot]), cache=cache)
        print(json.dumps({"rows": len(table), "fresh": cache.rows_fresh}))
    elif mode == "hammer":
        record = run_single(
            prepare_instance(trees[0], 0, config), "Activation", 2, 2.0, config
        )
        for round_index in range(12):
            cache.put_rows(
                (f"k-{slot}-{round_index}-{i}", record) for i in range(4)
            )
        print(json.dumps({"rows_written": 12 * 4}))
    else:
        sys.exit(f"unknown mode {mode!r}")
    """
)


@pytest.fixture(autouse=True)
def _fresh_health():
    reset_run_health()
    yield
    reset_run_health()


def _run_workers(tmp_path: Path, mode: str, count: int = 2) -> Path:
    """Launch ``count`` workers on one cache dir, release them together."""
    cache_dir = tmp_path / "cache"
    script = tmp_path / "worker.py"
    script.write_text(WORKER)
    go_file = tmp_path / "go"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    workers = [
        subprocess.Popen(
            [sys.executable, str(script), mode, str(cache_dir), str(go_file), str(slot)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for slot in range(count)
    ]
    time.sleep(0.2)  # let both reach the gate
    go_file.write_text("go")
    for worker in workers:
        out, err = worker.communicate(timeout=240)
        assert worker.returncode == 0, f"worker failed:\n{out}\n{err}"
        assert json.loads(out.splitlines()[-1])
    return cache_dir


def _assert_store_clean(cache_dir: Path) -> dict[str, int]:
    assert not list(cache_dir.glob("*.quarantined")), "store was quarantined"
    index = json.loads((cache_dir / "rows.index.json").read_text())
    positions = sorted(index.values())
    assert positions == list(range(len(index))), "index is not a clean permutation"
    return index


def test_concurrent_overlapping_plans_lose_no_rows(tmp_path):
    cache_dir = _run_workers(tmp_path, "plan")
    index = _assert_store_clean(cache_dir)

    trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)
    plan = SweepPlan.from_config(CONFIG, len(trees))
    keys = plan.instance_keys(trees)
    assert len(keys) == 8
    # Windows 0-5 and 2-7 union to the full plan: every row must be cached.
    assert set(index) == set(keys)

    cache = ResultCache(cache_dir)
    reference = execute_plan(trees, plan)
    got = cache.get_rows(keys)
    assert records_equal(
        [got[key] for key in keys], reference.to_dicts(), ignore=TIMING_FIELDS
    )


def test_concurrent_put_rows_hammer_keeps_every_row(tmp_path):
    cache_dir = _run_workers(tmp_path, "hammer")
    index = _assert_store_clean(cache_dir)

    expected_keys = {
        f"k-{slot}-{round_index}-{i}"
        for slot in range(2)
        for round_index in range(12)
        for i in range(4)
    }
    # The lost-update race drops whole batches (one replace overwrites the
    # other); under the file lock the union survives exactly.
    assert set(index) == expected_keys

    trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)
    from repro.experiments.runner import prepare_instance, run_single

    record = run_single(
        prepare_instance(trees[0], 0, CONFIG), "Activation", 2, 2.0, CONFIG
    )
    cache = ResultCache(cache_dir)
    got = cache.get_rows(sorted(expected_keys))
    assert len(got) == len(expected_keys)
    assert records_equal(
        list(got.values()), [record] * len(got), ignore=TIMING_FIELDS
    )


def test_serial_rerun_after_concurrency_is_all_hits(tmp_path):
    """A follow-up serial sweep over the contested store is 100% cached."""
    cache_dir = _run_workers(tmp_path, "plan")
    from repro.experiments.plan import execute_plan_cached

    trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)
    plan = SweepPlan.from_config(CONFIG, len(trees))
    cache = ResultCache(cache_dir)
    table = execute_plan_cached(trees, plan, cache=cache)
    assert cache.rows_fresh == 0
    assert cache.rows_cached == len(table) == 8
