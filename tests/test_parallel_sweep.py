"""Determinism of the parallel sweep engine (``run_sweep(jobs=N)``).

The parallel sweep must be a pure performance knob: for any worker count the
records come back in exactly the serial order with exactly the serial values.
The only fields that cannot be compared are the wall-clock timing
measurements (``scheduling_seconds`` and its per-node derivative), which are
non-deterministic by nature even between two serial runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.runner import _resolve_jobs, run_instance, run_sweep
from repro.workloads import SyntheticTreeConfig, synthetic_trees

#: Wall-clock measurements, excluded from equality comparisons.
TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})


def strip_timings(records: list[dict]) -> list[dict]:
    return [{k: v for k, v in r.items() if k not in TIMING_FIELDS} for r in records]


@pytest.fixture(scope="module")
def trees():
    return synthetic_trees(6, SyntheticTreeConfig(num_nodes=80), rng=42)


@pytest.fixture(scope="module")
def config():
    return SweepConfig(
        schedulers=("Activation", "MemBooking"),
        memory_factors=(1.0, 2.0),
        processors=(2, 8),
    )


class TestParallelDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_identical_to_serial(self, trees, config, jobs):
        serial = run_sweep(trees, config, jobs=1)
        parallel = run_sweep(trees, config, jobs=jobs)
        assert strip_timings(parallel) == strip_timings(serial)

    def test_timing_fields_still_measured(self, trees, config):
        records = run_sweep(trees[:2], config, jobs=2)
        assert all(r["scheduling_seconds"] >= 0.0 for r in records)
        assert all(r["scheduling_seconds_per_node"] >= 0.0 for r in records)

    def test_record_order_is_serial_order(self, trees, config):
        records = run_sweep(trees, config, jobs=3)
        expected = [
            (index, p, factor, name)
            for index in range(len(trees))
            for p in config.processors
            for factor in config.memory_factors
            for name in config.schedulers
        ]
        actual = [
            (r["tree_index"], r["num_processors"], r["memory_factor"], r["scheduler"])
            for r in records
        ]
        assert actual == expected

    def test_config_jobs_field_used(self, trees):
        config = SweepConfig(
            schedulers=("MemBooking",), memory_factors=(1.5,), jobs=2
        )
        records = run_sweep(trees, config)
        baseline = run_sweep(trees, config.with_overrides(jobs=1))
        assert strip_timings(records) == strip_timings(baseline)

    def test_jobs_exceeding_tree_count(self, trees, config):
        records = run_sweep(trees[:2], config, jobs=16)
        assert strip_timings(records) == strip_timings(run_sweep(trees[:2], config, jobs=1))


class TestRunInstance:
    def test_matches_sweep_chunk(self, trees, config):
        chunk = run_instance(trees[0], 0, config)
        sweep = run_sweep(trees[:1], config)
        assert strip_timings(chunk) == strip_timings(sweep)

    def test_context_cached_per_tree(self, trees, config):
        chunk = run_instance(trees[0], 0, config)
        minimums = {r["minimum_memory"] for r in chunk}
        assert len(minimums) == 1  # one InstanceContext for every run of the tree


class TestResolveJobs:
    def test_explicit_overrides_config(self):
        config = SweepConfig(jobs=4)
        assert _resolve_jobs(1, config, num_trees=10) == 1
        assert _resolve_jobs(None, config, num_trees=10) == 4

    def test_zero_means_cpu_count(self):
        import os

        config = SweepConfig()
        assert _resolve_jobs(0, config, num_trees=1000) == (os.cpu_count() or 1)

    def test_capped_by_tree_count(self):
        assert _resolve_jobs(8, SweepConfig(), num_trees=3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _resolve_jobs(-1, SweepConfig(), num_trees=3)
        with pytest.raises(ValueError):
            SweepConfig(jobs=-2)
