"""Tests for the ``memtree`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core import load_dataset, save_json
from repro.workloads import synthetic_tree


@pytest.fixture
def tree_file(tmp_path):
    tree = synthetic_tree(num_nodes=80, rng=3)
    path = tmp_path / "tree.json"
    save_json(tree, path)
    return path


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheduler_rejected(self, tree_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", str(tree_file), "--scheduler", "Magic"])


class TestGenerate:
    def test_generate_synthetic(self, tmp_path, capsys):
        out = tmp_path / "ds"
        code = main(
            [
                "generate",
                "synthetic",
                "--out",
                str(out),
                "--scale",
                "tiny",
                "--num-trees",
                "2",
                "--num-nodes",
                "60",
            ]
        )
        assert code == 0
        trees = load_dataset(out)
        assert len(trees) == 2
        assert trees[0].n == 60
        assert "wrote 2 trees" in capsys.readouterr().out

    def test_generate_assembly(self, tmp_path):
        out = tmp_path / "asm"
        code = main(["generate", "assembly", "--out", str(out), "--scale", "tiny"])
        assert code == 0
        assert (out / "index.json").exists()


class TestInfo:
    def test_info_single_file(self, tree_file, capsys):
        assert main(["info", str(tree_file)]) == 0
        out = capsys.readouterr().out
        assert "n=80" in out
        assert "min_memory=" in out

    def test_info_dataset_directory(self, tmp_path, capsys):
        main(["generate", "synthetic", "--out", str(tmp_path / "d"), "--scale", "tiny",
              "--num-trees", "3", "--num-nodes", "40"])
        capsys.readouterr()
        assert main(["info", str(tmp_path / "d")]) == 0
        assert capsys.readouterr().out.count("n=40") == 3


class TestSchedule:
    def test_schedule_success(self, tree_file, capsys):
        code = main(
            [
                "schedule",
                str(tree_file),
                "--scheduler",
                "MemBooking",
                "--processors",
                "4",
                "--memory-factor",
                "2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "MemBooking" in out

    def test_schedule_failure_exit_code(self, tree_file, capsys):
        # An absurdly small absolute memory bound cannot work.
        code = main(["schedule", str(tree_file), "--memory", "1.0"])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_schedule_with_orders(self, tree_file, capsys):
        code = main(
            ["schedule", str(tree_file), "--ao", "memPO", "--eo", "CP", "--scheduler", "Activation"]
        )
        assert code == 0


class TestFigure:
    def test_figure_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig.csv"
        code = main(["figure", "lb_stats", "--scale", "tiny", "--csv", str(csv_path)])
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "lb_stats" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
