"""Property-based tests of the ordering algorithms (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.orders.critical_path import critical_path_order
from repro.orders.optimal_sequential import optimal_sequential_order, optimal_sequential_peak
from repro.orders.peak_memory import (
    sequential_average_memory,
    sequential_peak_memory,
    sequential_profile,
)
from repro.orders.postorder import (
    average_memory_postorder,
    minimum_memory_postorder,
    natural_postorder,
    performance_postorder,
    postorder_peaks,
)

from .helpers import brute_force_optimal_peak
from .strategies import task_trees, tree_and_order


class TestEvaluator:
    @given(tree_and_order())
    def test_peak_at_least_every_single_task(self, tree_order):
        tree, order = tree_order
        peak = sequential_peak_memory(tree, order)
        assert peak >= tree.max_mem_needed - 1e-9

    @given(tree_and_order())
    def test_profile_residents_nonnegative_and_end_at_root_output(self, tree_order):
        tree, order = tree_order
        profile = sequential_profile(tree, order)
        assert (profile.residents >= -1e-9).all()
        assert profile.residents[-1] == pytest.approx(float(tree.fout[tree.root]))

    @given(tree_and_order())
    def test_average_never_exceeds_peak(self, tree_order):
        tree, order = tree_order
        assert (
            sequential_average_memory(tree, order)
            <= sequential_peak_memory(tree, order) + 1e-9
        )


class TestOrderGenerators:
    @given(task_trees())
    def test_every_named_order_is_topological(self, tree):
        for factory in (
            minimum_memory_postorder,
            performance_postorder,
            average_memory_postorder,
            natural_postorder,
            critical_path_order,
            optimal_sequential_order,
        ):
            order = factory(tree)
            assert order.is_topological(tree), factory.__name__

    @given(task_trees())
    def test_postorders_really_are_postorders(self, tree):
        for factory in (minimum_memory_postorder, performance_postorder, average_memory_postorder):
            assert factory(tree).is_postorder(tree), factory.__name__


class TestMemPo:
    @given(task_trees())
    def test_recursion_matches_simulation(self, tree):
        peaks = postorder_peaks(tree)
        simulated = sequential_peak_memory(tree, minimum_memory_postorder(tree))
        assert simulated == pytest.approx(float(peaks[tree.root]))

    @given(tree_and_order())
    def test_mempo_no_worse_than_random_topological_order_among_postorders(self, tree_order):
        # memPO is optimal among postorders; an arbitrary topological order
        # may beat it, but another *postorder* (the natural one) cannot.
        tree, _ = tree_order
        mem_po = sequential_peak_memory(tree, minimum_memory_postorder(tree))
        natural = sequential_peak_memory(tree, natural_postorder(tree))
        assert mem_po <= natural + 1e-9


class TestOptSeq:
    @given(task_trees(max_nodes=30))
    @settings(max_examples=60)
    def test_optseq_never_worse_than_mempo(self, tree):
        opt = optimal_sequential_peak(tree)
        mem_po = sequential_peak_memory(tree, minimum_memory_postorder(tree))
        assert opt <= mem_po + 1e-9

    @given(tree_and_order(max_nodes=30))
    @settings(max_examples=60)
    def test_optseq_never_worse_than_any_random_order(self, tree_order):
        tree, order = tree_order
        opt = optimal_sequential_peak(tree)
        assert opt <= sequential_peak_memory(tree, order) + 1e-9

    @given(task_trees(max_nodes=7))
    @settings(max_examples=40, deadline=None)
    def test_optseq_is_optimal_exhaustively(self, tree):
        assert optimal_sequential_peak(tree) == pytest.approx(brute_force_optimal_peak(tree))
