"""Unit tests for schedule traces, utilisation and Gantt rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.orders import minimum_memory_postorder, sequential_peak_memory
from repro.schedulers import MemBookingScheduler, SequentialScheduler
from repro.schedulers.trace import (
    processor_utilisation,
    render_gantt,
    schedule_events,
    schedule_to_records,
)

from .helpers import random_tree


@pytest.fixture
def scheduled(small_tree):
    order = minimum_memory_postorder(small_tree)
    memory = 2.0 * sequential_peak_memory(small_tree, order)
    result = MemBookingScheduler().schedule(small_tree, 2, memory, ao=order, eo=order)
    assert result.completed
    return small_tree, result


class TestEvents:
    def test_chronological_and_paired(self, scheduled):
        tree, result = scheduled
        events = schedule_events(result)
        assert len(events) == 2 * tree.n
        times = [t for t, *_ in events]
        assert times == sorted(times)
        starts = sum(1 for _, kind, *_ in events if kind == "start")
        assert starts == tree.n

    def test_partial_schedule_only_contains_started_tasks(self, small_tree):
        # Half the root's requirement lets a few leaves start before the
        # scheduler deadlocks; only those tasks appear in the event trace.
        result = MemBookingScheduler().schedule(small_tree, 2, small_tree.max_mem_needed * 0.5)
        assert not result.completed
        events = schedule_events(result)
        started = int(np.isfinite(result.start_times).sum())
        assert 0 < started < small_tree.n
        assert len(events) == 2 * started


class TestUtilisation:
    def test_busy_time_matches_total_work(self, scheduled):
        tree, result = scheduled
        report = processor_utilisation(result)
        assert report.total_busy == pytest.approx(tree.total_work)
        assert 0.0 < report.efficiency <= 1.0
        assert report.num_processors == 2
        assert "efficiency" in report.as_dict()

    def test_sequential_efficiency_is_one(self, rng):
        tree = random_tree(rng, 30)
        order = minimum_memory_postorder(tree)
        result = SequentialScheduler().schedule(
            tree, 1, sequential_peak_memory(tree, order), ao=order, eo=order
        )
        report = processor_utilisation(result)
        assert report.efficiency == pytest.approx(1.0)


class TestGantt:
    def test_contains_every_processor_row(self, scheduled):
        tree, result = scheduled
        text = render_gantt(tree, result, width=40)
        assert "P0" in text and "P1" in text
        assert f"makespan {result.makespan:.6g}" in text

    def test_idle_marker_present_for_underused_processors(self, scheduled):
        tree, result = scheduled
        text = render_gantt(tree, result, width=40)
        assert "." in text  # with 2 processors and a root chain there is idle time

    def test_width_validation(self, scheduled):
        tree, result = scheduled
        with pytest.raises(ValueError):
            render_gantt(tree, result, width=5)

    def test_empty_schedule(self):
        from repro.core.task_tree import TaskTree

        # A single task that does not fit in memory: nothing ever runs.
        lonely = TaskTree(parent=[-1], fout=[2.0], nexec=[2.0], ptime=[1.0])
        result = MemBookingScheduler().schedule(lonely, 2, 1.0)
        assert not result.completed
        assert render_gantt(lonely, result) == "(empty schedule)"

    def test_no_labels_variant(self, scheduled):
        tree, result = scheduled
        text = render_gantt(tree, result, width=40, show_labels=False)
        assert "makespan" not in text


class TestRecords:
    def test_one_record_per_task_sorted_by_start(self, scheduled):
        tree, result = scheduled
        records = schedule_to_records(tree, result)
        assert len(records) == tree.n
        starts = [r["start"] for r in records]
        assert starts == sorted(starts)
        assert {r["task"] for r in records} == set(range(tree.n))
        for record in records:
            assert record["finish"] == pytest.approx(record["start"] + record["duration"])

    def test_records_exportable_to_csv(self, scheduled, tmp_path):
        from repro.experiments.reporting import write_records_csv

        tree, result = scheduled
        path = write_records_csv(schedule_to_records(tree, result), tmp_path / "trace.csv")
        assert path.exists()
        assert path.read_text().count("\n") == tree.n + 1
