"""SIGINT mid-figure must tear down pools and shm segments cleanly.

A ``memtree figure`` run interrupted while its shared-memory pool is busy
(every instance is hung by an injected fault, so the interrupt is
guaranteed to land mid-dispatch) must exit with the conventional status
130, print ``interrupted`` instead of a traceback, terminate its worker
processes, and unlink every shared-memory segment it created — no
``resource_tracker`` leak warnings.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SHM_DIR = Path("/dev/shm")


def _shm_names() -> set[str]:
    try:
        return {entry.name for entry in SHM_DIR.iterdir()}
    except OSError:  # pragma: no cover - platform without /dev/shm
        return set()


@pytest.mark.skipif(not SHM_DIR.is_dir(), reason="needs POSIX /dev/shm")
def test_sigint_tears_down_pool_and_shm(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    # Hang every instance for 300 s under a 120 s watchdog: the run is
    # guaranteed to still be mid-pool when the interrupt arrives.
    env["REPRO_FAULTS"] = "seed=1;hang:1;hang=300;watchdog=120"
    env.pop("REPRO_NATIVE", None)
    before = _shm_names()
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "figure",
            "fig10",
            "--scale",
            "tiny",
            "--jobs",
            "2",
            "--backend",
            "shared-memory",
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )
    try:
        # Readiness signal: the backend publishing its arena segments means
        # the pool phase has started.
        created: set[str] = set()
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            created = _shm_names() - before
            if created or proc.poll() is not None:
                break
            time.sleep(0.25)
        assert proc.poll() is None, (
            f"figure run exited early: {proc.stderr.read() if proc.stderr else ''}"
        )
        assert created, "shared-memory segments never appeared"
        time.sleep(1.0)  # let the workers pick up their (hung) instances
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130, f"rc={proc.returncode}\n{stderr}"
    assert "interrupted" in stderr
    assert "Traceback" not in stderr
    assert "resource_tracker" not in stderr, stderr
    # Every segment the run created was unlinked on the way out.
    leaked = created & _shm_names()
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"
    _ = stdout
