"""Tests for the persistent workload (dataset arena) cache."""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import _dataset
from repro.experiments.suite import main as suite_main
from repro.workloads import WorkloadCache, synthetic_dataset
from repro.workloads.datasets import GENERATOR_VERSION


class TestWorkloadCacheBasics:
    def test_cold_then_warm(self, tmp_path):
        cache = WorkloadCache(tmp_path / "wc")
        generated, _ = synthetic_dataset("tiny", seed=3)
        first = cache.fetch(("synthetic", "tiny", 3), lambda: generated)
        assert cache.misses == 1 and cache.hits == 0
        assert first is generated  # the miss returns exactly what was generated

        calls = []

        def must_not_generate():
            calls.append(1)
            return generated

        second = cache.fetch(("synthetic", "tiny", 3), must_not_generate)
        assert not calls, "warm fetch must not regenerate"
        assert cache.hits == 1
        assert len(second) == len(generated)
        for a, b in zip(second, generated):
            assert a == b  # structure + node data equality

    def test_loaded_trees_are_zero_copy_views(self, tmp_path):
        cache = WorkloadCache(tmp_path / "wc")
        generated, _ = synthetic_dataset("tiny", seed=3)
        cache.fetch(("synthetic", "tiny", 3), lambda: generated)
        loaded = cache.fetch(("synthetic", "tiny", 3), lambda: [])
        # Arena-backed views: read-only arrays not owning their data.
        tree = loaded[0]
        assert not tree.parent.flags.writeable
        assert tree.parent.base is not None

    def test_key_depends_on_every_component(self, tmp_path):
        cache = WorkloadCache(tmp_path / "wc")
        base = cache.key(("synthetic", "tiny", 3))
        assert cache.key(("synthetic", "tiny", 4)) != base
        assert cache.key(("synthetic", "small", 3)) != base
        assert cache.key(("assembly", "tiny", 3)) != base
        assert cache.key(("synthetic", "tiny", 3)) == base

    def test_generator_version_participates_in_key(self, tmp_path, monkeypatch):
        cache = WorkloadCache(tmp_path / "wc")
        base = cache.key(("synthetic", "tiny", 3))
        monkeypatch.setattr("repro.workloads.datasets.GENERATOR_VERSION", GENERATOR_VERSION + 1)
        assert cache.key(("synthetic", "tiny", 3)) != base

    def test_corrupt_arena_counts_as_miss(self, tmp_path):
        cache = WorkloadCache(tmp_path / "wc")
        generated, _ = synthetic_dataset("tiny", seed=3)
        key = cache.key(("synthetic", "tiny", 3))
        cache.put(key, generated)
        cache.path(key).write_bytes(b"not an arena")
        trees = cache.fetch(("synthetic", "tiny", 3), lambda: generated)
        assert cache.misses == 1
        assert trees is generated
        # The corrupt file was overwritten with a fresh arena.
        assert cache.get(key) is not None


class TestDatasetIntegration:
    def test_dataset_identical_with_and_without_cache(self, tmp_path):
        cache = WorkloadCache(tmp_path / "wc")
        plain = _dataset("synthetic", "tiny", 7)
        cold = _dataset("synthetic", "tiny", 7, cache)
        warm = _dataset("synthetic", "tiny", 7, cache)
        assert cache.misses == 1 and cache.hits == 1
        for a, b, c in zip(plain, cold, warm):
            assert a == b == c
            np.testing.assert_array_equal(a.parent, c.parent)
            np.testing.assert_array_equal(a.ptime, c.ptime)

    def test_height_dataset_cached_across_scales(self, tmp_path):
        """height_study_dataset ignores scale, so the cache key must too."""
        cache = WorkloadCache(tmp_path / "wc")
        _dataset("height", "tiny", 99, cache)
        _dataset("height", "small", 99, cache)
        assert cache.misses == 1 and cache.hits == 1


class TestSuiteIntegration:
    def test_warm_suite_run_regenerates_nothing(self, tmp_path, capsys):
        """Two identical suite runs: the warm one must load every dataset."""
        out = tmp_path / "suite"
        argv = ["--scale", "tiny", "--figures", "fig10", "fig13", "--out", str(out),
                "--no-cache"]
        assert suite_main(argv) == 0
        cold = capsys.readouterr().out
        assert "workload cache:" in cold
        assert suite_main(argv) == 0
        warm = capsys.readouterr().out
        # Same dataset for both figures: one arena, zero regenerations warm.
        assert "0 misses" in warm.split("workload cache:")[1]
        summary = (out / "summary.md").read_text()
        assert "workload cache:" in summary
