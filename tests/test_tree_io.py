"""Unit tests for tree serialization."""

from __future__ import annotations

import json

import pytest

from repro.core import tree_io
from repro.core.task_tree import TaskTree

from .helpers import random_tree


class TestDictRoundTrip:
    def test_roundtrip(self, small_tree):
        payload = tree_io.to_dict(small_tree, metadata={"origin": "unit-test"})
        rebuilt = tree_io.from_dict(payload)
        assert rebuilt == small_tree
        assert payload["metadata"]["origin"] == "unit-test"

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            tree_io.from_dict({"format": "something-else"})

    def test_rejects_future_version(self, small_tree):
        payload = tree_io.to_dict(small_tree)
        payload["version"] = 999
        with pytest.raises(ValueError):
            tree_io.from_dict(payload)

    def test_names_preserved(self):
        tree = TaskTree(parent=[-1, 0], names=["root", "leaf"])
        rebuilt = tree_io.from_dict(tree_io.to_dict(tree))
        assert rebuilt.names == ("root", "leaf")


class TestJsonFiles:
    def test_roundtrip(self, tmp_path, small_tree):
        path = tree_io.save_json(small_tree, tmp_path / "tree.json")
        assert path.exists()
        assert tree_io.load_json(path) == small_tree

    def test_creates_directories(self, tmp_path, chain3):
        path = tree_io.save_json(chain3, tmp_path / "nested" / "dir" / "t.json")
        assert path.exists()

    def test_file_is_valid_json(self, tmp_path, chain3):
        path = tree_io.save_json(chain3, tmp_path / "t.json")
        json.loads(path.read_text())


class TestTextFiles:
    def test_roundtrip(self, tmp_path, small_tree):
        path = tree_io.save_text(small_tree, tmp_path / "tree.txt")
        assert tree_io.load_text(path) == small_tree

    def test_roundtrip_random(self, tmp_path, rng):
        tree = random_tree(rng, 50, integer_data=False)
        path = tree_io.save_text(tree, tmp_path / "random.txt")
        rebuilt = tree_io.load_text(path)
        assert rebuilt == tree

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 -1 1.0\n")
        with pytest.raises(ValueError):
            tree_io.load_text(path)

    def test_rejects_duplicate_ids(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("0 -1 1 0 1\n0 -1 1 0 1\n")
        with pytest.raises(ValueError):
            tree_io.load_text(path)

    def test_rejects_gapped_ids(self, tmp_path):
        path = tmp_path / "gap.txt"
        path.write_text("0 -1 1 0 1\n2 0 1 0 1\n")
        with pytest.raises(ValueError):
            tree_io.load_text(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# just a comment\n")
        with pytest.raises(ValueError):
            tree_io.load_text(path)


class TestDataset:
    def test_roundtrip(self, tmp_path, rng):
        trees = [random_tree(rng, int(n)) for n in (5, 10, 20)]
        directory = tree_io.save_dataset(trees, tmp_path / "ds", name="demo", metadata={"k": 1})
        loaded = tree_io.load_dataset(directory)
        assert len(loaded) == 3
        for original, rebuilt in zip(trees, loaded):
            assert original == rebuilt

    def test_missing_index(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            tree_io.load_dataset(tmp_path)

    def test_foreign_index_rejected(self, tmp_path):
        (tmp_path / "index.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            tree_io.load_dataset(tmp_path)
