"""Tests of the declarative sweep-plan layer (``repro.experiments.plan``).

Covers the plan-as-data invariants (enumeration order, subsets, tree/lane
grouping, content-addressed instance keys), instance-level caching
(partial hits, cross-figure dedup, stale-directory migration) and the
``--dry-run`` surfaces built on plan assembly.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.figures import _makespan_checks, _series_value
from repro.experiments.plan import (
    SweepPlan,
    execute_plan,
    execute_plan_cached,
    iter_instances,
    tree_content_sha,
)
from repro.experiments.records import InMemoryRowCache, ResultCache
from repro.experiments.runner import run_sweep
from repro.experiments.suite import run_suite
from repro.workloads import synthetic_trees

CONFIG = SweepConfig(
    schedulers=("Activation", "MemBooking"),
    memory_factors=(1.0, 2.0),
    processors=(4, 8),
)


@pytest.fixture(scope="module")
def trees():
    return synthetic_trees(3, rng=5, num_nodes=40)


class TestPlanGrid:
    def test_enumeration_matches_iter_instances(self):
        plan = SweepPlan.from_config(CONFIG, 3)
        assert list(plan.instances()) == list(iter_instances(CONFIG, 3))
        assert len(plan) == 3 * 2 * 2 * 2
        assert plan.is_full

    def test_columns_are_read_only(self):
        plan = SweepPlan.from_config(CONFIG, 2)
        with pytest.raises(ValueError):
            plan.tree_index[0] = 7

    def test_subset_preserves_rows_and_global_index(self):
        plan = SweepPlan.from_config(CONFIG, 3)
        full = list(plan.instances())
        subset = plan.subset([5, 1, 9, 5])  # unordered, duplicated on purpose
        assert list(subset.global_index) == [1, 5, 9]
        assert list(subset.instances()) == [full[1], full[5], full[9]]
        assert not subset.is_full
        with pytest.raises(IndexError):
            plan.subset([len(plan)])

    def test_tree_groups_partition_the_plan(self):
        plan = SweepPlan.from_config(CONFIG, 3)
        groups = list(plan.tree_groups())
        assert [tree_index for tree_index, _ in groups] == [0, 1, 2]
        covered = [int(row) for _, rows in groups for row in rows]
        assert covered == list(range(len(plan)))

    def test_lane_groups_split_batchable_from_scalar(self):
        plan = SweepPlan.from_config(CONFIG, 1)
        rows = next(iter(plan.tree_groups()))[1]
        lanes, scalar = plan.lane_groups(rows, lambda name: name == "MemBooking")
        assert set(lanes) == {"MemBooking"}
        assert len(lanes["MemBooking"]) + len(scalar) == len(rows)
        assert all(plan.combo(int(r))[0] == "Activation" for r in scalar)


class TestInstanceKeys:
    def test_keys_stable_and_unique(self, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        keys = plan.instance_keys(trees)
        again = SweepPlan.from_config(CONFIG, len(trees)).instance_keys(trees)
        assert keys == again
        assert len(set(keys)) == len(keys)

    def test_keys_track_tree_content_and_config_axes(self, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        keys = set(plan.instance_keys(trees))
        other_trees = synthetic_trees(len(trees), rng=6, num_nodes=40)
        assert keys.isdisjoint(plan.instance_keys(other_trees))
        other_config = SweepConfig(
            schedulers=CONFIG.schedulers,
            memory_factors=CONFIG.memory_factors,
            processors=CONFIG.processors,
            execution_order="CP",
        )
        other_plan = SweepPlan.from_config(other_config, len(trees))
        assert keys.isdisjoint(other_plan.instance_keys(trees))

    def test_keys_ignore_execution_knobs(self, trees):
        noisy = SweepConfig(
            schedulers=CONFIG.schedulers,
            memory_factors=CONFIG.memory_factors,
            processors=CONFIG.processors,
            jobs=4,
            backend="shared-memory",
            batch_size=7,
        )
        assert SweepPlan.from_config(noisy, len(trees)).instance_keys(
            trees
        ) == SweepPlan.from_config(CONFIG, len(trees)).instance_keys(trees)

    def test_tree_sha_tracks_content(self, trees):
        assert tree_content_sha(trees[0]) == tree_content_sha(trees[0])
        assert tree_content_sha(trees[0]) != tree_content_sha(trees[1])


class TestExecutePlan:
    def test_full_plan_matches_run_sweep(self, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        table = execute_plan(trees, plan)
        legacy = run_sweep(trees, CONFIG)
        drop = {"scheduling_seconds", "scheduling_seconds_per_node"}
        strip = lambda r: {k: v for k, v in r.items() if k not in drop}  # noqa: E731
        assert [strip(r) for r in table] == [strip(r) for r in legacy]

    def test_subset_matches_full_rows(self, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        full = execute_plan(trees, plan)
        positions = [0, 3, 7, 10, len(plan) - 1]
        subset = execute_plan(trees, plan.subset(positions))
        drop = {"scheduling_seconds", "scheduling_seconds_per_node"}
        strip = lambda r: {k: v for k, v in r.items() if k not in drop}  # noqa: E731
        for offset, position in enumerate(positions):
            assert strip(subset.row(offset)) == strip(full.row(position))


class TestInstanceCache:
    def test_partial_hits_simulate_only_the_new_slice(self, tmp_path, trees):
        cache = ResultCache(tmp_path / "cache")
        plan = SweepPlan.from_config(CONFIG, len(trees))
        first = execute_plan_cached(trees, plan, cache=cache)
        assert cache.rows_fresh == len(plan)
        assert cache.rows_cached == 0

        wider = SweepConfig(
            schedulers=CONFIG.schedulers,
            memory_factors=(1.0, 2.0, 4.0),  # one new factor slice
            processors=CONFIG.processors,
        )
        wide_plan = SweepPlan.from_config(wider, len(trees))
        second = execute_plan_cached(trees, wide_plan, cache=cache)
        new_rows = len(trees) * len(CONFIG.schedulers) * len(CONFIG.processors)
        assert cache.rows_fresh == len(plan) + new_rows
        assert cache.rows_cached == len(plan)
        # The overlapping rows come back identical, wall-clock timing included.
        by_key = dict(zip(wide_plan.instance_keys(trees), list(second)))
        for key, record in zip(plan.instance_keys(trees), list(first)):
            assert by_key[key] == record

    def test_warm_rows_survive_a_fresh_cache_object(self, tmp_path, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        execute_plan_cached(trees, plan, cache=ResultCache(tmp_path / "cache"))
        reopened = ResultCache(tmp_path / "cache")
        execute_plan_cached(trees, plan, cache=reopened)
        assert reopened.rows_fresh == 0
        assert reopened.rows_cached == len(plan)
        assert reopened.hits == 1 and reopened.misses == 0

    def test_in_memory_row_cache_dedups(self, trees):
        cache = InMemoryRowCache()
        plan = SweepPlan.from_config(CONFIG, len(trees))
        execute_plan_cached(trees, plan, cache=cache)
        execute_plan_cached(trees, plan.subset([0, 1, 2]), cache=cache)
        assert cache.rows_fresh == len(plan)
        assert cache.rows_cached == 3

    def test_suite_dedups_across_figures(self, tmp_path):
        stats: dict = {}
        run_suite(["fig10"], scale="tiny", cache=ResultCache(tmp_path / "c"), stats=stats)
        assert stats["fresh"] > 0
        warm_stats: dict = {}
        run_suite(
            ["fig11", "fig12", "fig13"],
            scale="tiny",
            cache=ResultCache(tmp_path / "c"),
            stats=warm_stats,
        )
        # fig11/fig12/fig13 sweep subsets of fig10's synthetic grid: a warm
        # cache leaves nothing to simulate.
        assert warm_stats["fresh"] == 0
        assert warm_stats["cached"] == warm_stats["unique"]


class TestStaleCacheDirectories:
    def test_pre_refactor_blobs_are_ignored_not_crashed_on(self, tmp_path, trees):
        directory = tmp_path / "cache"
        directory.mkdir()
        # Pre-refactor layout: sweep-level <key>.records blobs, no row store.
        (directory / ("ab" * 20 + ".records")).write_bytes(b"not a record table")
        cache = ResultCache(directory)
        plan = SweepPlan.from_config(CONFIG, len(trees))
        assert cache.get_rows(plan.instance_keys(trees)) == {}
        table = execute_plan_cached(trees, plan, cache=cache)
        assert len(table) == len(plan)
        assert cache.misses == 1 and cache.rows_fresh == len(plan)

    def test_corrupt_row_store_degrades_to_empty(self, tmp_path, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        cache = ResultCache(tmp_path / "cache")
        execute_plan_cached(trees, plan, cache=cache)
        (tmp_path / "cache" / "rows.index.json").write_text("{broken")
        reopened = ResultCache(tmp_path / "cache")
        assert reopened.count_cached(plan.instance_keys(trees)) == 0
        table = execute_plan_cached(trees, plan, cache=reopened)
        assert len(table) == len(plan)

    def test_index_pointing_past_table_is_rejected(self, tmp_path, trees):
        plan = SweepPlan.from_config(CONFIG, len(trees))
        cache = ResultCache(tmp_path / "cache")
        execute_plan_cached(trees, plan, cache=cache)
        index_path = tmp_path / "cache" / "rows.index.json"
        index = json.loads(index_path.read_text())
        index[next(iter(index))] = 10_000
        index_path.write_text(json.dumps(index))
        reopened = ResultCache(tmp_path / "cache")
        assert reopened.get_rows(plan.instance_keys(trees)) == {}

    def test_schema_version_participates_in_sweep_keys(self, monkeypatch, trees):
        from repro.experiments import records as records_module

        cache = ResultCache.__new__(ResultCache)
        cache.directory = None  # key() never touches the directory
        current = cache.key(("synthetic", "tiny", 0), CONFIG)
        monkeypatch.setattr(records_module, "CACHE_SCHEMA_VERSION", 2)
        assert cache.key(("synthetic", "tiny", 0), CONFIG) != current


class TestSeriesValueQuantization:
    def test_series_value_matches_float_noise(self):
        noisy_x = 0.1 + 0.1 + 0.1  # 0.30000000000000004
        series = {"s": [(noisy_x, 5.0)]}
        assert _series_value(series, "s", 0.3) == 5.0
        assert _series_value(series, "s", noisy_x) == 5.0
        assert _series_value(series, "s", 0.31) != _series_value(series, "s", 0.3)

    def test_makespan_minimum_coverage_survives_float_noise(self):
        noisy_x = 0.1 + 0.1 + 0.1
        series = {"MemBooking": [(noisy_x, 1.5), (1.0, 1.2)]}
        checks = _makespan_checks(series, (0.3, 1.0))
        assert checks["membooking_covers_minimum_memory"]


class TestDryRunCli:
    def test_figure_dry_run_prints_plan(self, capsys):
        from repro.cli import main

        assert main(["figure", "fig13", "--scale", "tiny", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "sweep plan (dry run):" in out
        assert "instances:" in out and "lane groups" in out

    def test_suite_dry_run_reports_overlap(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "suite",
                "--scale",
                "tiny",
                "--out",
                str(tmp_path / "out"),
                "--figures",
                "fig10",
                "fig12",
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep plan (dry run):" in out
        assert "shared with earlier figures" in out
        # Dry run must not simulate or write anything.
        assert not (tmp_path / "out" / "summary.md").exists()

    def test_suite_writes_plan_stats(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "out"
        code = main(
            ["suite", "--scale", "tiny", "--out", str(out_dir), "--figures", "fig5"]
        )
        assert code == 0
        stats = json.loads((out_dir / "plan-stats.json").read_text())
        assert stats["unique"] == stats["requested"] == stats["fresh"]
        summary = (out_dir / "summary.md").read_text()
        assert "* instances:" in summary and "* fresh simulations:" in summary
