"""Parity suite: the array engine reproduces the reference schedules exactly.

The array-native rewrite of the event engine and of the three dynamic
heuristics (PR 4) promises **bit-identical** schedules — event order,
tie-breaking, deadlock semantics and floating-point bookkeeping — to the
previous generation, which is preserved verbatim in
:mod:`repro.schedulers.reference`.  These tests pin that promise on both
tree families of the paper (assembly surrogate + synthetic), across memory
pressures from infeasible to abundant, processor counts from serial to wide,
and a non-trivial AO/EO split.  Every comparison is exact (``==`` on floats,
no tolerances); only the wall-clock ``scheduling_seconds`` measurements are
exempt.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.orders import make_order, minimum_memory_postorder, sequential_peak_memory
from repro.schedulers import SCHEDULER_FACTORIES, SimWorkspace
from repro.schedulers.reference import REFERENCE_FACTORIES
from repro.workloads.datasets import assembly_dataset, synthetic_dataset

HEURISTICS = sorted(REFERENCE_FACTORIES)  # Activation, MemBooking, MemBookingRedTree

MEMORY_FACTORS = (1.0, 1.2, 2.0, 10.0)
PROCESSORS = (1, 2, 8)


def _datasets():
    synthetic, _ = synthetic_dataset("tiny", seed=7011)
    assembly, _ = assembly_dataset("tiny", seed=2017)
    return [("synthetic", synthetic), ("assembly", assembly)]


def assert_identical_schedules(array_result, reference_result, label: str) -> None:
    """Exact ScheduleResult equality, timing fields aside."""
    assert array_result.scheduler == reference_result.scheduler, label
    assert array_result.completed == reference_result.completed, label
    assert array_result.failure_reason == reference_result.failure_reason, label
    assert array_result.makespan == reference_result.makespan, label
    assert array_result.num_events == reference_result.num_events, label
    assert array_result.peak_memory == reference_result.peak_memory, label
    np.testing.assert_array_equal(
        array_result.start_times, reference_result.start_times, err_msg=label
    )
    np.testing.assert_array_equal(
        array_result.finish_times, reference_result.finish_times, err_msg=label
    )
    np.testing.assert_array_equal(
        array_result.processor, reference_result.processor, err_msg=label
    )
    assert array_result.processor.dtype == reference_result.processor.dtype
    # The booked-memory diagnostics use the same ledger arithmetic too.
    assert array_result.extras.get("peak_booked_memory") == reference_result.extras.get(
        "peak_booked_memory"
    ), label


class TestSeedScheduleParity:
    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_exact_parity_on_both_tree_families(self, heuristic):
        for family, trees in _datasets():
            for tree_index, tree in enumerate(trees):
                order = minimum_memory_postorder(tree)
                minimum = sequential_peak_memory(tree, order, check=False)
                for factor in MEMORY_FACTORS:
                    for p in PROCESSORS:
                        array_result = SCHEDULER_FACTORIES[heuristic]().schedule(
                            tree, p, factor * minimum, ao=order, eo=order
                        )
                        reference_result = REFERENCE_FACTORIES[heuristic]().schedule(
                            tree, p, factor * minimum, ao=order, eo=order
                        )
                        assert_identical_schedules(
                            array_result,
                            reference_result,
                            f"{heuristic} {family}[{tree_index}] factor={factor} p={p}",
                        )

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_parity_with_distinct_execution_order(self, heuristic):
        """AO != EO exercises the EO-rank ready pool against the reference."""
        trees, _ = synthetic_dataset("tiny", seed=31)
        for tree in trees[:2]:
            ao = minimum_memory_postorder(tree)
            eo = make_order(tree, "CP")
            minimum = sequential_peak_memory(tree, ao, check=False)
            for factor in (1.1, 3.0):
                array_result = SCHEDULER_FACTORIES[heuristic]().schedule(
                    tree, 4, factor * minimum, ao=ao, eo=eo
                )
                reference_result = REFERENCE_FACTORIES[heuristic]().schedule(
                    tree, 4, factor * minimum, ao=ao, eo=eo
                )
                assert_identical_schedules(
                    array_result, reference_result, f"{heuristic} AO!=EO factor={factor}"
                )

    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_parity_with_shared_workspace(self, heuristic):
        """A precomputed SimWorkspace (the sweep path) changes nothing."""
        trees, _ = synthetic_dataset("tiny", seed=11)
        tree = trees[0]
        order = minimum_memory_postorder(tree)
        minimum = sequential_peak_memory(tree, order, check=False)
        workspace = SimWorkspace(tree, order, order)
        for factor in (1.0, 2.0):
            with_workspace = SCHEDULER_FACTORIES[heuristic]().schedule(
                tree, 4, factor * minimum, ao=order, eo=order, workspace=workspace
            )
            reference_result = REFERENCE_FACTORIES[heuristic]().schedule(
                tree, 4, factor * minimum, ao=order, eo=order
            )
            assert_identical_schedules(
                with_workspace, reference_result, f"{heuristic} workspace factor={factor}"
            )

    def test_stale_workspace_is_ignored_not_trusted(self):
        """A workspace for the wrong (tree, AO, EO) must not corrupt a run."""
        trees, _ = synthetic_dataset("tiny", seed=12)
        tree_a, tree_b = trees[0], trees[1]
        order_a = minimum_memory_postorder(tree_a)
        order_b = minimum_memory_postorder(tree_b)
        stale = SimWorkspace(tree_a, order_a, order_a)
        minimum = sequential_peak_memory(tree_b, order_b, check=False)
        result = SCHEDULER_FACTORIES["MemBooking"]().schedule(
            tree_b, 4, 2.0 * minimum, ao=order_b, eo=order_b, workspace=stale
        )
        reference_result = REFERENCE_FACTORIES["MemBooking"]().schedule(
            tree_b, 4, 2.0 * minimum, ao=order_b, eo=order_b
        )
        assert_identical_schedules(result, reference_result, "stale workspace")


class TestFailureParity:
    def test_infeasible_and_deadlock_messages_are_identical(self):
        """Failure outcomes (t=0 and mid-run deadlocks) match to the character."""
        trees, _ = synthetic_dataset("tiny", seed=7011)
        seen_failures = 0
        for tree in trees:
            order = minimum_memory_postorder(tree)
            minimum = sequential_peak_memory(tree, order, check=False)
            for factor in (1.0, 1.05, 1.2):
                array_result = SCHEDULER_FACTORIES["MemBookingRedTree"]().schedule(
                    tree, 4, factor * minimum, ao=order, eo=order
                )
                reference_result = REFERENCE_FACTORIES["MemBookingRedTree"]().schedule(
                    tree, 4, factor * minimum, ao=order, eo=order
                )
                assert array_result.failure_reason == reference_result.failure_reason
                assert array_result.completed == reference_result.completed
                if not array_result.completed:
                    seen_failures += 1
        assert seen_failures, "expected at least one infeasible RedTree instance"
