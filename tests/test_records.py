"""Unit tests for the columnar RecordTable result plane and the result cache."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import SweepConfig, run_sweep
from repro.experiments.records import (
    RECORD_FIELDS,
    RecordTable,
    ResultCache,
    records_equal,
)
from repro.experiments.runner import prepare_instance, run_single
from repro.workloads import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = ("scheduling_seconds", "scheduling_seconds_per_node")


def make_record(**overrides) -> dict:
    record = {
        "tree_index": 3,
        "tree_size": 42,
        "tree_height": 7,
        "scheduler": "MemBookingRedTree",
        "num_processors": 8,
        "memory_factor": 1.5,
        "memory_limit": 120.0,
        "minimum_memory": 80.0,
        "completed": True,
        "makespan": 33.5,
        "lower_bound": 30.0,
        "classical_lower_bound": 28.0,
        "memory_lower_bound": 30.0,
        "normalized_makespan": 33.5 / 30.0,
        "peak_memory": 110.0,
        "memory_fraction": 110.0 / 120.0,
        "scheduling_seconds": 0.25,
        "scheduling_seconds_per_node": 0.25 / 42,
        "activation_order": "memPO",
        "execution_order": "CP",
        "failure_reason": None,
    }
    record.update(overrides)
    return record


@pytest.fixture(scope="module")
def sweep_table() -> RecordTable:
    trees = synthetic_trees(3, SyntheticTreeConfig(num_nodes=60), rng=5)
    config = SweepConfig(
        schedulers=("Activation", "MemBooking"), memory_factors=(1.0, 2.0), processors=(4,)
    )
    return run_sweep(trees, config)


class TestSchema:
    def test_schema_matches_run_single_exactly(self):
        """The fixed schema is derived from run_single: same keys, same order."""
        tree = synthetic_trees(1, SyntheticTreeConfig(num_nodes=40), rng=9)[0]
        config = SweepConfig(schedulers=("MemBooking",))
        record = run_single(prepare_instance(tree, 0, config), "MemBooking", 4, 2.0, config)
        assert list(record) == [field.name for field in RECORD_FIELDS]

    def test_scheduler_and_order_names_fit_their_columns(self):
        from repro.orders import ORDER_FACTORIES
        from repro.schedulers import SCHEDULER_FACTORIES

        widths = {field.name: field.str_width for field in RECORD_FIELDS}
        assert all(len(name) <= widths["scheduler"] for name in SCHEDULER_FACTORIES)
        assert all(len(name) <= widths["activation_order"] for name in ORDER_FACTORIES)


class TestRoundTrip:
    def test_from_dicts_to_dicts_is_value_identical(self):
        records = [
            make_record(tree_index=0),
            make_record(
                tree_index=1,
                completed=False,
                makespan=math.inf,
                normalized_makespan=math.nan,
                memory_fraction=math.nan,
                failure_reason="deadlock at t=1.5: 3 tasks remain",
            ),
        ]
        out = RecordTable.from_dicts(records).to_dicts()
        assert records_equal(out, records)
        # Exact native types, not NumPy scalars.
        assert type(out[0]["tree_index"]) is int
        assert type(out[0]["makespan"]) is float
        assert type(out[0]["completed"]) is bool
        assert type(out[0]["scheduler"]) is str
        assert out[0]["failure_reason"] is None
        assert out[1]["failure_reason"] == "deadlock at t=1.5: 3 tasks remain"

    def test_save_load_roundtrip(self, sweep_table, tmp_path):
        path = sweep_table.save(tmp_path / "cache" / "sweep.records")
        for use_mmap in (True, False):
            loaded = RecordTable.load(path, use_mmap=use_mmap)
            assert loaded == sweep_table
            assert loaded.to_dicts() == sweep_table.to_dicts()

    def test_empty_table_roundtrip(self, tmp_path):
        empty = RecordTable.from_dicts([])
        assert len(empty) == 0
        assert empty.to_dicts() == []
        assert empty == []
        path = empty.save(tmp_path / "empty.records")
        assert RecordTable.load(path) == empty

    def test_metadata_persists(self, tmp_path):
        table = RecordTable.from_dicts([make_record()], metadata={"scale": "tiny", "seed": 7})
        loaded = RecordTable.load(table.save(tmp_path / "meta.records"))
        assert loaded.metadata == {"scale": "tiny", "seed": 7}


class TestFailureReasonDictionaryEncoding:
    """The failure_reason column is int32 codes + a codes table in the meta."""

    REASONS = [None, "deadlock at t=3: 7 tasks remain", None, "memory bound too small",
               "deadlock at t=3: 7 tasks remain", None]

    def _table(self) -> RecordTable:
        return RecordTable.from_dicts(
            [
                make_record(tree_index=i, completed=reason is None, failure_reason=reason)
                for i, reason in enumerate(self.REASONS)
            ]
        )

    def test_raw_column_stores_small_integer_codes(self):
        table = self._table()
        column = table.raw_column("failure_reason")
        assert column.dtype == np.dtype("<i4")
        # Codes are assigned in first-seen row order; 0 encodes None.
        assert column.tolist() == [0, 1, 0, 2, 1, 0]

    def test_column_returns_decoded_values(self):
        """column() must agree with the row views, not expose private codes."""
        table = self._table()
        decoded = table.column("failure_reason")
        assert decoded.dtype == object
        assert decoded.tolist() == self.REASONS
        # The vectorised-filter idiom of metrics.py compares strings.
        mask = table.column("failure_reason") == "memory bound too small"
        assert mask.tolist() == [False, False, False, True, False, False]

    def test_decoding_roundtrips_through_every_view(self):
        table = self._table()
        assert [row["failure_reason"] for row in table.to_dicts()] == self.REASONS
        assert table[3]["failure_reason"] == "memory bound too small"

    def test_save_embeds_codes_and_loads_back(self, tmp_path):
        table = self._table()
        path = table.save(tmp_path / "failures.records")
        for use_mmap in (True, False):
            loaded = RecordTable.load(path, use_mmap=use_mmap)
            assert loaded == table
            assert [row["failure_reason"] for row in loaded.to_dicts()] == self.REASONS
        # Saving the loaded table again is a no-op rebuild (codes unchanged).
        again = RecordTable.load(loaded.save(tmp_path / "failures2.records"))
        assert again == table

    def test_copy_carries_codes(self):
        table = self._table()
        clone = table.copy()
        assert clone == table
        assert [row["failure_reason"] for row in clone.to_dicts()] == self.REASONS

    def test_set_value_encodes_canonically(self):
        table = RecordTable.empty(2)
        table.set_row(0, make_record(tree_index=0))
        table.set_row(1, make_record(tree_index=1))
        table.set_value(1, "failure_reason", "boom")
        assert table[1]["failure_reason"] == "boom"
        assert table[0]["failure_reason"] is None

    def test_equality_ignores_code_assignment_order(self):
        a = RecordTable.from_dicts(
            [make_record(tree_index=0, failure_reason="x"),
             make_record(tree_index=1, failure_reason="y")]
        )
        b = RecordTable.empty(2)
        # Assign codes in the opposite first-seen order.
        b.set_value(0, "failure_reason", "y")
        b.set_row(1, make_record(tree_index=1, failure_reason="y"))
        b.set_row(0, make_record(tree_index=0, failure_reason="x"))
        assert a == b

    def test_column_bytes_shrank_versus_fixed_width(self):
        """The stored column really is 4 B/row (the U128 one was 512 B/row)."""
        table = self._table()
        stored = table.raw_column("failure_reason").nbytes
        assert stored == 4 * len(table)
        assert np.dtype("<U128").itemsize * len(table) == 128 * stored

    def test_repeated_saves_are_stable(self, tmp_path):
        """After the first save embeds the codes, saving again is a no-op repack."""
        table = self._table()
        first = table.save(tmp_path / "a.records").read_bytes()
        second = table.save(tmp_path / "b.records").read_bytes()
        assert first == second
        assert RecordTable.load(tmp_path / "b.records") == table


class TestSequenceView:
    def test_len_iter_getitem(self, sweep_table):
        dicts = sweep_table.to_dicts()
        assert len(sweep_table) == len(dicts)
        assert list(sweep_table) == dicts
        assert sweep_table[0] == dicts[0]
        assert sweep_table[-1] == dicts[-1]
        assert sweep_table[1:3] == dicts[1:3]

    def test_string_key_returns_column(self, sweep_table):
        column = sweep_table["normalized_makespan"]
        assert isinstance(column, np.ndarray)
        assert column.dtype == np.float64
        assert len(column) == len(sweep_table)

    def test_unknown_column_rejected(self, sweep_table):
        with pytest.raises(KeyError, match="unknown record field"):
            sweep_table.column("nope")

    def test_row_out_of_range(self, sweep_table):
        with pytest.raises(IndexError):
            sweep_table.row(len(sweep_table))

    def test_equality_against_table_and_list(self, sweep_table):
        assert sweep_table == sweep_table.copy()
        assert sweep_table == sweep_table.to_dicts()
        other = sweep_table.copy()
        other.column("makespan")[0] += 1.0
        assert sweep_table != other


class TestSetRow:
    def test_missing_field_rejected(self):
        table = RecordTable.empty(1)
        with pytest.raises(KeyError):
            table.set_row(0, {"tree_index": 0})

    def test_oversized_string_rejected(self):
        table = RecordTable.empty(1)
        with pytest.raises(ValueError, match="capacity"):
            table.set_row(0, make_record(scheduler="x" * 1000))

    def test_long_failure_reason_roundtrips(self):
        """Dictionary encoding removed the historical 128-character cap."""
        long_reason = "deadlock: " + "x" * 1000
        table = RecordTable.from_dicts([make_record(completed=False, failure_reason=long_reason)])
        assert table[0]["failure_reason"] == long_reason


class TestSharedMemory:
    def test_create_attach_write_read(self):
        records = [make_record(tree_index=i) for i in range(4)]
        shm, table = RecordTable.create_shared(len(records))
        attached = None
        try:
            attached = RecordTable.attach(shm.name)
            for i, record in enumerate(records):
                attached.set_row(i, record)
            # Writes through the attachment are visible to the owner's view.
            assert table.to_dicts() == records
            copy = table.copy()
            assert copy == records
        finally:
            if attached is not None:
                attached.close()
            table.close()
            shm.close()
            shm.unlink()


class TestCorruptInput:
    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            RecordTable(bytearray(b"NOTATBL1" + b"\0" * 64))

    def test_truncated_rejected(self, tmp_path):
        table = RecordTable.from_dicts([make_record()])
        path = table.save(tmp_path / "t.records")
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(ValueError, match="truncated"):
            RecordTable.load(path, use_mmap=False)


class TestResultCache:
    def test_miss_then_hit(self, sweep_table, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key(("synthetic", "tiny", 5), SweepConfig())
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, sweep_table)
        again = cache.get(key)
        assert again is not None and again == sweep_table
        assert cache.hits == 1

    def test_key_ignores_execution_only_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = SweepConfig()
        assert cache.key(("d",), base) == cache.key(
            ("d",), base.with_overrides(jobs=8, backend="shared-memory")
        )
        assert cache.key(("d",), base) != cache.key(
            ("d",), base.with_overrides(memory_factors=(1.0, 2.0))
        )
        assert cache.key(("d", "tiny"), base) != cache.key(("d", "small"), base)

    def test_corrupt_cache_file_is_a_miss(self, sweep_table, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(("d",), SweepConfig())
        cache.put(key, sweep_table)
        cache.path(key).write_bytes(b"garbage")
        assert cache.get(key) is None

    def test_figure_cache_roundtrip(self, tmp_path):
        """A cached figure re-run produces identical series without sweeping."""
        from repro.experiments import run_figure

        cache = ResultCache(tmp_path / "figcache")
        first = run_figure("fig5", scale="tiny", cache=cache)
        assert cache.hits == 0 and cache.misses == 1
        second = run_figure("fig5", scale="tiny", cache=cache)
        assert cache.hits == 1
        assert second.series == first.series
        assert second.checks == first.checks
        assert records_equal(second.records, first.records)
