"""Fault-parity fuzz: injected recoverable faults never change the records.

For figure-shaped sweep configurations (the fig8 order/heuristic grid with
``MemBookingRedTree`` and the fig15 processor sweep), every backend must
produce records byte-identical (wall-clock timing fields aside) to its own
fault-free run — and to the serial reference — while a seeded
:class:`~repro.resilience.faults.FaultPlan` is crashing workers, hanging
instances, raising transient OSErrors and failing the lane engine
underneath it.  This is the acceptance invariant of the fault-tolerant
execution plane: recovery reproduces exactly the bytes the lost attempt
would have produced.
"""

from __future__ import annotations

import pytest

from repro.experiments.backends import BACKEND_NAMES
from repro.experiments.config import SweepConfig
from repro.experiments.records import records_equal
from repro.experiments.runner import run_sweep
from repro.resilience import current_health, reset_fault_state, reset_run_health
from repro.workloads import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = ("scheduling_seconds", "scheduling_seconds_per_node")

#: Every recoverable fault kind armed at once, tuned so a tiny sweep still
#: sees injections while staying fast: first-attempt-only faults (retries
#: always succeed), a short watchdog for the injected hangs, minimal backoff.
RECOVERABLE_PLAN = (
    "seed={seed};worker-crash:3;hang:5;os-transient:4;lane-engine:2;"
    "watchdog=3;hang=20;backoff=0.02"
)

#: fig8-like: the order-choice grid, including the non-batchable
#: ``MemBookingRedTree`` (exercises the scalar fallback inside the batched
#: backend alongside the lane kernels).
FIG8_LIKE = SweepConfig(
    schedulers=("Activation", "MemBooking", "MemBookingRedTree"),
    memory_factors=(1.5, 5.0),
    processors=(8,),
)

#: fig15-like: the processor sweep over the batchable heuristic pair.
FIG15_LIKE = SweepConfig(
    schedulers=("Activation", "MemBooking"),
    memory_factors=(2.0,),
    processors=(2, 8),
)


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_run_health()
    reset_fault_state()
    yield
    reset_run_health()
    reset_fault_state()


@pytest.fixture(scope="module")
def trees():
    return synthetic_trees(3, SyntheticTreeConfig(num_nodes=60), rng=8)


def _backends():
    return [name for name in BACKEND_NAMES if name != "auto"]


@pytest.mark.parametrize("config", [FIG8_LIKE, FIG15_LIKE], ids=["fig8", "fig15"])
@pytest.mark.parametrize("backend", _backends())
@pytest.mark.parametrize("seed", [2, 9])
def test_injected_faults_preserve_records(trees, config, backend, seed):
    base = run_sweep(trees, config).to_dicts()
    armed = config.with_overrides(
        backend=backend,
        jobs=2,
        fault_plan=RECOVERABLE_PLAN.format(seed=seed),
    )
    injected = run_sweep(trees, armed).to_dicts()
    assert records_equal(base, injected, ignore=TIMING_FIELDS)
    health = current_health()
    # Recoverable plans lose nothing and quarantine nothing.
    assert health.lost_instances == 0
    assert health.quarantined_instances == 0


def test_plan_injects_something_overall(trees):
    """Guard against a plan so sparse the parity fuzz tests nothing."""
    total = 0
    for seed in (2, 9):
        for backend in _backends():
            reset_run_health()
            armed = FIG8_LIKE.with_overrides(
                backend=backend, jobs=2, fault_plan=RECOVERABLE_PLAN.format(seed=seed)
            )
            run_sweep(trees, armed)
            total += sum(current_health().injected.values())
    assert total > 0
