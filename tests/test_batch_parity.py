"""Cross-kernel parity of the batched lane engine.

The contract of :mod:`repro.batch` is *bit-identical* records: for any
sweep, ``BatchedBackend`` must reproduce ``SerialBackend`` exactly (timing
fields aside), across heuristics, AO/EO choices, memory factors — failure
paths included — and regardless of which internal path (lock-step
wavefront, per-lane heap drain, lane collapse) resolved each lane.  The
seeded randomized fuzz below drives random trees through the full grid and
asserts three-way equality: batched == scalar kernels == the frozen
:mod:`repro.schedulers.reference` generation (the serial path with the
reference factories patched in), with exact float comparisons.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

import repro.batch.lanes as lanes_mod
from repro.batch import BatchedBackend, LANE_KERNELS, simulate_lanes
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import SerialBackend
from repro.experiments.runner import prepare_instance
from repro.schedulers import SCHEDULER_FACTORIES
from repro.schedulers.reference import REFERENCE_FACTORIES
from repro.workloads.families import heavy_leaf_caterpillar, random_attachment_tree
from repro.workloads.synthetic import SyntheticTreeConfig, synthetic_tree

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})


def record_bytes(records):
    """Pickled records minus wall-clock fields: literal byte identity."""
    return [
        pickle.dumps({k: v for k, v in r.items() if k not in TIMING_FIELDS})
        for r in records
    ]


def fuzz_trees(seed: int):
    """A small zoo of random trees: bushy, chainy, and heavy-leaf shapes."""
    rng = np.random.default_rng(seed)
    return [
        synthetic_tree(SyntheticTreeConfig(num_nodes=int(rng.integers(60, 220))), rng=rng),
        random_attachment_tree(int(rng.integers(40, 120)), rng=rng),
        heavy_leaf_caterpillar(
            int(rng.integers(15, 50)),
            int(rng.integers(1, 4)),
            leaf_output=40.0,
            nexec=1.5,
            rng=rng,
            leaf_jitter=0.4,
        ),
    ]


#: Sweep shapes covering AO == EO and AO != EO, tight factors (failure
#: paths: MemBookingRedTree fails routinely at 1.0, Activation under
#: pressure) and the saturation/slack regimes the collapse rules target.
FUZZ_CONFIGS = [
    SweepConfig(
        memory_factors=(1.0, 1.3, 2.0, 6.0, 20.0),
        processors=(1, 2, 5, 16),
        min_completion_fraction=0.0,
        validate=False,
    ),
    SweepConfig(
        schedulers=("Activation", "MemBooking", "MemBookingReference"),
        memory_factors=(1.0, 1.5, 4.0),
        processors=(3, 8),
        activation_order="memPO",
        execution_order="CP",
        min_completion_fraction=0.0,
    ),
    SweepConfig(
        schedulers=("MemBooking", "Activation"),
        memory_factors=(1.5, 2.0, 5.0, 20.0),
        processors=(2, 4, 8, 16, 32),
        activation_order="OptSeq",
        execution_order="OptSeq",
        min_completion_fraction=0.0,
    ),
]


@pytest.mark.parametrize("seed", [11, 4242, 90210])
@pytest.mark.parametrize("config_index", range(len(FUZZ_CONFIGS)))
def test_batched_equals_scalar_equals_reference(seed, config_index, monkeypatch):
    """Randomized three-way parity with exact float equality."""
    trees = fuzz_trees(seed)
    config = FUZZ_CONFIGS[config_index]

    serial = record_bytes(run_sweep(trees, config, backend=SerialBackend()))
    batched = record_bytes(run_sweep(trees, config, backend=BatchedBackend()))
    assert batched == serial, "batched records diverged from the scalar kernels"

    # The scalar kernels are themselves pinned to the frozen reference
    # generation: replay the sweep with the reference factories and require
    # the same bytes again, closing the batched -> scalar -> reference chain.
    for name, factory in REFERENCE_FACTORIES.items():
        monkeypatch.setitem(SCHEDULER_FACTORIES, name, factory)
    reference = record_bytes(run_sweep(trees, config, backend=SerialBackend()))
    assert serial == reference, "scalar kernels diverged from the reference engine"


@pytest.mark.parametrize("seed", [7, 365])
def test_failure_paths_covered_and_identical(seed):
    """The fuzz grid genuinely exercises deadlocks, with identical reasons."""
    trees = fuzz_trees(seed)
    config = SweepConfig(
        memory_factors=(1.0, 1.05),
        processors=(2, 8),
        min_completion_fraction=0.0,
        validate=False,
    )
    serial = run_sweep(trees, config, backend=SerialBackend())
    batched = run_sweep(trees, config, backend=BatchedBackend())
    assert record_bytes(batched) == record_bytes(serial)
    failed = int(np.count_nonzero(~serial.column("completed")))
    assert failed > 0, "tight-memory grid produced no failures to compare"
    assert list(batched.column("failure_reason")) == list(serial.column("failure_reason"))


@pytest.mark.parametrize("seed", [11, 4242])
@pytest.mark.parametrize("kernel_name", sorted(LANE_KERNELS))
def test_blocked_replay_collapse_fires_and_stays_identical(kernel_name, seed):
    """The feasibility boundary exercises blocked-replay collapse.

    Below the sequential minimum, lanes are *blocked* by the memory bound
    (t=0 failures and early deadlocks).  The ``bound_need`` certificate
    must collapse that block — cross-p and cross-factor — while every
    lane stays bit-identical to the scalar kernel, failure strings
    included.  (SweepConfig refuses sub-1 factors, so the boundary grid
    drives ``simulate_lanes`` directly.)
    """
    trees = fuzz_trees(seed)
    kernel_cls = LANE_KERNELS[kernel_name]
    config = SweepConfig(min_completion_fraction=0.0, validate=False)
    lanes_mod.collapse_rule_counts.clear()
    for index, tree in enumerate(trees):
        context = prepare_instance(tree, index, config)
        grid = [
            (p, factor * context.minimum_memory)
            for factor in (0.2, 0.4, 0.7, 0.9, 1.0, 1.3)
            for p in (2, 4, 8, 16)
        ]
        outcomes = simulate_lanes(
            kernel_cls, tree, context.ao, context.eo, context.workspace, grid
        )
        for (p, limit), (result, _) in zip(grid, outcomes):
            scalar = kernel_cls.scheduler_class().schedule(
                tree, p, limit, ao=context.ao, eo=context.eo, workspace=context.workspace
            )
            assert result.completed == scalar.completed
            assert result.failure_reason == scalar.failure_reason
            np.testing.assert_array_equal(result.start_times, scalar.start_times)
            np.testing.assert_array_equal(result.finish_times, scalar.finish_times)
            np.testing.assert_array_equal(result.processor, scalar.processor)
    assert lanes_mod.collapse_rule_counts["blocked-replay"] > 0, (
        "the sub-feasible grid should resolve lanes through blocked-replay"
    )


@pytest.mark.parametrize("kernel_name", sorted(LANE_KERNELS))
def test_lane_results_match_scalar_schedules_exactly(kernel_name, rng):
    """simulate_lanes reproduces full ScheduleResults, not just records.

    Start/finish times, processor assignment, event counts, failure strings
    and the booked-memory extras must all be bit-identical to running the
    scalar scheduler once per lane.
    """
    tree = synthetic_tree(SyntheticTreeConfig(num_nodes=150), rng=rng)
    config = SweepConfig()
    context = prepare_instance(tree, 0, config)
    kernel_cls = LANE_KERNELS[kernel_name]
    lanes = [
        (p, factor * context.minimum_memory)
        for p in (1, 2, 7, 32)
        for factor in (1.0, 1.4, 3.0, 25.0)
    ]
    outcomes = simulate_lanes(
        kernel_cls, tree, context.ao, context.eo, context.workspace, lanes
    )
    assert len(outcomes) == len(lanes)
    assert any(clone for _, clone in outcomes), "grid chosen to exercise lane collapse"
    for (p, limit), (result, is_clone) in zip(lanes, outcomes):
        scalar = kernel_cls.scheduler_class().schedule(
            tree, p, limit, ao=context.ao, eo=context.eo, workspace=context.workspace
        )
        assert result.scheduler == scalar.scheduler
        assert result.completed == scalar.completed
        assert result.failure_reason == scalar.failure_reason
        assert result.num_events == scalar.num_events
        assert result.makespan == scalar.makespan or (
            math.isinf(result.makespan) and math.isinf(scalar.makespan)
        )
        np.testing.assert_array_equal(result.start_times, scalar.start_times)
        np.testing.assert_array_equal(result.finish_times, scalar.finish_times)
        np.testing.assert_array_equal(result.processor, scalar.processor)
        assert result.peak_memory == scalar.peak_memory
        if not is_clone:
            # Clones share their donor's booked-memory *diagnostics* (a
            # starvation clone's real booking trajectory differs even though
            # its schedule — and therefore every record field — does not).
            assert (
                result.extras["peak_booked_memory"]
                == scalar.extras["peak_booked_memory"]
            )


def test_wavefront_and_drain_paths_agree(monkeypatch, rng):
    """Both engine paths (lock-step wavefront / heap drain) are exercised.

    The drain threshold is forced to the extremes so the same sweep runs
    entirely through each path; records must be identical to serial both
    times.
    """
    trees = [synthetic_tree(SyntheticTreeConfig(num_nodes=120), rng=rng)]
    config = SweepConfig(
        memory_factors=(1.0, 1.5, 2.0, 10.0),
        processors=(2, 4, 16),
        min_completion_fraction=0.0,
    )
    serial = record_bytes(run_sweep(trees, config, backend=SerialBackend()))
    for threshold in (0, 10_000):
        monkeypatch.setattr(lanes_mod, "_WAVEFRONT_MIN_LANES", threshold)
        assert record_bytes(run_sweep(trees, config, backend=BatchedBackend())) == serial, (
            f"engine path with threshold {threshold} diverged"
        )
