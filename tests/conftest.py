"""Common fixtures used across the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.task_tree import TaskTree

# Property-based tests simulate schedulers and run exhaustive oracles; the
# per-example deadline is therefore disabled and the example count kept
# moderate so the whole suite stays fast and deterministic across machines.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def chain3() -> TaskTree:
    """A 3-node chain: 0 -> 1 -> 2 (node 2 is the root)."""
    return TaskTree(
        parent=[1, 2, -1],
        fout=[2.0, 3.0, 4.0],
        nexec=[1.0, 1.0, 1.0],
        ptime=[1.0, 2.0, 3.0],
    )


@pytest.fixture
def small_tree() -> TaskTree:
    """The running example tree used in many unit tests.

    Structure (node: children)::

        6 (root): 4, 5
        4: 0, 1
        5: 2, 3
        0, 1, 2, 3: leaves
    """
    return TaskTree(
        parent=[4, 4, 5, 5, 6, 6, -1],
        fout=[2.0, 3.0, 4.0, 1.0, 5.0, 2.0, 6.0],
        nexec=[1.0, 0.0, 2.0, 0.0, 1.0, 1.0, 3.0],
        ptime=[1.0, 2.0, 1.0, 1.0, 3.0, 2.0, 4.0],
    )


@pytest.fixture
def star5() -> TaskTree:
    """A star: root 0 with 5 leaf children."""
    return TaskTree(
        parent=[-1, 0, 0, 0, 0, 0],
        fout=[10.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        nexec=[2.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ptime=[5.0, 1.0, 1.0, 1.0, 1.0, 1.0],
    )
