"""Unit tests for the Activation heuristic (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.orders import Ordering, minimum_memory_postorder, sequential_peak_memory
from repro.schedulers.activation import ActivationScheduler
from repro.schedulers.validation import validate_schedule

from .helpers import random_tree


class TestActivationBasics:
    def test_single_node(self):
        from repro.core.task_tree import TaskTree

        tree = TaskTree(parent=[-1], fout=[2.0], nexec=[1.0], ptime=[4.0])
        result = ActivationScheduler().schedule(tree, 2, 10.0)
        assert result.completed
        assert result.makespan == pytest.approx(4.0)
        assert result.peak_memory == pytest.approx(3.0)
        validate_schedule(tree, result).raise_if_invalid()

    def test_small_tree_generous_memory(self, small_tree):
        result = ActivationScheduler().schedule(small_tree, 4, 1000.0)
        assert result.completed
        validate_schedule(small_tree, result).raise_if_invalid()
        # With plenty of memory and processors, all four leaves start at t=0.
        assert np.count_nonzero(result.start_times == 0.0) == 4

    def test_terminates_with_minimum_memory(self, rng):
        # Theorem (for Activation): the tree completes whenever M is at least
        # the sequential peak of the activation order.
        for _ in range(15):
            tree = random_tree(rng, int(rng.integers(2, 50)))
            ao = minimum_memory_postorder(tree)
            min_memory = sequential_peak_memory(tree, ao)
            for p in (1, 3):
                result = ActivationScheduler().schedule(tree, p, min_memory, ao=ao, eo=ao)
                assert result.completed, result.failure_reason
                validate_schedule(tree, result).raise_if_invalid()

    def test_respects_memory_bound(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 40)
            ao = minimum_memory_postorder(tree)
            bound = 2.0 * sequential_peak_memory(tree, ao)
            result = ActivationScheduler().schedule(tree, 8, bound)
            assert result.completed
            assert result.peak_memory <= bound * (1 + 1e-9)
            validate_schedule(tree, result).raise_if_invalid()

    def test_failure_reported_not_raised(self, small_tree):
        # A bound below the largest single task requirement cannot work.
        result = ActivationScheduler().schedule(small_tree, 2, small_tree.max_mem_needed * 0.5)
        assert not result.completed
        assert result.failure_reason is not None
        assert result.makespan == np.inf

    def test_sequential_on_one_processor_matches_total_work(self, rng):
        tree = random_tree(rng, 30)
        result = ActivationScheduler().schedule(tree, 1, 1e9)
        assert result.completed
        assert result.makespan == pytest.approx(tree.total_work)

    def test_parallel_never_slower_than_total_work(self, rng):
        # Any completed schedule keeps at least one processor busy at all
        # times, so its makespan never exceeds the total work (= the p=1
        # makespan).  Note that monotonicity in p is *not* guaranteed in
        # general (Graham-type anomalies), so we only compare against p=1.
        for _ in range(5):
            tree = random_tree(rng, 60)
            bound = 3.0 * sequential_peak_memory(tree, minimum_memory_postorder(tree))
            for p in (2, 4, 8):
                result = ActivationScheduler().schedule(tree, p, bound)
                assert result.completed
                assert result.makespan <= tree.total_work + 1e-9


class TestActivationBehaviour:
    def test_books_conservatively_on_chain(self):
        # On a chain, Activation books n_i + f_i for every activated node even
        # though the tasks can never run concurrently (Section 3.1 example).
        from repro.core.task_tree import TaskTree

        tree = TaskTree(
            parent=[1, 2, -1],
            fout=[1.0, 1.0, 1.0],
            nexec=[3.0, 3.0, 3.0],
            ptime=[1.0, 1.0, 1.0],
        )
        generous = ActivationScheduler().schedule(tree, 2, 100.0)
        assert generous.extras["peak_booked_memory"] == pytest.approx(12.0)
        # The actual resident memory is much smaller than what was booked.
        assert generous.peak_memory < generous.extras["peak_booked_memory"]

    def test_extras_and_summary(self, small_tree):
        result = ActivationScheduler().schedule(small_tree, 2, 1000.0)
        assert result.extras["activated"] == small_tree.n
        summary = result.summary()
        assert summary["scheduler"] == "Activation"
        assert summary["completed"] is True

    def test_execution_order_changes_choices(self, star5):
        # With one processor, the EO decides the leaf order.
        ao = minimum_memory_postorder(star5)
        eo = Ordering([4, 3, 2, 1, 5, 0], name="custom")
        result = ActivationScheduler().schedule(star5, 1, 1e6, ao=ao, eo=eo)
        assert result.completed
        leaf_starts = result.start_times[[4, 3, 2, 1, 5]]
        assert np.all(np.diff(leaf_starts) > 0)
