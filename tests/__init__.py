"""Test package marker.

The test modules import their shared helpers with relative imports
(``from .helpers import random_tree``), which requires ``tests`` to be a
proper package; without this file pytest cannot even collect the suite.
"""
