"""TreeStore arena format v2: workspace plane columns.

Covers the acceptance surface of the plane-column extension: round-trips
through ``save_store`` / ``load_store`` / ``to_shared_memory``, version-1
back-compatibility (plane-less arenas still *write* version-1 bytes and old
files still load), validation of malformed plane specs, and the consumers —
``prepare_instance(planes=...)`` / ``SimWorkspace.from_planes`` and the
``share_planes`` mode of the shared-memory backend.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np
import pytest

from repro.batch.planes import WORKSPACE_PLANE_NAMES, workspace_planes
from repro.core.tree_io import load_store, save_store
from repro.core.tree_store import TreeStore
from repro.experiments import SweepConfig, run_sweep
from repro.experiments.backends import SerialBackend, SharedMemoryBackend
from repro.experiments.runner import prepare_instance
from repro.workloads.synthetic import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})


@pytest.fixture
def trees():
    return synthetic_trees(3, SyntheticTreeConfig(num_nodes=70), rng=42)


@pytest.fixture
def config():
    return SweepConfig(memory_factors=(1.5, 3.0), processors=(2, 4))


@pytest.fixture
def planes(trees, config):
    return workspace_planes(trees, config)


def _version_of(path) -> int:
    return struct.unpack_from("<8sQ", path.read_bytes())[1]


class TestArenaFormat:
    def test_file_round_trip(self, trees, planes, tmp_path):
        path = save_store(trees, tmp_path / "v2.trees", planes=planes)
        assert _version_of(path) == 2
        store = load_store(path)
        assert store.plane_names == tuple(planes)
        for index in range(len(trees)):
            for name in WORKSPACE_PLANE_NAMES:
                np.testing.assert_array_equal(
                    store.plane(name, index), planes[name][index]
                )
            per_tree = store.planes_for(index)
            assert set(per_tree) == set(planes)
        # Trees themselves are untouched by the extra sections.
        for index, tree in enumerate(trees):
            np.testing.assert_array_equal(store.tree(index).parent, tree.parent)

    def test_planeless_arena_still_writes_version_1(self, trees, tmp_path):
        path = save_store(trees, tmp_path / "v1.trees")
        assert _version_of(path) == 1
        store = load_store(path)
        assert store.plane_names == ()

    def test_version_1_files_still_load(self, trees, planes, tmp_path):
        """A pre-plane-era file must load in full through the new reader."""
        v1 = save_store(trees, tmp_path / "old.trees")
        store = load_store(v1)
        assert len(store) == len(trees)
        with pytest.raises(KeyError, match="no plane"):
            store.plane("ws:scalars", 0)

    def test_shared_memory_round_trip(self, trees, planes):
        shm = TreeStore.pack_to_shared_memory(trees, planes=planes)
        try:
            attached = TreeStore.attach(shm.name)
            try:
                assert attached.plane_names == tuple(planes)
                np.testing.assert_array_equal(
                    attached.plane("ws:ao_sequence", 1), planes["ws:ao_sequence"][1]
                )
            finally:
                attached.close()
        finally:
            shm.close()
            shm.unlink()

    def test_plane_validation(self, trees):
        with pytest.raises(ValueError, match="arrays for"):
            TreeStore.pack(trees, planes={"bad": [np.zeros(3)]})
        with pytest.raises(ValueError, match="int64 or float64"):
            TreeStore.pack(
                trees, planes={"bad": [np.zeros(2, dtype=np.int32) for _ in trees]}
            )
        with pytest.raises(ValueError, match="1-D"):
            TreeStore.pack(
                trees, planes={"bad": [np.zeros((2, 2)) for _ in trees]}
            )

    def test_truncated_plane_section_rejected(self, trees, planes, tmp_path):
        path = save_store(trees, tmp_path / "trunc.trees", planes=planes)
        data = path.read_bytes()
        with pytest.raises(ValueError, match="truncated"):
            TreeStore(data[: len(data) - 16])

    def test_plane_index_bounds(self, trees, planes):
        store = TreeStore.pack(trees, planes=planes)
        with pytest.raises(IndexError):
            store.plane("ws:scalars", len(trees))


class TestPlaneConsumers:
    def test_context_from_planes_matches_computed(self, trees, config, planes):
        """A plane-built InstanceContext is indistinguishable from a fresh one."""
        store = TreeStore.pack(trees, planes=planes)
        for index, tree in enumerate(trees):
            computed = prepare_instance(tree, index, config)
            view = store.tree(index)
            adopted = prepare_instance(view, index, config, store.planes_for(index))
            assert adopted.minimum_memory == computed.minimum_memory
            assert adopted.critical_path == computed.critical_path
            assert adopted.memtime_demand == computed.memtime_demand
            assert adopted.height == computed.height
            np.testing.assert_array_equal(adopted.ao.sequence, computed.ao.sequence)
            np.testing.assert_array_equal(adopted.eo.rank, computed.eo.rank)
            assert adopted.eo is adopted.ao  # default config: one shared order
            ws_a, ws_c = adopted.workspace, computed.workspace
            assert ws_a.child_offsets == ws_c.child_offsets
            assert ws_a.child_nodes == ws_c.child_nodes
            assert ws_a.request_ao_list == ws_c.request_ao_list
            assert ws_a.release_list == ws_c.release_list
            assert ws_a.eo_rank_list == ws_c.eo_rank_list
            assert ws_a.matches(view, adopted.ao, adopted.eo)

    def test_share_planes_backend_records_identical(self, trees, config):
        serial = run_sweep(trees, config, backend=SerialBackend())
        shared = run_sweep(
            trees, config, backend=SharedMemoryBackend(jobs=2, share_planes=True)
        )
        strip = lambda table: [
            pickle.dumps({k: v for k, v in r.items() if k not in TIMING_FIELDS})
            for r in table
        ]
        assert strip(shared) == strip(serial)

    def test_workspace_planes_cover_canonical_names(self, planes, trees):
        assert set(planes) == set(WORKSPACE_PLANE_NAMES)
        for name, arrays in planes.items():
            assert len(arrays) == len(trees), name
