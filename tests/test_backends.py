"""Unit tests for the pluggable sweep execution backends.

Every backend must produce the serial records — same order, same values
(wall-clock timing fields aside) — and the shared instance-keyed merge must
fail loudly on duplicates or gaps instead of silently corrupting a sweep.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.backends import (
    BACKEND_NAMES,
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
    dispatch_payload_stats,
    iter_instances,
    merge_records,
    resolve_backend,
    result_payload_stats,
    runs_per_tree,
)
from repro.experiments.config import SweepConfig
from repro.experiments.records import RecordTable
from repro.experiments.runner import run_sweep
from repro.workloads import SyntheticTreeConfig, synthetic_trees

TIMING_FIELDS = frozenset({"scheduling_seconds", "scheduling_seconds_per_node"})


def strip_timings(records):
    return [{k: v for k, v in r.items() if k not in TIMING_FIELDS} for r in records]


def make_record(**overrides) -> dict:
    """A schema-complete sweep record for merge/table unit tests."""
    record = {
        "tree_index": 0,
        "tree_size": 10,
        "tree_height": 4,
        "scheduler": "MemBooking",
        "num_processors": 8,
        "memory_factor": 2.0,
        "memory_limit": 100.0,
        "minimum_memory": 50.0,
        "completed": True,
        "makespan": 10.0,
        "lower_bound": 8.0,
        "classical_lower_bound": 8.0,
        "memory_lower_bound": 7.0,
        "normalized_makespan": 1.25,
        "peak_memory": 90.0,
        "memory_fraction": 0.9,
        "scheduling_seconds": 0.001,
        "scheduling_seconds_per_node": 0.0001,
        "activation_order": "memPO",
        "execution_order": "memPO",
        "failure_reason": None,
    }
    record.update(overrides)
    return record


@pytest.fixture(scope="module")
def trees():
    return synthetic_trees(4, SyntheticTreeConfig(num_nodes=70), rng=17)


@pytest.fixture(scope="module")
def config():
    return SweepConfig(
        schedulers=("Activation", "MemBooking"),
        memory_factors=(1.0, 2.0),
        processors=(2, 8),
    )


@pytest.fixture(scope="module")
def serial_records(trees, config):
    return SerialBackend().run(trees, config)


class TestBackendParity:
    def test_process_pool_matches_serial(self, trees, config, serial_records):
        records = ProcessPoolBackend(jobs=2).run(trees, config)
        assert strip_timings(records) == strip_timings(serial_records)

    def test_shared_memory_matches_serial(self, trees, config, serial_records):
        records = SharedMemoryBackend(jobs=2).run(trees, config)
        assert strip_timings(records) == strip_timings(serial_records)

    def test_shared_memory_single_tree_fans_out(self, trees, config):
        """Instance granularity: one tree still spreads over several workers."""
        serial = SerialBackend().run(trees[:1], config)
        parallel = SharedMemoryBackend(jobs=3).run(trees[:1], config)
        assert strip_timings(parallel) == strip_timings(serial)

    def test_shared_memory_empty_dataset(self, config):
        assert SharedMemoryBackend(jobs=2).run([], config) == []

    def test_run_sweep_backend_keyword(self, trees, config, serial_records):
        for backend in ("serial", "process", "shared-memory"):
            records = run_sweep(trees, config, jobs=2, backend=backend)
            assert strip_timings(records) == strip_timings(serial_records), backend

    def test_run_sweep_backend_instance(self, trees, config, serial_records):
        records = run_sweep(trees, config, backend=SharedMemoryBackend(jobs=2))
        assert strip_timings(records) == strip_timings(serial_records)

    def test_config_backend_field(self, trees, config, serial_records):
        shm_config = config.with_overrides(backend="shared-memory", jobs=2)
        records = run_sweep(trees, shm_config)
        assert strip_timings(records) == strip_timings(serial_records)


class TestInstanceEnumeration:
    def test_canonical_order_matches_records(self, trees, config, serial_records):
        expected = [
            (tree_index, scheduler, p, factor)
            for tree_index, scheduler, p, factor in iter_instances(config, len(trees))
        ]
        actual = [
            (r["tree_index"], r["scheduler"], r["num_processors"], r["memory_factor"])
            for r in serial_records
        ]
        assert actual == expected

    def test_runs_per_tree(self, config):
        assert runs_per_tree(config) == 2 * 2 * 2
        assert len(list(iter_instances(config, 3))) == 3 * runs_per_tree(config)


class TestMerge:
    def test_restores_order(self):
        records = [make_record(tree_index=i, makespan=10.0 + i) for i in range(5)]
        shuffled = [(4, records[4]), (0, records[0]), (2, records[2]), (1, records[1]), (3, records[3])]
        merged = merge_records(5, shuffled)
        assert isinstance(merged, RecordTable)
        assert merged == records

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_records(2, [(0, make_record()), (0, make_record())])

    def test_rejects_gaps(self):
        with pytest.raises(ValueError, match="incomplete"):
            merge_records(3, [(0, make_record()), (2, make_record())])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            merge_records(1, [(5, make_record())])

    def test_preserves_failure_and_nonfinite_values(self):
        failed = make_record(
            completed=False,
            makespan=math.inf,
            normalized_makespan=math.nan,
            failure_reason="deadlock at t=3: 7 tasks remain",
        )
        merged = merge_records(1, [(0, failed)])
        row = merged[0]
        assert row["completed"] is False
        assert row["makespan"] == math.inf
        assert math.isnan(row["normalized_makespan"])
        assert row["failure_reason"] == "deadlock at t=3: 7 tasks remain"


class TestResolution:
    def test_auto_serial_for_one_worker(self, config):
        backend = resolve_backend("auto", config, num_trees=5, jobs=1)
        assert isinstance(backend, SerialBackend)

    def test_auto_process_for_many_workers(self, config):
        backend = resolve_backend("auto", config, num_trees=5, jobs=4)
        assert isinstance(backend, ProcessPoolBackend)

    def test_none_defers_to_config(self, config):
        backend = resolve_backend(None, config.with_overrides(backend="shared-memory", jobs=2), 5)
        assert isinstance(backend, SharedMemoryBackend)

    def test_instance_passthrough(self, config):
        backend = SharedMemoryBackend(jobs=2)
        assert resolve_backend(backend, config, 5) is backend
        # No explicit jobs, or a matching one, keeps the caller's instance.
        assert resolve_backend(backend, config, 5, jobs=2) is backend

    def test_explicit_jobs_overrides_instance(self, config):
        """run_sweep's 'jobs wins' contract also applies to instance specs."""
        backend = SharedMemoryBackend(jobs=0)  # one worker per CPU
        resolved = resolve_backend(backend, config, 5, jobs=1)
        assert isinstance(resolved, SharedMemoryBackend)
        assert resolved is not backend
        assert resolved.jobs == 1
        assert backend.jobs == 0  # the caller's object is untouched

    def test_unknown_name_rejected(self, config):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("teleport", config, 5)

    def test_negative_jobs_rejected_on_every_path(self, trees, config):
        """Pre-backend run_sweep raised for jobs<0 even in-process; keep that."""
        for backend in ("auto", "serial", "process", "shared-memory"):
            with pytest.raises(ValueError, match="jobs must be >= 0"):
                run_sweep(trees, config, jobs=-3, backend=backend)
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            run_sweep(trees, config, jobs=-3, backend=SharedMemoryBackend(jobs=2))
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            ProcessPoolBackend(jobs=-1)
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            SharedMemoryBackend(jobs=-1)

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepConfig(backend="teleport")
        for name in BACKEND_NAMES:
            assert SweepConfig(backend=name).backend == name


class TestPayloadAccounting:
    def test_shared_memory_payloads_are_small(self, trees, config):
        process = dispatch_payload_stats(ProcessPoolBackend(2), trees, config)
        shared = dispatch_payload_stats(SharedMemoryBackend(2), trees, config)
        assert process["num_payloads"] == len(trees)
        assert shared["num_payloads"] == len(trees) * runs_per_tree(config)
        # The per-task transfer must not embed node arrays: even on these
        # 70-node toy trees the per-tree payload dwarfs the index tuple.
        assert shared["max_bytes"] < 200
        assert process["mean_bytes"] / shared["mean_bytes"] >= 10

    def test_serial_ships_nothing(self, trees, config):
        assert dispatch_payload_stats(SerialBackend(), trees, config)["num_payloads"] == 0


class TestWorkerContextCache:
    def test_cache_is_bounded_and_correct(self, config):
        """A worker's context cache must not grow past the LRU bound."""
        from repro.core import TreeStore
        from repro.experiments import backends

        trees = synthetic_trees(
            backends._SHM_CONTEXT_CACHE_SIZE + 4, SyntheticTreeConfig(num_nodes=30), rng=23
        )
        total = len(trees) * runs_per_tree(config)
        store = TreeStore.pack(trees)
        shm = store.to_shared_memory()
        result_shm, result_table = RecordTable.create_shared(total)
        saved = dict(backends._SHM_WORKER)
        try:
            backends._shm_worker_init(shm.name, result_shm.name, config)
            payloads = backends.SharedMemoryBackend().dispatch_payloads(trees, config)
            indices = [backends._shm_run_instance(p) for p in payloads]
            assert len(backends._SHM_WORKER["contexts"]) <= backends._SHM_CONTEXT_CACHE_SIZE
            assert sorted(indices) == list(range(total))
            serial = SerialBackend().run(trees, config)
            # The worker wrote every record straight into the shared table.
            assert strip_timings(result_table) == strip_timings(serial)
        finally:
            backends._SHM_WORKER["contexts"].clear()
            backends._SHM_WORKER["store"].close()
            backends._SHM_WORKER["results"].close()
            backends._SHM_WORKER.clear()
            backends._SHM_WORKER.update(saved)
            result_table.close()
            result_shm.close()
            result_shm.unlink()
            shm.close()
            shm.unlink()


class TestResultPlane:
    def test_run_sweep_returns_record_table(self, trees, config):
        table = run_sweep(trees, config)
        assert isinstance(table, RecordTable)
        assert len(table) == len(trees) * runs_per_tree(config)

    def test_result_payload_drop(self, trees, config, serial_records):
        """Row indices through the pipe must dwarf pickled record dicts."""
        stats = result_payload_stats(serial_records)
        assert stats["dict_records"]["num_payloads"] == len(serial_records)
        assert stats["row_indices"]["num_payloads"] == len(serial_records)
        assert (
            stats["dict_records"]["mean_bytes"] / stats["row_indices"]["mean_bytes"] >= 10
        )


class TestJobsOverrideOnInstances:
    def test_jobsless_instance_with_explicit_jobs_warns(self, trees, config):
        """A jobs= override a SerialBackend cannot honour must not vanish."""
        with pytest.warns(RuntimeWarning, match="jobs=4"):
            resolve_backend(SerialBackend(), config, len(trees), jobs=4)

    def test_jobsless_instance_accepts_single_worker(self, config, recwarn):
        """jobs=1 matches what a jobs-less backend runs: no warning."""
        backend = SerialBackend()
        assert resolve_backend(backend, config, 5, jobs=1) is backend
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]

    def test_warned_sweep_still_runs_serially(self, trees, config, serial_records):
        with pytest.warns(RuntimeWarning):
            records = run_sweep(trees, config, jobs=3, backend=SerialBackend())
        assert strip_timings(records) == strip_timings(serial_records)
