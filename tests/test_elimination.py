"""Unit tests for the sparse symbolic-analysis substrate (assembly trees).

The elimination tree and column counts are validated against a dense
reference implementation that simulates the fill-in explicitly, so the fast
algorithms are checked for exact structural correctness on small matrices.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.task_tree import NO_PARENT
from repro.core.tree_metrics import height, max_degree
from repro.workloads.elimination import (
    assembly_tree_from_matrix,
    column_counts,
    elimination_tree,
    front_flops,
    fundamental_supernodes,
    nested_dissection_2d,
    nested_dissection_3d,
)
from repro.workloads.sparse_matrices import (
    banded_matrix,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_symmetric_pattern,
)


# --------------------------------------------------------------------------- #
# dense reference oracle
# --------------------------------------------------------------------------- #
def dense_symbolic_factorization(matrix: sp.spmatrix) -> np.ndarray:
    """Boolean lower-triangular fill pattern of the Cholesky factor (dense)."""
    pattern = (np.abs(sp.csc_matrix(matrix).toarray()) > 0).astype(bool)
    n = pattern.shape[0]
    filled = np.tril(pattern).copy()
    np.fill_diagonal(filled, True)
    for k in range(n):
        rows = np.flatnonzero(filled[:, k])
        rows = rows[rows > k]
        for a in rows:
            filled[a, rows[rows <= a]] = True
    return filled


def reference_etree(matrix: sp.spmatrix) -> np.ndarray:
    """Elimination tree derived from the dense fill pattern (first below-diagonal entry)."""
    filled = dense_symbolic_factorization(matrix)
    n = filled.shape[0]
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(filled[:, j])
        below = below[below > j]
        if below.size:
            parent[j] = below.min()
    return parent


def small_test_matrices():
    rng = np.random.default_rng(5)
    yield grid_laplacian_2d(4, 5)
    yield grid_laplacian_2d(6, 3)
    yield banded_matrix(15, 2)
    yield banded_matrix(12, 4)
    yield random_symmetric_pattern(25, 3.0, rng)
    yield random_symmetric_pattern(30, 2.0, rng)
    yield grid_laplacian_3d(3, 3, 3)


class TestEliminationTree:
    @pytest.mark.parametrize("index", range(7))
    def test_matches_dense_reference(self, index):
        matrix = list(small_test_matrices())[index]
        fast = elimination_tree(matrix)
        reference = reference_etree(matrix)
        assert fast.tolist() == reference.tolist()

    def test_parent_always_larger(self):
        matrix = grid_laplacian_2d(6, 6)
        parent = elimination_tree(matrix)
        for j in range(matrix.shape[0]):
            assert parent[j] == NO_PARENT or parent[j] > j

    def test_chain_for_tridiagonal(self):
        parent = elimination_tree(banded_matrix(10, 1))
        assert parent.tolist() == [1, 2, 3, 4, 5, 6, 7, 8, 9, NO_PARENT]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            elimination_tree(sp.csc_matrix(np.ones((2, 3))))


class TestColumnCounts:
    @pytest.mark.parametrize("index", range(7))
    def test_matches_dense_reference(self, index):
        matrix = list(small_test_matrices())[index]
        counts = column_counts(matrix)
        filled = dense_symbolic_factorization(matrix)
        expected = filled.sum(axis=0)  # nonzeros of each column of L (diag included)
        assert counts.tolist() == expected.tolist()

    def test_last_column_count_is_one(self):
        counts = column_counts(grid_laplacian_2d(5, 5))
        assert counts[-1] == 1


class TestSupernodes:
    def test_columns_partition(self):
        matrix = grid_laplacian_2d(6, 6)
        parent = elimination_tree(matrix)
        counts = column_counts(matrix, parent)
        supernodes, snode_parent = fundamental_supernodes(parent, counts)
        all_columns = sorted(c for s in supernodes for c in s.columns)
        assert all_columns == list(range(matrix.shape[0]))
        assert len(snode_parent) == len(supernodes)

    def test_tridiagonal_supernodes_form_a_chain(self):
        matrix = banded_matrix(20, 1)
        parent = elimination_tree(matrix)
        counts = column_counts(matrix, parent)
        supernodes, snode_parent = fundamental_supernodes(parent, counts)
        # A tridiagonal factor is bidiagonal: column structures do not nest
        # except for the last pair, so there are n-1 supernodes forming a
        # chain and only the last two columns merge.
        assert len(supernodes) == 19
        assert max(s.num_columns for s in supernodes) == 2
        # Chain structure: every supernode has at most one child.
        child_counts = [0] * len(supernodes)
        for p in snode_parent:
            if p != NO_PARENT:
                child_counts[p] += 1
        assert max(child_counts) == 1

    def test_relaxed_amalgamation_reduces_tree(self):
        matrix = grid_laplacian_2d(10, 10)
        parent = elimination_tree(matrix)
        counts = column_counts(matrix, parent)
        plain, _ = fundamental_supernodes(parent, counts, relax_columns=0)
        relaxed, _ = fundamental_supernodes(parent, counts, relax_columns=3)
        assert len(relaxed) <= len(plain)
        # The partition property must be preserved.
        all_columns = sorted(c for s in relaxed for c in s.columns)
        assert all_columns == list(range(matrix.shape[0]))

    def test_front_not_smaller_than_columns(self):
        matrix = random_symmetric_pattern(60, 3.0, np.random.default_rng(1))
        parent = elimination_tree(matrix)
        counts = column_counts(matrix, parent)
        supernodes, _ = fundamental_supernodes(parent, counts, relax_columns=2)
        for snode in supernodes:
            assert snode.front_size >= snode.num_columns
            assert snode.border_size == snode.front_size - snode.num_columns


class TestAssemblyTree:
    def test_basic_properties(self):
        tree = assembly_tree_from_matrix(grid_laplacian_2d(8, 8))
        assert tree.n >= 1
        assert np.all(tree.fout >= 0)
        assert np.all(tree.nexec >= 0)
        assert np.all(tree.ptime > 0)

    def test_single_tree_even_for_reducible_matrix(self):
        # A block-diagonal (disconnected) matrix has a forest; the builder
        # must still return a single tree.
        block = sp.block_diag([banded_matrix(6, 1), banded_matrix(5, 1)], format="csc")
        tree = assembly_tree_from_matrix(block)
        assert tree.n >= 2  # at least one supernode per block

    def test_nested_dissection_gives_bushier_tree(self):
        nx = 16
        matrix = grid_laplacian_2d(nx, nx)
        natural = assembly_tree_from_matrix(matrix, relax_columns=2)
        nd = assembly_tree_from_matrix(
            matrix, permutation=nested_dissection_2d(nx, nx), relax_columns=2
        )
        # The band ordering yields an (almost) chain-like assembly tree; the
        # nested-dissection ordering yields a much shallower, bushier one.
        assert height(nd) < height(natural)
        assert max_degree(nd) >= 2

    def test_permutation_validation(self):
        matrix = grid_laplacian_2d(4, 4)
        with pytest.raises(ValueError):
            assembly_tree_from_matrix(matrix, permutation=np.zeros(16, dtype=int))

    def test_mem_model_consistency(self):
        # For every front: output + execution data = front^2 * data_unit.
        matrix = grid_laplacian_2d(10, 10)
        tree = assembly_tree_from_matrix(matrix, relax_columns=2, data_unit=8.0)
        parent = elimination_tree(matrix)
        counts = column_counts(matrix, parent)
        supernodes, _ = fundamental_supernodes(parent, counts, relax_columns=2)
        for k, snode in enumerate(supernodes):
            total = tree.fout[k] + tree.nexec[k]
            assert total == pytest.approx(8.0 * snode.front_size**2)


class TestNestedDissection:
    def test_2d_is_permutation(self):
        order = nested_dissection_2d(7, 9)
        assert sorted(order.tolist()) == list(range(63))

    def test_3d_is_permutation(self):
        order = nested_dissection_3d(4, 3, 5)
        assert sorted(order.tolist()) == list(range(60))

    def test_front_flops_monotone(self):
        assert front_flops(2, 10) < front_flops(4, 10) < front_flops(4, 20)
