"""Unit tests for internal utilities (indexed heap, array validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._utils import IndexedHeap, argsort_stable, as_float_array, as_int_array, as_rng


class TestIndexedHeap:
    def test_push_pop_order(self):
        heap = IndexedHeap()
        heap.push(1, priority=5.0)
        heap.push(2, priority=1.0)
        heap.push(3, priority=3.0)
        assert [heap.pop(), heap.pop(), heap.pop()] == [2, 3, 1]

    def test_tie_break_by_item(self):
        heap = IndexedHeap([(5, 1.0), (2, 1.0), (9, 1.0)])
        assert [heap.pop(), heap.pop(), heap.pop()] == [2, 5, 9]

    def test_membership_and_len(self):
        heap = IndexedHeap([(4, 0.0)])
        assert 4 in heap
        assert 5 not in heap
        assert len(heap) == 1
        assert bool(heap)
        heap.pop()
        assert not heap

    def test_peek_does_not_remove(self):
        heap = IndexedHeap([(7, 2.0), (8, 1.0)])
        assert heap.peek() == 8
        assert heap.peek_priority() == 1.0
        assert len(heap) == 2

    def test_remove_arbitrary(self):
        heap = IndexedHeap([(i, float(i)) for i in range(10)])
        heap.remove(0)
        heap.remove(5)
        popped = [heap.pop() for _ in range(len(heap))]
        assert popped == [1, 2, 3, 4, 6, 7, 8, 9]

    def test_remove_missing_raises(self):
        heap = IndexedHeap()
        with pytest.raises(KeyError):
            heap.remove(3)

    def test_duplicate_push_raises(self):
        heap = IndexedHeap([(1, 0.0)])
        with pytest.raises(ValueError):
            heap.push(1, priority=2.0)

    def test_empty_pop_peek_raise(self):
        heap = IndexedHeap()
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_priority_lookup_and_clear(self):
        heap = IndexedHeap([(1, 4.0)])
        assert heap.priority(1) == 4.0
        heap.clear()
        assert len(heap) == 0

    def test_random_stress_matches_sorted(self):
        rng = np.random.default_rng(7)
        heap = IndexedHeap()
        entries = {}
        for item in rng.permutation(200):
            prio = float(rng.integers(0, 50))
            heap.push(int(item), prio)
            entries[int(item)] = prio
        # Remove a random subset.
        removed = [int(x) for x in rng.choice(list(entries), size=50, replace=False)]
        for item in removed:
            heap.remove(item)
            del entries[item]
        drained = [heap.pop() for _ in range(len(heap))]
        expected = sorted(entries, key=lambda item: (entries[item], item))
        assert drained == expected

    def test_iteration_lists_members(self):
        heap = IndexedHeap([(i, float(-i)) for i in range(5)])
        assert sorted(heap) == [0, 1, 2, 3, 4]


class TestArrayHelpers:
    def test_as_float_array_scalar(self):
        arr = as_float_array(2.5, 4, "x")
        assert arr.tolist() == [2.5] * 4

    def test_as_float_array_wrong_shape(self):
        with pytest.raises(ValueError):
            as_float_array([1.0, 2.0], 3, "x")

    def test_as_float_array_negative(self):
        with pytest.raises(ValueError):
            as_float_array([-1.0], 1, "x")
        assert as_float_array([-1.0], 1, "x", nonnegative=False)[0] == -1.0

    def test_as_float_array_nan(self):
        with pytest.raises(ValueError):
            as_float_array([np.nan], 1, "x")

    def test_as_int_array(self):
        assert as_int_array([1, 2], 2, "k").dtype == np.int64
        with pytest.raises(ValueError):
            as_int_array([1], 2, "k")

    def test_as_rng(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen
        assert isinstance(as_rng(5), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)

    def test_argsort_stable_descending_keeps_ties(self):
        keys = np.asarray([2.0, 1.0, 2.0, 3.0])
        order = argsort_stable(keys, descending=True)
        assert order.tolist() == [3, 0, 2, 1]
