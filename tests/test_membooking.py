"""Unit and invariant tests for the MemBooking heuristic (Sections 4-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task_tree import TaskTree
from repro.orders import (
    Ordering,
    critical_path_order,
    minimum_memory_postorder,
    natural_postorder,
    sequential_peak_memory,
)
from repro.schedulers.activation import ActivationScheduler
from repro.schedulers.membooking import (
    ACT,
    CAND,
    FN,
    RUN,
    UN,
    MemBookingReferenceScheduler,
    MemBookingScheduler,
)
from repro.schedulers.validation import validate_schedule

from .helpers import random_chainy_tree, random_tree


def check_booking_invariants(state: dict) -> None:
    """Assert the bookkeeping invariants of Lemmas 2-5 on an engine snapshot."""
    tree = state["tree"]
    booked = state["booked"]
    bbs = state["booked_by_subtree"]
    node_state = state["state"]
    mem_needed = state["mem_needed"]
    tol = 1e-6 * max(1.0, float(state["limit"]))

    # Global accounting: MBooked is the sum of all bookings and never exceeds M.
    assert state["mbooked"] <= state["limit"] + tol
    assert state["mbooked"] == pytest.approx(float(booked.sum()), abs=tol)

    for node in range(tree.n):
        children = tree.children(node)
        finished_children_output = sum(
            float(tree.fout[c]) for c in children if node_state[c] == FN
        )
        if node_state[node] in (UN, CAND):
            if bbs[node] < 0:
                # Lemma 2: only the outputs of finished children are booked.
                assert booked[node] == pytest.approx(finished_children_output, abs=tol)
            else:
                # Candidate whose BookedBySubtree has been computed lazily: it
                # may additionally hold memory dispatched by finished
                # descendants (the Section 5.1 extension), but never less than
                # the finished children outputs, and the subtree decomposition
                # of Lemma 3(3) must already hold.
                assert booked[node] >= finished_children_output - tol
                expected = float(booked[node]) + sum(
                    float(bbs[c]) for c in children if node_state[c] in (ACT, RUN, FN)
                )
                assert bbs[node] == pytest.approx(expected, abs=tol)
        if node_state[node] in (ACT, RUN):
            # Lemma 3 (1): at least the finished children outputs are booked.
            assert booked[node] >= finished_children_output - tol
            # Lemma 3 (2): the subtree has booked enough for the node to run.
            assert bbs[node] >= mem_needed[node] - tol
            # Lemma 3 (3): BookedBySubtree decomposition.
            expected = float(booked[node]) + sum(
                float(bbs[c]) for c in children if node_state[c] in (ACT, RUN, FN)
            )
            assert bbs[node] == pytest.approx(expected, abs=tol)
            # Lemma 4: never book more than what cannot come from active children.
            ceiling = float(mem_needed[node]) - sum(
                float(tree.fout[c]) for c in children if node_state[c] in (ACT, RUN)
            )
            assert booked[node] <= ceiling + tol
        if node_state[node] == RUN:
            # Lemma 5: a running task has exactly its requirement booked.
            assert booked[node] == pytest.approx(float(mem_needed[node]), abs=tol)
        if node_state[node] == FN:
            assert bbs[node] == pytest.approx(0.0, abs=tol)


class TestMemBookingBasics:
    def test_single_node(self):
        tree = TaskTree(parent=[-1], fout=[2.0], nexec=[1.0], ptime=[4.0])
        result = MemBookingScheduler().schedule(tree, 2, 3.0)
        assert result.completed
        assert result.makespan == pytest.approx(4.0)

    def test_small_tree(self, small_tree):
        result = MemBookingScheduler().schedule(small_tree, 2, 100.0)
        assert result.completed
        validate_schedule(small_tree, result).raise_if_invalid()

    def test_theorem1_termination_at_minimum_memory(self, rng):
        # Theorem 1: if the sequential AO execution fits in M, MemBooking
        # completes the tree for any p and any EO.
        for _ in range(20):
            tree = random_tree(rng, int(rng.integers(2, 60)))
            ao = minimum_memory_postorder(tree)
            min_memory = sequential_peak_memory(tree, ao)
            for p in (1, 2, 8):
                for eo in (ao, critical_path_order(tree)):
                    result = MemBookingScheduler().schedule(
                        tree, p, min_memory, ao=ao, eo=eo
                    )
                    assert result.completed, result.failure_reason
                    assert result.peak_memory <= min_memory * (1 + 1e-9)
                    validate_schedule(tree, result).raise_if_invalid()

    def test_theorem1_with_arbitrary_topological_ao(self, rng):
        # The guarantee holds for any AO, not only postorders.
        for _ in range(10):
            tree = random_tree(rng, 30)
            ao = Ordering(tree.topological_order(), name="natural")
            bound = sequential_peak_memory(tree, ao)
            result = MemBookingScheduler().schedule(tree, 4, bound, ao=ao, eo=ao)
            assert result.completed, result.failure_reason
            validate_schedule(tree, result).raise_if_invalid()

    def test_failure_below_minimum(self, small_tree):
        result = MemBookingScheduler().schedule(small_tree, 2, small_tree.max_mem_needed * 0.9)
        assert not result.completed
        assert result.failure_reason is not None

    def test_one_processor_is_sequential(self, rng):
        tree = random_tree(rng, 40)
        ao = minimum_memory_postorder(tree)
        result = MemBookingScheduler().schedule(
            tree, 1, sequential_peak_memory(tree, ao), ao=ao, eo=ao
        )
        assert result.completed
        assert result.makespan == pytest.approx(tree.total_work)

    def test_never_exceeds_memory(self, rng):
        for _ in range(10):
            tree = random_tree(rng, 50)
            ao = minimum_memory_postorder(tree)
            bound = 1.5 * sequential_peak_memory(tree, ao)
            result = MemBookingScheduler().schedule(tree, 8, bound)
            assert result.completed
            assert result.peak_memory <= bound * (1 + 1e-9)
            validate_schedule(tree, result).raise_if_invalid()


class TestInvariants:
    def test_lemma_invariants_on_random_trees(self, rng):
        for _ in range(10):
            tree = random_tree(rng, int(rng.integers(3, 35)))
            ao = minimum_memory_postorder(tree)
            memory = sequential_peak_memory(tree, ao) * float(rng.uniform(1.0, 2.0))
            MemBookingScheduler().schedule(
                tree, int(rng.integers(1, 5)), memory, invariant_hook=check_booking_invariants
            )

    def test_lemma_invariants_on_chainy_trees(self, rng):
        for _ in range(10):
            tree = random_chainy_tree(rng, int(rng.integers(3, 30)))
            ao = minimum_memory_postorder(tree)
            memory = sequential_peak_memory(tree, ao)
            MemBookingScheduler().schedule(
                tree, 2, memory, invariant_hook=check_booking_invariants
            )

    def test_invariants_with_tight_and_loose_memory(self, small_tree):
        ao = minimum_memory_postorder(small_tree)
        tight = sequential_peak_memory(small_tree, ao)
        for memory in (tight, 2 * tight, 10 * tight):
            MemBookingScheduler().schedule(
                small_tree, 3, memory, invariant_hook=check_booking_invariants
            )


class TestReferenceEquivalence:
    """The optimised data structures must not change any decision."""

    def test_identical_schedules(self, rng):
        for _ in range(15):
            tree = random_tree(rng, int(rng.integers(3, 45)))
            ao = minimum_memory_postorder(tree)
            eo = critical_path_order(tree)
            memory = sequential_peak_memory(tree, ao) * float(rng.uniform(1.0, 2.5))
            p = int(rng.integers(1, 6))
            fast = MemBookingScheduler().schedule(tree, p, memory, ao=ao, eo=eo)
            slow = MemBookingReferenceScheduler().schedule(tree, p, memory, ao=ao, eo=eo)
            assert fast.completed and slow.completed
            np.testing.assert_allclose(fast.start_times, slow.start_times)
            np.testing.assert_allclose(fast.finish_times, slow.finish_times)
            assert fast.makespan == pytest.approx(slow.makespan)

    def test_identical_under_tight_memory(self, rng):
        for _ in range(10):
            tree = random_chainy_tree(rng, 25)
            ao = natural_postorder(tree)
            memory = sequential_peak_memory(tree, ao)
            fast = MemBookingScheduler().schedule(tree, 3, memory, ao=ao, eo=ao)
            slow = MemBookingReferenceScheduler().schedule(tree, 3, memory, ao=ao, eo=ao)
            np.testing.assert_allclose(fast.start_times, slow.start_times)


class TestComparativeBehaviour:
    def test_not_slower_than_activation_on_average(self, rng):
        # The paper's headline result: MemBooking dominates Activation.  On a
        # single instance the two heuristics may tie, so we compare the sum of
        # makespans over a batch of instances at a tight memory bound.
        total_membooking = 0.0
        total_activation = 0.0
        for _ in range(12):
            tree = random_tree(rng, 80)
            ao = minimum_memory_postorder(tree)
            memory = 1.5 * sequential_peak_memory(tree, ao)
            mb = MemBookingScheduler().schedule(tree, 4, memory, ao=ao, eo=ao)
            act = ActivationScheduler().schedule(tree, 4, memory, ao=ao, eo=ao)
            assert mb.completed and act.completed
            total_membooking += mb.makespan
            total_activation += act.makespan
        assert total_membooking <= total_activation * 1.02

    def test_books_less_than_activation_on_chain(self):
        # Section 3.1 chain example: MemBooking re-uses the chain memory while
        # Activation books every stage at once.
        tree = TaskTree(
            parent=[1, 2, -1],
            fout=[1.0, 1.0, 1.0],
            nexec=[3.0, 3.0, 3.0],
            ptime=[1.0, 1.0, 1.0],
        )
        mb = MemBookingScheduler().schedule(tree, 2, 100.0)
        act = ActivationScheduler().schedule(tree, 2, 100.0)
        assert mb.completed and act.completed
        assert mb.extras["peak_booked_memory"] < act.extras["peak_booked_memory"]

    def test_enables_parallelism_under_tight_memory(self):
        # Two independent subtrees; memory for only ~one of them under
        # Activation's conservative booking, but MemBooking can overlap them.
        #   root 6 <- {2, 5};  2 <- {0, 1};  5 <- {3, 4}
        tree = TaskTree(
            parent=[2, 2, 6, 5, 5, 6, -1],
            fout=[4.0, 4.0, 1.0, 4.0, 4.0, 1.0, 1.0],
            nexec=[0.0] * 7,
            ptime=[4.0, 4.0, 1.0, 4.0, 4.0, 1.0, 1.0],
        )
        ao = minimum_memory_postorder(tree)
        memory = sequential_peak_memory(tree, ao) * 1.6
        mb = MemBookingScheduler().schedule(tree, 4, memory, ao=ao, eo=ao)
        act = ActivationScheduler().schedule(tree, 4, memory, ao=ao, eo=ao)
        assert mb.completed and act.completed
        assert mb.makespan <= act.makespan
