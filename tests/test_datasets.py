"""Unit tests for the named datasets used by the experiment harness."""

from __future__ import annotations

import pytest

from repro.core.tree_metrics import height, tree_stats
from repro.workloads.datasets import assembly_dataset, height_study_dataset, synthetic_dataset


class TestAssemblyDataset:
    def test_tiny_scale(self):
        trees, spec = assembly_dataset("tiny")
        assert spec.name == "assembly-surrogate"
        assert spec.num_trees == len(trees) >= 4
        for tree in trees:
            stats = tree_stats(tree)
            assert stats.n >= 2
            assert stats.total_work > 0

    def test_deterministic(self):
        a, _ = assembly_dataset("tiny", seed=1)
        b, _ = assembly_dataset("tiny", seed=1)
        assert all(x == y for x, y in zip(a, b))

    def test_repetitions_grow_dataset(self):
        single, _ = assembly_dataset("tiny", repetitions=1)
        double, _ = assembly_dataset("tiny", repetitions=2)
        assert len(double) == 2 * len(single)

    def test_contains_deep_and_shallow_trees(self):
        trees, _ = assembly_dataset("small")
        heights = sorted(height(t) for t in trees)
        assert heights[-1] >= 3 * heights[0]

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            assembly_dataset("gigantic")

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            assembly_dataset("tiny", repetitions=0)


class TestSyntheticDataset:
    def test_tiny_scale(self):
        trees, spec = synthetic_dataset("tiny")
        assert spec.name == "synthetic"
        assert len(trees) == spec.num_trees
        assert all(t.n == 200 for t in trees)

    def test_overrides(self):
        trees, _ = synthetic_dataset("tiny", num_nodes=50, num_trees=3)
        assert len(trees) == 3
        assert all(t.n == 50 for t in trees)

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            synthetic_dataset("huge")


class TestHeightStudyDataset:
    def test_heights_span_a_wide_range(self):
        trees, spec = height_study_dataset(max_spine=600)
        heights = [height(t) for t in trees]
        assert max(heights) > 10 * min(heights)
        assert spec.num_trees == len(trees)
