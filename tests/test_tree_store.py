"""Unit tests for the :class:`~repro.core.tree_store.TreeStore` arena format.

Covers the satellite requirements of the zero-copy refactor: packing a
dataset into one arena, per-tree views aliasing the arena buffer (no node
data copied), the ``save -> mmap load -> view equality`` round-trip —
including trees with names and default ``nexec``/``ptime`` — and the
shared-memory publish/attach cycle the sweep backend uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TreeStore, load_store, save_store
from repro.core.task_tree import TaskTree

from .helpers import random_tree


@pytest.fixture()
def mixed_trees(rng):
    """Random trees plus the edge cases the arena must preserve."""
    trees = [random_tree(rng, int(n), integer_data=False) for n in (5, 23, 57)]
    # Names, and data left at the constructor defaults (nexec=0, ptime=1).
    trees.append(TaskTree([-1, 0, 0, 1], fout=[4.0, 3.0, 2.0, 1.0], names=["r", "a", "b", "c"]))
    # Single-node tree.
    trees.append(TaskTree([-1], fout=[2.5], nexec=[1.5], ptime=[0.5]))
    return trees


class TestPackAndViews:
    def test_roundtrip_equality(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        assert len(store) == len(mixed_trees)
        assert store.total_nodes == sum(t.n for t in mixed_trees)
        for i, original in enumerate(mixed_trees):
            view = store.tree(i)
            assert view == original
            assert view.names == original.names
            assert view.root == original.root

    def test_views_are_zero_copy(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        for i in range(len(store)):
            tree = store.tree(i)
            parent, fout, nexec, ptime = store.view(i)
            assert np.shares_memory(tree.parent, parent)
            assert np.shares_memory(tree.fout, fout)
            assert np.shares_memory(tree.nexec, nexec)
            assert np.shares_memory(tree.ptime, ptime)
            # All four columns live in the single arena buffer.
            assert np.shares_memory(fout, store._fout)

    def test_views_are_read_only(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        tree = store.tree(0)
        with pytest.raises(ValueError):
            tree.fout[0] = 99.0

    def test_num_nodes_and_iteration(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        assert [store.num_nodes(i) for i in range(len(store))] == [t.n for t in mixed_trees]
        assert list(store) == mixed_trees

    def test_metadata_preserved(self, mixed_trees):
        store = TreeStore.pack(mixed_trees, metadata={"scale": "tiny", "seed": 7})
        assert store.metadata == {"scale": "tiny", "seed": 7}

    def test_index_bounds(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        with pytest.raises(IndexError):
            store.tree(len(mixed_trees))
        with pytest.raises(IndexError):
            store.view(-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TreeStore.pack([])


class TestFileRoundTrip:
    def test_save_mmap_load(self, tmp_path, mixed_trees):
        """save -> mmap load -> per-tree view equality with the originals."""
        path = save_store(mixed_trees, tmp_path / "arena.bin", metadata={"k": 1})
        loaded = load_store(path)
        assert len(loaded) == len(mixed_trees)
        assert loaded.metadata == {"k": 1}
        for i, original in enumerate(mixed_trees):
            view = loaded.tree(i)
            assert view == original
            assert view.names == original.names

    def test_load_without_mmap(self, tmp_path, mixed_trees):
        path = save_store(mixed_trees, tmp_path / "arena.bin")
        loaded = load_store(path, use_mmap=False)
        assert list(loaded) == mixed_trees

    def test_load_with_validation(self, tmp_path, mixed_trees):
        path = save_store(mixed_trees, tmp_path / "arena.bin")
        loaded = load_store(path, validate=True)
        assert list(loaded) == mixed_trees
        # An in-bounds structural corruption (a two-node parent cycle) passes
        # the header checks but must be caught by validate=True.
        arena = bytearray(loaded.tobytes())
        data_offset = int.from_bytes(arena[40:48], "little")
        n_trees = int.from_bytes(arena[16:24], "little")
        parent_base = data_offset + 8 * (n_trees + 1)
        # Point node 1 at node 0 and node 0 at node 1 within tree 0.
        arena[parent_base : parent_base + 8] = (1).to_bytes(8, "little", signed=True)
        arena[parent_base + 8 : parent_base + 16] = (0).to_bytes(8, "little", signed=True)
        bad = tmp_path / "cycle.bin"
        bad.write_bytes(bytes(arena))
        with pytest.raises(ValueError):
            load_store(bad, validate=True)

    def test_resave_existing_store(self, tmp_path, mixed_trees):
        store = TreeStore.pack(mixed_trees, metadata={"k": 2})
        path = save_store(store, tmp_path / "arena.bin")
        assert load_store(path).metadata == {"k": 2}
        with pytest.raises(ValueError):
            save_store(store, tmp_path / "other.bin", metadata={"k": 3})

    def test_file_size_matches_nbytes(self, tmp_path, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        path = store.save(tmp_path / "arena.bin")
        assert path.stat().st_size == store.nbytes

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bogus.bin"
        path.write_bytes(b"NOTANARENA" + b"\0" * 64)
        with pytest.raises(ValueError, match="magic"):
            load_store(path)

    def test_rejects_truncated_file(self, tmp_path, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        path = tmp_path / "cut.bin"
        path.write_bytes(store.tobytes()[: store.nbytes // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_store(path, use_mmap=False)

    def test_rejects_future_version(self, tmp_path, mixed_trees):
        arena = bytearray(TreeStore.pack(mixed_trees).tobytes())
        arena[8:16] = (999).to_bytes(8, "little")
        with pytest.raises(ValueError, match="version"):
            TreeStore(bytes(arena))

    def test_rejects_corrupt_data_offset(self, mixed_trees):
        arena = bytearray(TreeStore.pack(mixed_trees).tobytes())
        arena[40:48] = (0).to_bytes(8, "little")  # data_offset inside the header
        with pytest.raises(ValueError, match="data offset"):
            TreeStore(bytes(arena))
        arena = bytearray(TreeStore.pack(mixed_trees).tobytes())
        arena[40:48] = (49).to_bytes(8, "little")  # unaligned
        with pytest.raises(ValueError, match="data offset"):
            TreeStore(bytes(arena))

    def test_rejects_oversized_meta_len(self, mixed_trees):
        arena = bytearray(TreeStore.pack(mixed_trees).tobytes())
        arena[32:40] = (2**40).to_bytes(8, "little")
        with pytest.raises(ValueError):
            TreeStore(bytes(arena))

    def test_rejects_non_monotone_offsets(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        arena = bytearray(store.tobytes())
        # Corrupt the second tree offset to go backwards.
        header_struct_size = 48
        data_offset = int.from_bytes(arena[40:48], "little")
        entry = data_offset + 8  # offsets[1]
        arena[entry : entry + 8] = (-5).to_bytes(8, "little", signed=True)
        assert header_struct_size <= entry
        with pytest.raises(ValueError, match="monotone"):
            TreeStore(bytes(arena))


class TestSharedMemoryRoundTrip:
    def test_pack_to_shared_memory_direct(self, mixed_trees):
        """The single-copy publish path must produce the exact arena bytes."""
        reference = TreeStore.pack(mixed_trees, metadata={"k": 9})
        shm = TreeStore.pack_to_shared_memory(mixed_trees, metadata={"k": 9})
        attached = None
        try:
            attached = TreeStore.attach(shm.name)
            assert attached.tobytes() == reference.tobytes()
            assert list(attached) == mixed_trees
        finally:
            if attached is not None:
                attached.close()
            shm.close()
            shm.unlink()

    def test_publish_attach_roundtrip(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        shm = store.to_shared_memory()
        attached = None
        try:
            attached = TreeStore.attach(shm.name)
            for i, original in enumerate(mixed_trees):
                assert attached.tree(i) == original
                assert attached.tree(i).names == original.names
        finally:
            if attached is not None:
                attached.close()
            shm.close()
            shm.unlink()

    def test_attached_views_alias_shared_buffer(self, mixed_trees):
        store = TreeStore.pack(mixed_trees)
        shm = store.to_shared_memory()
        attached = TreeStore.attach(shm.name)
        try:
            tree = attached.tree(1)
            assert np.shares_memory(tree.fout, attached._fout)
        finally:
            del tree
            attached.close()
            shm.close()
            shm.unlink()
