"""Unit tests for the booked-memory ledger."""

from __future__ import annotations

import pytest

from repro.schedulers.memory import MemoryLedger


class TestMemoryLedger:
    def test_basic_book_release(self):
        ledger = MemoryLedger(100.0)
        assert ledger.available == 100.0
        ledger.book(30.0)
        ledger.book(20.0)
        assert ledger.booked == pytest.approx(50.0)
        assert ledger.available == pytest.approx(50.0)
        ledger.release(10.0)
        assert ledger.booked == pytest.approx(40.0)
        assert ledger.peak_booked == pytest.approx(50.0)

    def test_fits(self):
        ledger = MemoryLedger(10.0)
        ledger.book(4.0)
        assert ledger.fits(6.0)
        assert not ledger.fits(6.1)

    def test_overflow_raises(self):
        ledger = MemoryLedger(10.0)
        with pytest.raises(RuntimeError):
            ledger.book(11.0)

    def test_overflow_allowed_when_not_enforced(self):
        ledger = MemoryLedger(10.0)
        ledger.book(11.0, enforce=False)
        assert ledger.booked == pytest.approx(11.0)

    def test_negative_amounts_rejected(self):
        ledger = MemoryLedger(10.0)
        with pytest.raises(ValueError):
            ledger.book(-1.0)
        with pytest.raises(ValueError):
            ledger.release(-1.0)

    def test_release_more_than_booked_raises(self):
        ledger = MemoryLedger(10.0)
        ledger.book(1.0)
        with pytest.raises(RuntimeError):
            ledger.release(5.0)

    def test_tiny_negative_rounding_is_clamped(self):
        ledger = MemoryLedger(10.0)
        ledger.book(0.3)
        ledger.release(0.1 + 0.2)  # slightly larger than 0.3 in binary floating point
        assert ledger.booked == 0.0

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            MemoryLedger(0.0)
        with pytest.raises(ValueError):
            MemoryLedger(-5.0)
