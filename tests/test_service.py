"""The resident scheduler service: protocol, handlers, daemon, CLI.

Three layers under test, mirroring the subsystem's own layering:

* the **frame protocol** over a raw socketpair (roundtrips, clean EOF vs
  torn stream);
* the **service handlers** driven directly (no socket): schedule records
  identical to :func:`repro.experiments.runner.run_single`, sweeps
  identical to direct plan execution, per-request quarantine;
* the **daemon end to end** over an ``AF_UNIX`` socket: warm-cache repeat
  queries serve exact bytes with zero fresh simulations, two concurrent
  clients sweeping overlapping plans lose no rows and double-compute
  nothing, errors never kill the daemon, shutdown is clean.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.core.tree_io import to_dict
from repro.experiments.config import SweepConfig
from repro.experiments.plan import SweepPlan, execute_plan
from repro.experiments.records import RecordTable, records_equal
from repro.experiments.runner import prepare_instance, run_single
from repro.experiments.specs import load_dataset
from repro.resilience import reset_run_health
from repro.service import (
    FRAME_JSON,
    FRAME_ROWS,
    ProtocolError,
    RemoteError,
    SchedulerDaemon,
    SchedulerService,
    ServiceClient,
    decode_payload,
    parse_address,
    recv_frame,
    send_frame,
    send_json,
)
from repro.workloads import SyntheticTreeConfig, synthetic_tree, synthetic_trees

TIMING_FIELDS = ("scheduling_seconds", "scheduling_seconds_per_node")


@pytest.fixture(autouse=True)
def _fresh_health():
    reset_run_health()
    yield
    reset_run_health()


@pytest.fixture
def service(tmp_path):
    return SchedulerService(cache_dir=tmp_path / "cache")


@pytest.fixture
def daemon(service, tmp_path):
    instance = SchedulerDaemon(
        service, socket_path=tmp_path / "mt.sock", request_timeout=30.0
    )
    instance.start()
    yield instance
    instance.stop()


def _drain(service, request):
    """Run one request through the service and split (row batches, payload)."""
    batches: list[RecordTable] = []
    terminal = None
    for kind, payload in service.handle(request):
        if kind == FRAME_ROWS:
            batches.append(RecordTable(payload))
        else:
            assert terminal is None, "only one terminal J frame allowed"
            terminal = decode_payload(payload)
    assert terminal is not None
    return batches, terminal


# --------------------------------------------------------------------------- #
# protocol framing
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_roundtrip_both_kinds(self):
        a, b = socket.socketpair()
        try:
            send_json(a, {"kind": "ping", "x": [1, 2.5, None]})
            send_frame(a, FRAME_ROWS, b"\x00\x01" * 1000)
            kind, payload = recv_frame(b)
            assert kind == FRAME_JSON
            assert decode_payload(payload) == {"kind": "ping", "x": [1, 2.5, None]}
            kind, payload = recv_frame(b)
            assert kind == FRAME_ROWS and payload == b"\x00\x01" * 1000
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none_torn_stream_raises(self):
        a, b = socket.socketpair()
        try:
            a.close()
            assert recv_frame(b) is None  # EOF at a frame boundary
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(b"J\x00\x00")  # half a header, then EOF
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_unknown_frame_kind_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"X\x00\x00\x00\x00")
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self, tmp_path):
        assert parse_address(tmp_path / "x.sock")[0] == socket.AF_UNIX
        assert parse_address("127.0.0.1:9000") == (
            socket.AF_INET,
            ("127.0.0.1", 9000),
        )
        assert parse_address("9000") == (socket.AF_INET, ("127.0.0.1", 9000))
        with pytest.raises(ValueError):
            parse_address("not-an-address")


# --------------------------------------------------------------------------- #
# service handlers (no socket)
# --------------------------------------------------------------------------- #
class TestSchedulerService:
    def test_schedule_matches_run_single(self, service):
        tree = synthetic_tree(num_nodes=60, rng=11)
        record = service.schedule_record(
            {
                "tree": to_dict(tree),
                "scheduler": "Activation",
                "processors": 4,
                "memory_factor": 2.0,
            }
        )
        config = SweepConfig(
            schedulers=("Activation",), memory_factors=(2.0,), processors=(4,)
        )
        expected = run_single(
            prepare_instance(tree, 0, config), "Activation", 4, 2.0, config
        )
        assert records_equal([record], [expected], ignore=TIMING_FIELDS)

    def test_absolute_memory_maps_to_factor(self, service):
        tree = synthetic_tree(num_nodes=60, rng=11)
        record = service.schedule_record(
            {"tree": to_dict(tree), "scheduler": "Activation", "memory": 5000.0}
        )
        assert record["memory_limit"] == pytest.approx(5000.0)

    def test_warm_context_is_reused(self, service):
        tree = synthetic_tree(num_nodes=60, rng=11)
        request = {"tree": to_dict(tree), "scheduler": "Activation"}
        service.schedule_record(dict(request))
        assert len(service._contexts) == 1
        service.schedule_record(dict(request, processors=2))
        assert len(service._contexts) == 1  # same tree/orders: one context

    def test_sweep_matches_direct_plan_execution(self, service):
        service.load_dataset("synthetic", "tiny")
        batches, stats = _drain(
            service,
            {
                "kind": "sweep",
                "dataset": "synthetic:tiny",
                "schedulers": ["Activation", "MemBooking"],
                "processors": [2],
                "memory_factors": [2.0],
            },
        )
        got = [row for batch in batches for row in batch.to_dicts()]
        trees = load_dataset("synthetic", "tiny", 7011)
        config = SweepConfig(
            schedulers=("Activation", "MemBooking"),
            memory_factors=(2.0,),
            processors=(2,),
        )
        expected = execute_plan(trees, SweepPlan.from_config(config, len(trees)))
        assert records_equal(got, expected.to_dicts(), ignore=TIMING_FIELDS)
        assert stats["rows"] == len(expected)
        assert stats["fresh_rows"] == len(expected)

    def test_sweep_row_subset(self, service):
        service.load_dataset("synthetic", "tiny")
        batches, stats = _drain(
            service,
            {
                "kind": "sweep",
                "dataset": "synthetic:tiny",
                "schedulers": ["Activation"],
                "processors": [2],
                "memory_factors": [2.0],
                "rows": [0, 2],
            },
        )
        got = [row for batch in batches for row in batch.to_dicts()]
        assert [record["tree_index"] for record in got] == [0, 2]
        assert stats["rows"] == 2

    def test_unknown_kind_and_bad_request_are_quarantined(self, service):
        for _ in range(2):
            _, terminal = _drain(service, {"kind": "frobnicate"})
            assert terminal["ok"] is False
            assert terminal["error"]["type"] == "ServiceError"
        _, terminal = _drain(
            service, {"kind": "schedule", "dataset": "nope", "tree_index": 0}
        )
        assert terminal["ok"] is False
        # the service still answers after quarantined requests
        _, terminal = _drain(service, {"kind": "ping"})
        assert terminal["ok"] is True
        snapshot = service.metrics.snapshot()
        assert snapshot["frobnicate"]["errors"] == 2
        assert snapshot["schedule"]["errors"] == 1

    def test_evict_drops_dataset_and_contexts(self, service):
        service.load_dataset("synthetic", "tiny")
        _drain(
            service,
            {"kind": "schedule", "dataset": "synthetic:tiny", "tree_index": 0},
        )
        assert len(service._contexts) == 1
        _, terminal = _drain(service, {"kind": "evict", "name": "synthetic:tiny"})
        assert terminal["ok"] is True
        assert service.datasets == {}
        assert service._contexts == {}
        _, terminal = _drain(
            service, {"kind": "sweep", "dataset": "synthetic:tiny"}
        )
        assert terminal["ok"] is False

    def test_status_shape(self, service):
        _, loaded = _drain(
            service, {"kind": "load", "dataset_kind": "synthetic", "scale": "tiny"}
        )
        assert loaded["ok"] is True
        _, status = _drain(service, {"kind": "status"})
        assert status["ok"] is True
        assert status["uptime_seconds"] >= 0.0
        assert status["datasets"]["synthetic:tiny"]["trees"] == 4
        assert status["cache"]["kind"] == "ResultCache"
        assert set(status["health"]) >= {"retries", "timeouts"}
        assert status["metrics"]["load"]["count"] == 1


# --------------------------------------------------------------------------- #
# daemon end to end
# --------------------------------------------------------------------------- #
class TestDaemon:
    def test_schedule_inline_and_resident_agree(self, daemon, service):
        service.load_dataset("synthetic", "tiny")
        trees = load_dataset("synthetic", "tiny", 7011)
        with ServiceClient(daemon.address) as client:
            inline = client.schedule(
                tree=to_dict(trees[1]),
                tree_index=1,
                scheduler="Activation",
                processors=2,
                memory_factor=2.0,
            )
            resident = client.schedule(
                dataset="synthetic:tiny",
                tree_index=1,
                scheduler="Activation",
                processors=2,
                memory_factor=2.0,
            )
        assert records_equal([inline], [resident], ignore=TIMING_FIELDS)

    def test_warm_sweep_serves_exact_bytes_with_zero_fresh(self, daemon, service):
        service.load_dataset("synthetic", "tiny")
        request = dict(
            schedulers=["Activation"], processors=[2, 4], memory_factors=[2.0]
        )
        with ServiceClient(daemon.address) as client:
            first, stats1 = client.sweep("synthetic:tiny", **request)
            second, stats2 = client.sweep("synthetic:tiny", **request)
        assert stats1["fresh_rows"] == len(first) > 0
        assert stats2["fresh_rows"] == 0
        assert stats2["cached_rows"] == len(second) == len(first)
        # Cached rows round-trip exact bits — timing fields included.
        assert records_equal(first, second)

    def test_concurrent_clients_overlapping_plans(self, daemon, service):
        service.load_dataset("synthetic", "tiny")
        trees = load_dataset("synthetic", "tiny", 7011)
        config = SweepConfig(
            schedulers=("Activation", "MemBooking"),
            memory_factors=(2.0,),
            processors=(2,),
        )
        plan = SweepPlan.from_config(config, len(trees))
        reference = execute_plan(trees, plan).to_dicts()
        windows = [list(range(0, 6)), list(range(2, 8))]  # rows 2..5 overlap
        results: dict[int, list[dict]] = {}
        errors: list[BaseException] = []

        def sweep(slot: int, rows: list[int]) -> None:
            try:
                with ServiceClient(daemon.address) as client:
                    records, _ = client.sweep(
                        "synthetic:tiny",
                        schedulers=["Activation", "MemBooking"],
                        processors=[2],
                        memory_factors=[2.0],
                        rows=rows,
                    )
                    results[slot] = records
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=(slot, rows))
            for slot, rows in enumerate(windows)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for slot, rows in enumerate(windows):
            assert records_equal(
                results[slot], [reference[row] for row in rows], ignore=TIMING_FIELDS
            )
        # No lost rows and no double-compute: the union of both windows is
        # cached, and the overlap was simulated exactly once.
        keys = plan.instance_keys(trees)
        union = sorted({row for rows in windows for row in rows})
        assert service.cache.count_cached([keys[row] for row in union]) == len(union)
        assert service.cache.rows_fresh == len(union)
        assert not list(service.cache.directory.glob("*.quarantined"))

    def test_error_keeps_connection_and_daemon_alive(self, daemon):
        with ServiceClient(daemon.address) as client:
            with pytest.raises(RemoteError) as info:
                client.sweep("never-loaded")
            assert "never-loaded" in str(info.value)
            assert client.ping()["ok"] is True  # same connection still serves

    def test_tcp_mode(self, service):
        daemon = SchedulerDaemon(service, port=0, request_timeout=30.0)
        daemon.start()
        try:
            assert daemon.port != 0
            with ServiceClient(daemon.address) as client:
                assert client.ping()["ok"] is True
        finally:
            daemon.stop()

    def test_shutdown_request_stops_daemon_and_unlinks(self, service, tmp_path):
        path = tmp_path / "down.sock"
        daemon = SchedulerDaemon(service, socket_path=path, request_timeout=30.0)
        daemon.start()
        server = threading.Thread(target=daemon.serve_forever, daemon=True)
        server.start()
        with ServiceClient(daemon.address) as client:
            assert client.shutdown_server()["shutting_down"] is True
        server.join(timeout=10)
        assert not server.is_alive()
        assert not path.exists()

    def test_two_daemons_cannot_share_a_socket(self, daemon, service):
        other = SchedulerDaemon(service, socket_path=daemon.socket_path)
        with pytest.raises(RuntimeError, match="already serving"):
            other.start()


# --------------------------------------------------------------------------- #
# CLI surfaces
# --------------------------------------------------------------------------- #
class TestCli:
    @pytest.fixture
    def tree_file(self, tmp_path):
        from repro.core.tree_io import save_json

        tree = synthetic_tree(num_nodes=60, rng=11)
        return save_json(tree, tmp_path / "tree.json")

    def test_schedule_json_matches_wire_serializer(self, tree_file, capsys):
        from repro.cli import main

        assert main(["schedule", str(tree_file), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scheduler"] == "MemBooking"
        assert record["completed"] is True
        assert len(record) == 21

    def test_figure_dry_run_json(self, capsys):
        from repro.cli import main

        assert main(["figure", "fig10", "--scale", "tiny", "--dry-run", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["unique"] > 0
        assert report["figures"][0]["figure_id"] == "fig10"

    def test_serve_and_client_loop(self, tree_file, tmp_path, capsys):
        import time

        from repro.cli import main

        sock = tmp_path / "cli.sock"
        server = threading.Thread(
            target=main,
            args=(["serve", "--socket", str(sock), "--load", "synthetic:tiny"],),
            daemon=True,
        )
        server.start()
        for _ in range(200):
            if sock.exists():
                break
            time.sleep(0.05)
        assert sock.exists()
        try:
            assert main(["client", str(sock), "status"]) == 0
            status = json.loads(capsys.readouterr().out.splitlines()[-1])
            assert status["datasets"]["synthetic:tiny"]["trees"] == 4

            assert (
                main(
                    [
                        "client", str(sock), "sweep",
                        "--dataset", "synthetic:tiny",
                        "--schedulers", "Activation",
                        "--processors", "2",
                        "--memory-factors", "2.0",
                        "--rows", "0-1",
                        "--json",
                    ]
                )
                == 0
            )
            sweep = json.loads(capsys.readouterr().out.splitlines()[-1])
            assert sweep["stats"]["rows"] == 2
            assert len(sweep["records"]) == 2

            # --via routes through the daemon and prints the same record
            assert main(["schedule", str(tree_file), "--via", str(sock), "--json"]) == 0
            remote = json.loads(capsys.readouterr().out)
            assert main(["schedule", str(tree_file), "--json"]) == 0
            local = json.loads(capsys.readouterr().out)
            assert records_equal([remote], [local], ignore=TIMING_FIELDS)
        finally:
            assert main(["client", str(sock), "shutdown"]) == 0
            server.join(timeout=10)
        assert not server.is_alive()
        assert not sock.exists()

    def test_client_connection_refused_is_reported(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["client", str(tmp_path / "absent.sock"), "ping"]) == 1
        assert "cannot reach daemon" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# wire format details
# --------------------------------------------------------------------------- #
class TestWireFormat:
    def test_record_table_roundtrips_through_to_bytes(self):
        trees = synthetic_trees(2, SyntheticTreeConfig(num_nodes=30), rng=5)
        config = SweepConfig(
            schedulers=("Activation",), memory_factors=(2.0,), processors=(2,)
        )
        table = execute_plan(trees, SweepPlan.from_config(config, len(trees)))
        clone = RecordTable(table.to_bytes())
        assert clone.to_dicts() == table.to_dicts()
        assert clone.to_bytes() == table.to_bytes()

    def test_sweep_streams_in_batches(self, service):
        service.load_dataset("synthetic", "tiny")
        batches, stats = _drain(
            service,
            {
                "kind": "sweep",
                "dataset": "synthetic:tiny",
                "schedulers": ["Activation"],
                "processors": [2, 4],
                "memory_factors": [2.0],
                "batch_rows": 1,
            },
        )
        assert len(batches) == stats["rows"] == 8
        assert all(len(batch) == 1 for batch in batches)
