"""Smoke tests: every example script must run end-to-end.

The examples double as documentation; running them here guarantees they stay
in sync with the public API.  They are executed in-process (import + main)
with small arguments so the whole module stays fast.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_examples_directory_contents(self):
        names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart",
            "sparse_factorization",
            "memory_pressure_study",
            "ordering_study",
            "runtime_overhead",
        } <= names

    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "MemBooking" in out
        assert "FAILED" not in out

    def test_sparse_factorization(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["sparse_factorization.py", "12"])
        load_example("sparse_factorization").main()
        out = capsys.readouterr().out
        assert "assembly tree" in out
        assert "speedup" in out

    def test_memory_pressure_study(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["memory_pressure_study.py", "3", "120"])
        load_example("memory_pressure_study").main()
        out = capsys.readouterr().out
        assert "memory factor" in out
        assert "MemBooking" in out

    def test_ordering_study(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["ordering_study.py", "2", "100"])
        load_example("ordering_study").main()
        out = capsys.readouterr().out
        assert "memPO/CP" in out

    def test_runtime_overhead_measures(self, capsys, monkeypatch):
        # The full script sweeps large sizes; reuse its measure() helper on a
        # small tree to keep the test fast, then check the helper's contract.
        module = load_example("runtime_overhead")
        from repro import MemBookingScheduler
        from repro.workloads import SyntheticTreeConfig, synthetic_tree

        tree = synthetic_tree(SyntheticTreeConfig(num_nodes=150), rng=2)
        total, per_node = module.measure(tree, MemBookingScheduler())
        assert total >= 0
        assert per_node == pytest.approx(total / tree.n)
