"""Integration tests for the sweep runner and the configuration objects."""

from __future__ import annotations

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.runner import prepare_instance, run_single, run_sweep
from repro.workloads import SyntheticTreeConfig, synthetic_trees


@pytest.fixture(scope="module")
def small_batch():
    return synthetic_trees(3, SyntheticTreeConfig(num_nodes=120), rng=11)


class TestSweepConfig:
    def test_defaults(self):
        config = SweepConfig()
        assert config.schedulers == ("Activation", "MemBookingRedTree", "MemBooking")
        assert config.processors == (8,)

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(schedulers=())
        with pytest.raises(ValueError):
            SweepConfig(memory_factors=(0.5,))
        with pytest.raises(ValueError):
            SweepConfig(processors=(0,))
        with pytest.raises(ValueError):
            SweepConfig(min_completion_fraction=2.0)
        with pytest.raises(ValueError):
            SweepConfig(timing_repetitions=0)

    def test_with_overrides(self):
        config = SweepConfig().with_overrides(processors=(2, 4))
        assert config.processors == (2, 4)
        assert config.schedulers == SweepConfig().schedulers


class TestRunner:
    def test_record_count_and_fields(self, small_batch):
        config = SweepConfig(
            schedulers=("Activation", "MemBooking"),
            memory_factors=(1.0, 2.0),
            processors=(2,),
        )
        records = run_sweep(small_batch, config)
        assert len(records) == len(small_batch) * 2 * 2
        required = {
            "tree_index",
            "scheduler",
            "memory_factor",
            "completed",
            "makespan",
            "normalized_makespan",
            "memory_fraction",
            "scheduling_seconds",
            "lower_bound",
        }
        assert required <= set(records[0])

    def test_membooking_always_completes_at_factor_one(self, small_batch):
        config = SweepConfig(schedulers=("MemBooking",), memory_factors=(1.0,))
        records = run_sweep(small_batch, config)
        assert all(r["completed"] for r in records)

    def test_normalized_makespan_at_least_one(self, small_batch):
        records = run_sweep(
            small_batch,
            SweepConfig(schedulers=("MemBooking",), memory_factors=(2.0,)),
        )
        assert all(r["normalized_makespan"] >= 1.0 - 1e-9 for r in records)

    def test_memory_fraction_bounded(self, small_batch):
        records = run_sweep(
            small_batch,
            SweepConfig(schedulers=("Activation", "MemBooking"), memory_factors=(1.5,)),
        )
        for record in records:
            if record["completed"]:
                assert record["memory_fraction"] <= 1.0 + 1e-9

    def test_overrides_kwargs(self, small_batch):
        records = run_sweep(
            small_batch[:1],
            SweepConfig(schedulers=("MemBooking",), memory_factors=(2.0,)),
            processors=(1, 2),
        )
        assert {r["num_processors"] for r in records} == {1, 2}

    def test_run_single(self, small_batch):
        config = SweepConfig(schedulers=("MemBooking",))
        context = prepare_instance(small_batch[0], 0, config)
        record = run_single(context, "MemBooking", 4, 2.0, config)
        assert record["completed"]
        assert record["memory_limit"] == pytest.approx(2.0 * context.minimum_memory)

    def test_unknown_order_rejected(self, small_batch):
        config = SweepConfig(activation_order="mystery")
        with pytest.raises(ValueError):
            prepare_instance(small_batch[0], 0, config)

    def test_timing_repetitions_only_affect_timing_fields(self, small_batch):
        """Min-of-N timing never changes a record's value fields.

        The simulations are deterministic, so repeating one only tightens
        the wall-clock measurement — which is exactly what keeps the
        committed timing-figure artifacts stable across regenerations.
        """
        config = SweepConfig(schedulers=("MemBooking",))
        repeated = config.with_overrides(timing_repetitions=4)
        context = prepare_instance(small_batch[0], 0, config)
        timing_fields = {"scheduling_seconds", "scheduling_seconds_per_node"}
        once = run_single(context, "MemBooking", 4, 2.0, config)
        best = run_single(context, "MemBooking", 4, 2.0, repeated)
        assert {k: v for k, v in once.items() if k not in timing_fields} == {
            k: v for k, v in best.items() if k not in timing_fields
        }
        assert best["scheduling_seconds"] > 0.0
        assert best["scheduling_seconds_per_node"] == pytest.approx(
            best["scheduling_seconds"] / small_batch[0].n
        )
