"""High-level entry point: run one instance through the compiled stepper.

``simulate`` is the native twin of ``EventDrivenScheduler._run_simulation``
(and of one lane of ``lanes._run_batch``): it takes the contiguous planes
of a :class:`~repro.schedulers.engine.SimWorkspace`, allocates the output
arrays, performs the single C call, and translates the returned stats
struct into the exact Python-side artefacts -- including the verbatim
failure strings and the ledger ``RuntimeError`` the scalar kernels raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .abi import FAIL_DEADLOCK, FAIL_LEDGER, FAIL_NONE, FAIL_T0, MemtreeStats, NativeKernels

_T0_FAILURE = (
    "no task can be started at t=0: "
    "the memory bound is too small for the first activations"
)


@dataclass(frozen=True)
class NativePlanes:
    """Contiguous int64/float64 views of one SimWorkspace, ABI-ready."""

    n: int
    parent: np.ndarray
    ptime: np.ndarray
    fout: np.ndarray
    mem_needed: np.ndarray
    num_children: np.ndarray
    child_offsets: np.ndarray
    child_nodes: np.ndarray
    leaves: np.ndarray
    ao_sequence: np.ndarray
    ao_rank: np.ndarray
    eo_rank: np.ndarray
    request_ao: np.ndarray
    release: np.ndarray


@dataclass(frozen=True)
class NativeOutcome:
    """Everything a caller (scalar engine or lane engine) needs."""

    start: np.ndarray
    finish: np.ndarray
    processor: np.ndarray
    clock: float
    finished: int
    num_events: int
    failure: str | None
    extras: dict[str, Any]
    peak_running: int
    blocked: bool
    memory_bound: bool
    starve_min: int
    bound_need: float


def _ptr(array: np.ndarray) -> int:
    return array.ctypes.data


def simulate(
    kernels: NativeKernels,
    kernel_name: str,
    planes: NativePlanes,
    num_processors: int,
    memory_limit: float,
    *,
    dispatch_to_candidates: bool = True,
    starve_init: int | None = None,
) -> NativeOutcome:
    n = planes.n
    limit = float(memory_limit)
    tol = 1e-9 * max(1.0, limit)
    threshold = limit + tol
    if starve_init is None:
        starve_init = n + num_processors + 1

    start = np.empty(n, dtype=np.float64)
    finish = np.empty(n, dtype=np.float64)
    proc = np.empty(n, dtype=np.int64)
    stats = MemtreeStats()

    if kernel_name == "activation":
        rc = kernels.activation_run(
            n,
            num_processors,
            threshold,
            tol,
            _ptr(planes.request_ao),
            _ptr(planes.ao_sequence),
            _ptr(planes.eo_rank),
            _ptr(planes.release),
            _ptr(planes.parent),
            _ptr(planes.ptime),
            _ptr(planes.num_children),
            starve_init,
            _ptr(start),
            _ptr(finish),
            _ptr(proc),
            stats,
        )
    elif kernel_name == "membooking":
        rc = kernels.membooking_run(
            n,
            num_processors,
            threshold,
            tol,
            _ptr(planes.parent),
            _ptr(planes.fout),
            _ptr(planes.mem_needed),
            _ptr(planes.ptime),
            _ptr(planes.child_offsets),
            _ptr(planes.child_nodes),
            _ptr(planes.num_children),
            _ptr(planes.ao_rank),
            _ptr(planes.eo_rank),
            _ptr(planes.leaves),
            len(planes.leaves),
            1 if dispatch_to_candidates else 0,
            starve_init,
            _ptr(start),
            _ptr(finish),
            _ptr(proc),
            stats,
        )
    else:  # pragma: no cover - caller bug
        raise ValueError(f"unknown native kernel: {kernel_name!r}")
    if rc != 0:  # pragma: no cover - allocation failure
        raise MemoryError("native kernel scratch allocation failed")

    code = stats.failure
    if code == FAIL_LEDGER:
        raise RuntimeError(
            f"released more memory than was booked (booked={stats.ledger_value:.6g})"
        )
    failure: str | None
    if code == FAIL_NONE:
        failure = None
    elif code == FAIL_T0:
        failure = _T0_FAILURE
    elif code == FAIL_DEADLOCK:
        remaining = n - stats.finished
        failure = (
            f"deadlock at t={stats.clock:.6g}: {remaining} tasks remain "
            "but none is activated and available under the memory bound"
        )
    else:  # pragma: no cover - unknown code
        raise RuntimeError(f"native kernel returned unknown failure code {code}")

    extras: dict[str, Any] = {"peak_booked_memory": stats.peak_booked}
    if kernel_name == "activation":
        extras["activated"] = int(stats.next_activation)

    return NativeOutcome(
        start=start,
        finish=finish,
        processor=proc,
        clock=stats.clock,
        finished=int(stats.finished),
        num_events=int(stats.num_events),
        failure=failure,
        extras=extras,
        peak_running=int(stats.peak_running),
        blocked=bool(stats.blocked),
        memory_bound=bool(stats.memory_bound),
        starve_min=int(stats.starve_min),
        bound_need=float(stats.bound_need),
    )
