"""Compile-on-first-use build driver for the native kernel plane.

Cython/numba are not part of the toolchain, but a platform C compiler
usually is.  This module compiles the bundled ``kernels.c`` into a shared
object in a content-addressed cache directory: the cache key is the SHA-256
of (ABI version, compiler flags, source text), so editing the source --
or shipping a new release -- transparently rebuilds, while warm starts are
a single ``dlopen``.

No state is kept here beyond the cache directory; mode selection (OFF /
AUTO / REQUIRED) and the loaded-library singleton live in
:mod:`repro.native`.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

#: Bumped whenever the C <-> Python struct/signature contract changes; part
#: of the cache key so stale shared objects can never be loaded.
ABI_VERSION = 1

#: Flags are part of the bit-identity contract: -ffp-contract=off forbids
#: fused multiply-adds so every double op matches CPython's, and there is
#: deliberately no -ffast-math.
CFLAGS = ("-O2", "-fPIC", "-shared", "-std=c11", "-ffp-contract=off")

SOURCE_PATH = Path(__file__).with_name("kernels.c")


class NativeBuildError(RuntimeError):
    """Raised when the shared object cannot be produced (no compiler, or
    the compiler exited nonzero).  Carries the compiler stderr when any."""


def cache_directory() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "memtree-native"


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc:
        found = shutil.which(cc)
        if found:
            return found
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def source_digest(source: str) -> str:
    payload = "\x00".join((str(ABI_VERSION), " ".join(CFLAGS), source))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_library(source: str | None = None, cache_dir: Path | None = None) -> Path:
    """Return the path of the compiled shared object, building if needed.

    ``source``/``cache_dir`` exist for tests; production callers pass
    nothing and get the bundled source in the user cache directory.
    """

    from ..resilience.faults import resolve_fault_plan

    plan = resolve_fault_plan(None)
    if plan is not None:
        # Before the cache short-circuit: an armed ``native-build`` fault
        # must fail the build even when a compiled object already exists.
        plan.maybe_raise("native-build", "build", exc=NativeBuildError)
    if source is None:
        try:
            source = SOURCE_PATH.read_text(encoding="utf-8")
        except OSError as exc:  # source not shipped (broken install)
            raise NativeBuildError(f"native kernel source unavailable: {exc}") from exc
    directory = cache_dir if cache_dir is not None else cache_directory()
    digest = source_digest(source)
    target = directory / f"memtree_{digest[:16]}.so"
    if target.exists():
        return target

    compiler = _find_compiler()
    if compiler is None:
        raise NativeBuildError("no C compiler found (tried $CC, cc, gcc, clang)")

    directory.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        c_path = Path(tmp) / "kernels.c"
        so_path = Path(tmp) / target.name
        c_path.write_text(source, encoding="utf-8")
        command = [compiler, *CFLAGS, str(c_path), "-o", str(so_path), "-lm"]
        proc = subprocess.run(command, capture_output=True, text=True)
        if proc.returncode != 0:
            raise NativeBuildError(
                f"native kernel build failed ({compiler} exited "
                f"{proc.returncode}):\n{proc.stderr.strip()}"
            )
        # Atomic publish: concurrent builders race benignly to the same name.
        os.replace(so_path, target)
    return target
