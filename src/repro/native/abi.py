"""ctypes bindings for the compiled kernel plane (see ``kernels.c``).

The ABI is deliberately thin: every argument is a raw pointer into an
existing contiguous numpy plane (passed as the integer ``.ctypes.data``)
or a scalar, and each call simulates one full instance -- no Python is
entered per event.  The ``memtree_stats`` struct mirrors the C layout
exactly (four doubles first, then int64 fields, so there is no padding).
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass
from pathlib import Path

from .build import ABI_VERSION, NativeBuildError

FAIL_NONE = 0
FAIL_T0 = 1
FAIL_DEADLOCK = 2
FAIL_LEDGER = 3


class MemtreeStats(ctypes.Structure):
    _fields_ = [
        ("clock", ctypes.c_double),
        ("peak_booked", ctypes.c_double),
        ("ledger_value", ctypes.c_double),
        ("bound_need", ctypes.c_double),
        ("finished", ctypes.c_int64),
        ("num_events", ctypes.c_int64),
        ("next_activation", ctypes.c_int64),
        ("failure", ctypes.c_int64),
        ("peak_running", ctypes.c_int64),
        ("blocked", ctypes.c_int64),
        ("memory_bound", ctypes.c_int64),
        ("starve_min", ctypes.c_int64),
    ]


_I64 = ctypes.c_int64
_F64 = ctypes.c_double
_PTR = ctypes.c_void_p

_ACTIVATION_ARGTYPES = [
    _I64,  # n
    _I64,  # num_processors
    _F64,  # threshold
    _F64,  # tol
    _PTR,  # req_ao (f64)
    _PTR,  # ao_seq (i64)
    _PTR,  # eo_rank (i64)
    _PTR,  # release (f64)
    _PTR,  # parent (i64)
    _PTR,  # ptime (f64)
    _PTR,  # num_children (i64)
    _I64,  # starve_init
    _PTR,  # start out (f64)
    _PTR,  # finish out (f64)
    _PTR,  # proc out (i64)
    ctypes.POINTER(MemtreeStats),
]

_MEMBOOKING_ARGTYPES = [
    _I64,  # n
    _I64,  # num_processors
    _F64,  # threshold
    _F64,  # tol
    _PTR,  # parent (i64)
    _PTR,  # fout (f64)
    _PTR,  # mem_needed (f64)
    _PTR,  # ptime (f64)
    _PTR,  # child_offsets (i64)
    _PTR,  # child_nodes (i64)
    _PTR,  # num_children (i64)
    _PTR,  # ao_rank (i64)
    _PTR,  # eo_rank (i64)
    _PTR,  # leaves (i64)
    _I64,  # num_leaves
    _I64,  # dispatch_to_candidates
    _I64,  # starve_init
    _PTR,  # start out (f64)
    _PTR,  # finish out (f64)
    _PTR,  # proc out (i64)
    ctypes.POINTER(MemtreeStats),
]


@dataclass(frozen=True)
class NativeKernels:
    """Loaded shared object with typed entry points."""

    path: Path
    activation_run: ctypes._CFuncPtr  # type: ignore[name-defined]
    membooking_run: ctypes._CFuncPtr  # type: ignore[name-defined]


def load_kernels(path: Path) -> NativeKernels:
    lib = ctypes.CDLL(str(path))
    abi = lib.memtree_abi_version
    abi.restype = ctypes.c_int64
    abi.argtypes = []
    version = abi()
    if version != ABI_VERSION:
        raise NativeBuildError(
            f"native kernel ABI mismatch: shared object reports {version}, "
            f"this build expects {ABI_VERSION}"
        )
    activation = lib.memtree_activation_run
    activation.restype = ctypes.c_int
    activation.argtypes = _ACTIVATION_ARGTYPES
    membooking = lib.memtree_membooking_run
    membooking.restype = ctypes.c_int
    membooking.argtypes = _MEMBOOKING_ARGTYPES
    return NativeKernels(path=path, activation_run=activation, membooking_run=membooking)
