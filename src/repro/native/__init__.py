"""Native kernel plane: compiled C twins of the ``@hot_kernel`` loops.

Mode resolution (checked at every acquisition, so tests can flip the
environment freely):

- ``REPRO_NATIVE=0``  -> OFF: never build or load, pure Python only.
- ``REPRO_NATIVE=1``  -> REQUIRED: build/load, raise on any failure
  (CI uses this to forbid silent fallbacks).
- unset / other      -> AUTO: try once per process, fall back silently
  to the Python kernels if no compiler is available.

Explicit per-call selection (``SweepConfig.native``, ``--native`` /
``--no-native``, ``scheduler.native``) overrides the environment: True
behaves like REQUIRED, False like OFF, None defers to the environment.
"""

from __future__ import annotations

import os

from .abi import NativeKernels, load_kernels
from .build import NativeBuildError, build_library
from .api import NativeOutcome, NativePlanes, simulate

__all__ = [
    "NativeBuildError",
    "NativeKernels",
    "NativeOutcome",
    "NativePlanes",
    "NativeUnavailableError",
    "native_kernels",
    "reset_native_cache",
    "simulate",
]


class NativeUnavailableError(RuntimeError):
    """Native kernels were explicitly required but could not be loaded."""


# Process-wide load state: None = not attempted, False = attempted and
# failed (AUTO mode caches the failure), NativeKernels = loaded.
_LOADED: NativeKernels | None | bool = None


def reset_native_cache() -> None:
    """Forget the process-wide load state (test helper)."""

    global _LOADED
    _LOADED = None


def _load() -> NativeKernels:
    global _LOADED
    if isinstance(_LOADED, NativeKernels):
        return _LOADED
    kernels = load_kernels(build_library())
    _LOADED = kernels
    return kernels


def native_kernels(explicit: bool | None = None) -> NativeKernels | None:
    """Resolve the native mode and return loaded kernels, or ``None``.

    ``explicit`` is the per-call override (config/CLI/scheduler attribute);
    ``None`` defers to ``REPRO_NATIVE``.  Returns ``None`` when native is
    off or (in AUTO mode) unavailable; raises
    :class:`NativeUnavailableError` when required but broken.
    """

    global _LOADED
    mode = explicit
    if mode is None:
        env = os.environ.get("REPRO_NATIVE")
        if env == "0":
            return None
        if env == "1":
            mode = True
    if mode is False:
        return None
    if mode is True:
        try:
            return _load()
        except (NativeBuildError, OSError) as exc:
            raise NativeUnavailableError(
                f"native kernels required (REPRO_NATIVE=1 or --native) but "
                f"unavailable: {exc}"
            ) from exc
    # AUTO: try once, remember a failure for the rest of the process.
    if _LOADED is False:
        return None
    try:
        return _load()
    except (NativeBuildError, OSError):
        _LOADED = False
        # The bottom rung of the kernel ladder: AUTO quietly continues on
        # the pure-Python kernels, but the health ledger records the drop.
        from ..resilience.health import current_health

        current_health().record_degradation("native->python")
        return None
