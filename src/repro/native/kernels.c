/* Compiled twins of the @hot_kernel event loops (repro.native).
 *
 * One full-run stepper per heuristic family: memtree_activation_run is the
 * EventDrivenScheduler loop specialised to ActivationScheduler (Algorithm 1
 * of the paper), memtree_membooking_run the MemBookingScheduler
 * specialisation (Algorithms 2-4 / Appendix B).  Each call simulates one
 * (tree, AO, EO, processors, memory limit) instance end to end over the
 * caller's contiguous SimWorkspace planes -- no callback crosses the ABI.
 *
 * Bit-identity contract (pinned by tests/test_native.py against both the
 * Python kernels and the frozen references):
 *
 *  - every float operation is the same IEEE double add/sub/compare the
 *    Python kernels perform, in the same order (no reassociation, no FMA --
 *    build with -ffp-contract=off);
 *  - all heaps pop in exact (key, node) lexicographic order; keys are
 *    unique per heap in this engine, so the pop sequence is the sorted
 *    sequence -- identical to CPython's heapq on the same pairs;
 *  - completions of one instant are delivered in ascending node order, the
 *    free-processor stack starts as [p-1 .. 0] (pop -> processor 0 first)
 *    and freed processors are pushed back in completion order;
 *  - ledger failure (over-release beyond tolerance) aborts the run with
 *    failure code 3 and the offending value; the Python wrapper raises the
 *    exact RuntimeError the scalar kernels raise.
 *
 * Diagnostics (peak_running / blocked / memory_bound / starve_min /
 * bound_need / orphans) are tracked with the exact semantics of the lane engine
 * (repro.batch.lanes._run_batch) so the batched backend's collapse
 * decisions are identical whichever implementation simulated a lane.  The
 * scalar engine ignores them.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define MEMTREE_ABI_VERSION 1
#define UNSCHEDULED (-1)
#define BBS_UNSET (-1.0)

/* Node states of the MemBooking bookkeeping (repro.schedulers.membooking). */
#define ST_UN 0
#define ST_CAND 1
#define ST_ACT 2
#define ST_RUN 3
#define ST_FN 4

/* Failure codes (stats->failure). */
#define FAIL_NONE 0
#define FAIL_T0 1
#define FAIL_DEADLOCK 2
#define FAIL_LEDGER 3

typedef struct {
    double clock;          /* last event instant (makespan when completed) */
    double peak_booked;    /* heuristic ledger peak (extras) */
    double ledger_value;   /* offending booked value when failure == 3 */
    double bound_need;     /* min ledger level a memory-bound stop needed
                              (INFINITY while never bound) */
    int64_t finished;      /* tasks completed */
    int64_t num_events;    /* t=0 event + one per completion */
    int64_t next_activation; /* Activation only: AO prefix position */
    int64_t failure;       /* FAIL_* code */
    int64_t peak_running;  /* lane diagnostics, lane-engine semantics */
    int64_t blocked;
    int64_t memory_bound;
    int64_t starve_min;
} memtree_stats;

int64_t memtree_abi_version(void) { return MEMTREE_ABI_VERSION; }

/* ------------------------------------------------------------------ */
/* (double key, node) min-heap: the completion-event queue.            */
/* ------------------------------------------------------------------ */
typedef struct {
    double *t;
    int64_t *n;
    int64_t size;
} evheap;

static void ev_push(evheap *h, double t, int64_t node) {
    int64_t i = h->size++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (h->t[p] < t || (h->t[p] == t && h->n[p] < node)) break;
        h->t[i] = h->t[p];
        h->n[i] = h->n[p];
        i = p;
    }
    h->t[i] = t;
    h->n[i] = node;
}

static int64_t ev_pop(evheap *h) {
    int64_t node = h->n[0];
    int64_t size = --h->size;
    double lt = h->t[size];
    int64_t ln = h->n[size];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= size) break;
        int64_t r = c + 1;
        if (r < size && (h->t[r] < h->t[c] || (h->t[r] == h->t[c] && h->n[r] < h->n[c]))) c = r;
        if (lt < h->t[c] || (lt == h->t[c] && ln < h->n[c])) break;
        h->t[i] = h->t[c];
        h->n[i] = h->n[c];
        i = c;
    }
    h->t[i] = lt;
    h->n[i] = ln;
    return node;
}

/* ------------------------------------------------------------------ */
/* (int64 key, node) min-heap: ready (EO rank) and CAND (AO rank).     */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t *k;
    int64_t *n;
    int64_t size;
} rkheap;

static void rk_push(rkheap *h, int64_t key, int64_t node) {
    int64_t i = h->size++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (h->k[p] < key || (h->k[p] == key && h->n[p] < node)) break;
        h->k[i] = h->k[p];
        h->n[i] = h->n[p];
        i = p;
    }
    h->k[i] = key;
    h->n[i] = node;
}

static int64_t rk_pop(rkheap *h) {
    int64_t node = h->n[0];
    int64_t size = --h->size;
    int64_t lk = h->k[size];
    int64_t ln = h->n[size];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= size) break;
        int64_t r = c + 1;
        if (r < size && (h->k[r] < h->k[c] || (h->k[r] == h->k[c] && h->n[r] < h->n[c]))) c = r;
        if (lk < h->k[c] || (lk == h->k[c] && ln < h->n[c])) break;
        h->k[i] = h->k[c];
        h->n[i] = h->n[c];
        i = c;
    }
    h->k[i] = lk;
    h->n[i] = ln;
    return node;
}

/* ------------------------------------------------------------------ */
/* Shared engine state: dispatch + diagnostics (lane-engine semantics) */
/* ------------------------------------------------------------------ */
typedef struct {
    const double *ptime;
    double *start;
    double *finish;
    int64_t *proc;
    int64_t *free_stack;
    int64_t free_sp;
    evheap events;
    rkheap ready;
    double clock;
    int64_t running;
    int64_t peak_running;
    int64_t blocked;
    int64_t starve_min;
    int64_t orphans;
} engine;

/* Start ready tasks on free processors (EO order).  on_started_state, when
 * non-NULL, receives ST_RUN per started node (the MemBooking hook). */
static void dispatch_ready(engine *e, uint8_t *on_started_state) {
    if (e->ready.size == 0) {
        if (e->orphans > 0 && e->running < e->starve_min) e->starve_min = e->running;
        return;
    }
    if (e->free_sp == 0) {
        e->blocked = 1;
        return;
    }
    double clk = e->clock;
    int64_t started = 0;
    while (e->free_sp > 0 && e->ready.size > 0) {
        int64_t node = rk_pop(&e->ready);
        if (on_started_state != NULL) on_started_state[node] = ST_RUN;
        int64_t p = e->free_stack[--e->free_sp];
        e->start[node] = clk;
        double f = clk + e->ptime[node];
        e->finish[node] = f;
        e->proc[node] = p;
        ev_push(&e->events, f, node);
        started++;
    }
    e->running += started;
    if (e->running > e->peak_running) e->peak_running = e->running;
    if (e->ready.size > 0) {
        if (e->free_sp == 0) e->blocked = 1;
    } else if (e->orphans > 0 && e->running < e->starve_min) {
        e->starve_min = e->running;
    }
}

static void engine_init(engine *e, int64_t num_processors, const double *ptime,
                        double *start, double *finish, int64_t *proc, int64_t n,
                        int64_t starve_init, int64_t num_leaves,
                        int64_t *free_stack, double *ev_t, int64_t *ev_n,
                        int64_t *rk_k, int64_t *rk_n) {
    e->ptime = ptime;
    e->start = start;
    e->finish = finish;
    e->proc = proc;
    e->free_stack = free_stack;
    for (int64_t i = 0; i < num_processors; i++) free_stack[i] = num_processors - 1 - i;
    e->free_sp = num_processors;
    e->events.t = ev_t;
    e->events.n = ev_n;
    e->events.size = 0;
    e->ready.k = rk_k;
    e->ready.n = rk_n;
    e->ready.size = 0;
    e->clock = 0.0;
    e->running = 0;
    e->peak_running = 0;
    e->blocked = 0;
    e->starve_min = starve_init;
    e->orphans = num_leaves;
    for (int64_t i = 0; i < n; i++) {
        start[i] = NAN;
        finish[i] = NAN;
        proc[i] = UNSCHEDULED;
    }
}

/* ================================================================== */
/* Activation (Algorithm 1)                                            */
/* ================================================================== */
typedef struct {
    engine eng;
    const double *req_ao;
    const int64_t *ao_seq;
    const int64_t *eo_rank;
    const double *release;
    const int64_t *parent;
    int64_t n;
    double threshold;
    double neg_tol;
    double booked;
    double peak;
    int64_t next;
    int64_t memory_bound;
    double bound_need;
    uint8_t *activated;
    int64_t *ch_not_fin;
} act_state;

/* UpdateCAND-ACT: the sequential ledger fold run_activation_scan performs
 * (its chunked cumsum is the same left-fold of IEEE additions). */
static void act_activate(act_state *s) {
    int64_t pos = s->next;
    int64_t n = s->n;
    if (pos >= n) return;
    double booked = s->booked;
    double peak = s->peak;
    double threshold = s->threshold;
    while (pos < n) {
        double grown = booked + s->req_ao[pos];
        if (grown > threshold) {
            s->memory_bound = 1;
            if (grown < s->bound_need) s->bound_need = grown;
            break;
        }
        booked = grown;
        if (booked > peak) peak = booked;
        int64_t node = s->ao_seq[pos];
        s->activated[node] = 1;
        if (s->ch_not_fin[node] == 0) rk_push(&s->eng.ready, s->eo_rank[node], node);
        pos++;
    }
    s->next = pos;
    s->booked = booked;
    s->peak = peak;
}

/* Returns 0, or FAIL_LEDGER (ledger underflow; *bad holds the value). */
static int64_t act_on_finished(act_state *s, const int64_t *nodes, int64_t count, double *bad) {
    double booked = s->booked;
    double neg_tol = s->neg_tol;
    for (int64_t k = 0; k < count; k++) {
        int64_t node = nodes[k];
        booked -= s->release[node];
        if (booked < 0.0) {
            if (booked < neg_tol) {
                *bad = booked;
                s->booked = booked;
                return FAIL_LEDGER;
            }
            booked = 0.0;
        }
        int64_t p = s->parent[node];
        if (p >= 0) {
            if (--s->ch_not_fin[p] == 0) {
                if (s->activated[p]) {
                    rk_push(&s->eng.ready, s->eo_rank[p], p);
                } else {
                    s->eng.orphans++;
                }
            }
        }
    }
    s->booked = booked;
    return 0;
}

int memtree_activation_run(
    int64_t n, int64_t num_processors, double threshold, double tol,
    const double *req_ao, const int64_t *ao_seq, const int64_t *eo_rank,
    const double *release, const int64_t *parent, const double *ptime,
    const int64_t *num_children, int64_t starve_init,
    double *start, double *finish, int64_t *proc, memtree_stats *stats) {
    memset(stats, 0, sizeof(*stats));
    int64_t num_leaves = 0;
    for (int64_t i = 0; i < n; i++) {
        if (num_children[i] == 0) num_leaves++;
    }
    size_t bytes = (size_t)n * sizeof(uint8_t)           /* activated */
                   + (size_t)(4 * n + 1 + num_processors + n) * sizeof(int64_t)
                   + (size_t)n * sizeof(double);
    uint8_t *arena = (uint8_t *)malloc(bytes ? bytes : 1);
    if (arena == NULL) return -1;
    uint8_t *cursor = arena;
    double *ev_t = (double *)cursor;
    cursor += (size_t)n * sizeof(double);
    int64_t *i64 = (int64_t *)cursor;
    int64_t *ev_n = i64;
    int64_t *rk_k = ev_n + n;
    int64_t *rk_n = rk_k + n;
    int64_t *ch_not_fin = rk_n + n;
    int64_t *finished_now = ch_not_fin + n;
    int64_t *free_stack = finished_now + n + 1;
    uint8_t *activated = (uint8_t *)(free_stack + num_processors);
    memcpy(ch_not_fin, num_children, (size_t)n * sizeof(int64_t));
    memset(activated, 0, (size_t)n);

    act_state s;
    engine_init(&s.eng, num_processors, ptime, start, finish, proc, n,
                starve_init, num_leaves, free_stack, ev_t, ev_n, rk_k, rk_n);
    s.req_ao = req_ao;
    s.ao_seq = ao_seq;
    s.eo_rank = eo_rank;
    s.release = release;
    s.parent = parent;
    s.n = n;
    s.threshold = threshold;
    s.neg_tol = -tol;
    s.booked = 0.0;
    s.peak = 0.0;
    s.next = 0;
    s.memory_bound = 0;
    s.bound_need = INFINITY;
    s.activated = activated;
    s.ch_not_fin = ch_not_fin;

    int64_t finished = 0;
    int64_t num_events = 0;
    int64_t failure = FAIL_NONE;
    double bad = 0.0;

    /* t = 0 event */
    act_activate(&s);
    s.eng.orphans -= s.eng.ready.size; /* ready-pushes consumed orphans */
    dispatch_ready(&s.eng, NULL);
    num_events = 1;
    if (s.eng.running == 0 && finished < n) failure = FAIL_T0;

    while (failure == FAIL_NONE && s.eng.events.size > 0) {
        double clock = s.eng.events.t[0];
        s.eng.clock = clock;
        int64_t count = 0;
        while (s.eng.events.size > 0 && s.eng.events.t[0] == clock) {
            finished_now[count++] = ev_pop(&s.eng.events);
        }
        s.eng.running -= count;
        finished += count;
        num_events += count;
        for (int64_t k = 0; k < count; k++) {
            s.eng.free_stack[s.eng.free_sp++] = proc[finished_now[k]];
        }
        failure = act_on_finished(&s, finished_now, count, &bad);
        if (failure != FAIL_NONE) break;
        int64_t pool = s.eng.ready.size;
        act_activate(&s);
        s.eng.orphans -= s.eng.ready.size - pool;
        dispatch_ready(&s.eng, NULL);
        if (s.eng.running == 0 && finished < n) failure = FAIL_DEADLOCK;
    }

    stats->clock = s.eng.clock;
    stats->peak_booked = s.peak;
    stats->ledger_value = bad;
    stats->finished = finished;
    stats->num_events = num_events;
    stats->next_activation = s.next;
    stats->failure = failure;
    stats->peak_running = s.eng.peak_running;
    stats->blocked = s.eng.blocked;
    stats->memory_bound = s.memory_bound;
    stats->starve_min = s.eng.starve_min;
    stats->bound_need = s.bound_need;
    free(arena);
    return 0;
}

/* ================================================================== */
/* MemBooking (Algorithms 2-4 / Appendix B, optimised structures)      */
/* ================================================================== */
typedef struct {
    engine eng;
    const int64_t *parent;
    const double *fout;
    const double *mem_needed;
    const int64_t *offsets;
    const int64_t *child_nodes;
    const int64_t *ao_rank;
    const int64_t *eo_rank;
    double threshold;
    double tol;
    double mbooked;
    double peak;
    int64_t memory_bound;
    double bound_need;
    int64_t dispatch_to_candidates;
    double *booked;
    double *bbs;
    uint8_t *state;
    int64_t *ch_not_act;
    int64_t *ch_not_fin;
    rkheap cand;
} mb_state;

/* Lazy-deletion peek over the AO-rank candidate heap. */
static int64_t mb_peek_candidate(mb_state *s) {
    while (s->cand.size > 0) {
        int64_t node = s->cand.n[0];
        if (s->state[node] == ST_CAND) return node;
        rk_pop(&s->cand); /* stale entry of an already-activated node */
    }
    return -1;
}

/* UpdateCAND-ACT (run_membooking_activation with the heap structure). */
static void mb_activate(mb_state *s) {
    double mbooked = s->mbooked;
    double peak = s->peak;
    for (;;) {
        int64_t node = mb_peek_candidate(s);
        if (node < 0) break;
        double subtree;
        if (s->dispatch_to_candidates) {
            if (s->bbs[node] == BBS_UNSET) {
                double total = 0.0;
                for (int64_t k = s->offsets[node]; k < s->offsets[node + 1]; k++) {
                    total += s->bbs[s->child_nodes[k]];
                }
                s->bbs[node] = s->booked[node] + total;
            }
            subtree = s->bbs[node];
        } else {
            double total = 0.0;
            for (int64_t k = s->offsets[node]; k < s->offsets[node + 1]; k++) {
                total += s->bbs[s->child_nodes[k]];
            }
            subtree = s->booked[node] + total;
        }
        double missing = s->mem_needed[node] - subtree;
        if (missing < 0.0) missing = 0.0;
        if (mbooked + missing > s->threshold) {
            s->memory_bound = 1;
            double need = mbooked + missing;
            if (need < s->bound_need) s->bound_need = need;
            break; /* wait for more memory; activation keeps following AO */
        }
        mbooked += missing;
        if (mbooked > peak) peak = mbooked;
        s->booked[node] += missing;
        double total = 0.0;
        for (int64_t k = s->offsets[node]; k < s->offsets[node + 1]; k++) {
            total += s->bbs[s->child_nodes[k]];
        }
        s->bbs[node] = s->booked[node] + total;
        s->state[node] = ST_ACT; /* invalidates the lazy heap entry */
        if (s->ch_not_fin[node] == 0) rk_push(&s->eng.ready, s->eo_rank[node], node);
        int64_t p = s->parent[node];
        if (p >= 0) {
            if (--s->ch_not_act[p] == 0) {
                s->state[p] = ST_CAND;
                rk_push(&s->cand, s->ao_rank[p], p);
            }
        }
    }
    s->mbooked = mbooked;
    s->peak = peak;
}

/* DispatchMemory (Algorithm 3 / 6): release j, re-book ALAP up the chain.
 * Returns 0 or FAIL_LEDGER (*bad holds the offending value). */
static int64_t mb_dispatch_memory(mb_state *s, int64_t j, double *bad) {
    double amount = s->booked[j];
    s->booked[j] = 0.0;
    double mbooked = s->mbooked - amount;
    if (mbooked < 0.0) {
        if (mbooked < -s->tol) {
            *bad = mbooked;
            s->mbooked = mbooked;
            return FAIL_LEDGER;
        }
        mbooked = 0.0;
    }
    s->bbs[j] = 0.0;
    int64_t i = s->parent[j];
    if (i < 0) {
        s->mbooked = mbooked;
        return 0;
    }
    double peak = s->peak;
    double fj = s->fout[j];
    s->booked[i] += fj;
    mbooked += fj; /* unenforced book (the freed amount covers it) */
    if (mbooked > peak) peak = mbooked;
    amount -= fj;
    if (s->dispatch_to_candidates) {
        while (i >= 0 && amount > 1e-12 && s->bbs[i] != BBS_UNSET) {
            double cap = s->mem_needed[i] - (s->bbs[i] - amount);
            if (cap < 0.0) cap = 0.0;
            double contribution = amount < cap ? amount : cap;
            if (contribution > 0.0) {
                s->booked[i] += contribution;
                mbooked += contribution;
                if (mbooked > peak) peak = mbooked;
            }
            s->bbs[i] -= amount - contribution;
            amount -= contribution;
            i = s->parent[i];
        }
    } else {
        while (i >= 0 && amount > 1e-12 && (s->state[i] == ST_ACT || s->state[i] == ST_RUN)) {
            double cap = s->mem_needed[i] - (s->bbs[i] - amount);
            if (cap < 0.0) cap = 0.0;
            double contribution = amount < cap ? amount : cap;
            if (contribution > 0.0) {
                s->booked[i] += contribution;
                mbooked += contribution;
                if (mbooked > peak) peak = mbooked;
            }
            s->bbs[i] -= amount - contribution;
            amount -= contribution;
            i = s->parent[i];
        }
    }
    s->mbooked = mbooked;
    s->peak = peak;
    return 0;
}

static int64_t mb_on_finished(mb_state *s, const int64_t *nodes, int64_t count, double *bad) {
    for (int64_t k = 0; k < count; k++) {
        int64_t node = nodes[k];
        s->state[node] = ST_FN;
        int64_t failure = mb_dispatch_memory(s, node, bad);
        if (failure != 0) return failure;
        int64_t p = s->parent[node];
        if (p >= 0) {
            if (--s->ch_not_fin[p] == 0) {
                if (s->state[p] == ST_ACT) {
                    rk_push(&s->eng.ready, s->eo_rank[p], p);
                } else {
                    s->eng.orphans++;
                }
            }
        }
    }
    return 0;
}

int memtree_membooking_run(
    int64_t n, int64_t num_processors, double threshold, double tol,
    const int64_t *parent, const double *fout, const double *mem_needed,
    const double *ptime, const int64_t *child_offsets, const int64_t *child_nodes,
    const int64_t *num_children, const int64_t *ao_rank, const int64_t *eo_rank,
    const int64_t *leaves, int64_t num_leaves, int64_t dispatch_to_candidates,
    int64_t starve_init,
    double *start, double *finish, int64_t *proc, memtree_stats *stats) {
    memset(stats, 0, sizeof(*stats));
    size_t bytes = (size_t)(3 * n) * sizeof(double)       /* booked, bbs, ev_t */
                   + (size_t)(8 * n + 1 + num_processors) * sizeof(int64_t)
                   + (size_t)n * sizeof(uint8_t);          /* state */
    uint8_t *arena = (uint8_t *)malloc(bytes ? bytes : 1);
    if (arena == NULL) return -1;
    uint8_t *cursor = arena;
    double *booked = (double *)cursor;
    double *bbs = booked + n;
    double *ev_t = bbs + n;
    int64_t *i64 = (int64_t *)(ev_t + n);
    int64_t *ev_n = i64;
    int64_t *rk_k = ev_n + n;
    int64_t *rk_n = rk_k + n;
    int64_t *cand_k = rk_n + n;
    int64_t *cand_n = cand_k + n;
    int64_t *ch_not_act = cand_n + n;
    int64_t *ch_not_fin = ch_not_act + n;
    int64_t *finished_now = ch_not_fin + n;
    int64_t *free_stack = finished_now + n + 1;
    uint8_t *state = (uint8_t *)(free_stack + num_processors);
    for (int64_t i = 0; i < n; i++) {
        booked[i] = 0.0;
        bbs[i] = BBS_UNSET;
    }
    memset(state, ST_UN, (size_t)n);
    memcpy(ch_not_act, num_children, (size_t)n * sizeof(int64_t));
    memcpy(ch_not_fin, num_children, (size_t)n * sizeof(int64_t));

    mb_state s;
    engine_init(&s.eng, num_processors, ptime, start, finish, proc, n,
                starve_init, num_leaves, free_stack, ev_t, ev_n, rk_k, rk_n);
    s.parent = parent;
    s.fout = fout;
    s.mem_needed = mem_needed;
    s.offsets = child_offsets;
    s.child_nodes = child_nodes;
    s.ao_rank = ao_rank;
    s.eo_rank = eo_rank;
    s.threshold = threshold;
    s.tol = tol;
    s.mbooked = 0.0;
    s.peak = 0.0;
    s.memory_bound = 0;
    s.bound_need = INFINITY;
    s.dispatch_to_candidates = dispatch_to_candidates;
    s.booked = booked;
    s.bbs = bbs;
    s.state = state;
    s.ch_not_act = ch_not_act;
    s.ch_not_fin = ch_not_fin;
    s.cand.k = cand_k;
    s.cand.n = cand_n;
    s.cand.size = 0;
    for (int64_t k = 0; k < num_leaves; k++) {
        int64_t leaf = leaves[k];
        state[leaf] = ST_CAND;
        rk_push(&s.cand, ao_rank[leaf], leaf);
    }

    int64_t finished = 0;
    int64_t num_events = 0;
    int64_t failure = FAIL_NONE;
    double bad = 0.0;

    /* t = 0 event */
    mb_activate(&s);
    s.eng.orphans -= s.eng.ready.size;
    dispatch_ready(&s.eng, state);
    num_events = 1;
    if (s.eng.running == 0 && finished < n) failure = FAIL_T0;

    while (failure == FAIL_NONE && s.eng.events.size > 0) {
        double clock = s.eng.events.t[0];
        s.eng.clock = clock;
        int64_t count = 0;
        while (s.eng.events.size > 0 && s.eng.events.t[0] == clock) {
            finished_now[count++] = ev_pop(&s.eng.events);
        }
        s.eng.running -= count;
        finished += count;
        num_events += count;
        for (int64_t k = 0; k < count; k++) {
            s.eng.free_stack[s.eng.free_sp++] = proc[finished_now[k]];
        }
        failure = mb_on_finished(&s, finished_now, count, &bad);
        if (failure != FAIL_NONE) break;
        int64_t pool = s.eng.ready.size;
        mb_activate(&s);
        s.eng.orphans -= s.eng.ready.size - pool;
        dispatch_ready(&s.eng, state);
        if (s.eng.running == 0 && finished < n) failure = FAIL_DEADLOCK;
    }

    stats->clock = s.eng.clock;
    stats->peak_booked = s.peak;
    stats->ledger_value = bad;
    stats->finished = finished;
    stats->num_events = num_events;
    stats->next_activation = 0;
    stats->failure = failure;
    stats->peak_running = s.eng.peak_running;
    stats->blocked = s.eng.blocked;
    stats->memory_bound = s.memory_bound;
    stats->starve_min = s.eng.starve_min;
    stats->bound_need = s.bound_need;
    free(arena);
    return 0;
}
