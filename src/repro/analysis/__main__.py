"""``python -m repro.analysis`` — run the kernel contract analyzer."""

from __future__ import annotations

import sys

from .report import main

if __name__ == "__main__":
    sys.exit(main())
