"""Anti-drift rule (AD301): one implementation of the transition rules.

PR 5's collapse-provenance bug happened because a second, slightly
different copy of a state transition lived in the batch path and the parity
fuzz only caught it late.  The structural fix was routing scalar and lane
engines through the *same* transition kernels; this rule keeps it that way
statically: inside the policed modules
(:data:`repro.analysis.contracts.DRIFT_MODULE_SUFFIXES`), a subscript store
into a protected state plane (``activated[j] = True``,
``self._state[node] = CAND``, ``booked[lane] += need`` …) is only legal
inside a def registered ``@hot_kernel`` or ``@plane_mutator`` — anywhere
else it is a reimplementation and a finding.

``schedulers/reference.py`` is not policed: it is the frozen pre-array
oracle and *supposed* to carry its own naive implementation.

The waiver token is ``# kernel-ok: plane-mutation``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .contracts import DRIFT_MODULE_SUFFIXES, STATE_PLANE_NAMES
from .rules import Finding, SourceFile, subscript_base_name

__all__ = ["check_anti_drift"]

_CATEGORY = "anti-drift"


def _allowed_spans(module: SourceFile) -> list[tuple[int, int]]:
    """Line spans of registered defs (mutations inside them are legal)."""
    spans: list[tuple[int, int]] = []
    for registered in module.registered:
        node = registered.node
        end = getattr(node, "end_lineno", node.lineno)
        spans.append((node.lineno, end or node.lineno))
    return spans


def _in_spans(line: int, spans: list[tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in spans)


def _store_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def check_anti_drift(module: SourceFile) -> Iterable[Finding]:
    if not any(module.matches(suffix) for suffix in DRIFT_MODULE_SUFFIXES):
        return []
    spans = _allowed_spans(module)
    parents = module.parent_map()
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            continue
        for target in _store_targets(node):
            if not isinstance(target, ast.Subscript):
                continue
            base = subscript_base_name(target)
            if base is None or base not in STATE_PLANE_NAMES:
                continue
            if _in_spans(target.lineno, spans):
                continue
            findings.append(
                module.finding(
                    "AD301",
                    _CATEGORY,
                    target,
                    module.scope_of(node, parents),
                    f"state plane {base!r} mutated outside a registered "
                    "kernel/plane-mutator (reimplemented transition rule?)",
                )
            )
    return findings
