"""Report rendering, baseline handling and the ``memtree lint`` entry point.

Output modes:

* human text (default): one line per finding, ``location RULE [scope]
  message``, waived/baselined findings annotated, summary line at the end;
* ``--json PATH``: machine-readable report (schema below), uploaded as a CI
  artifact;
* ``--baseline PATH``: a committed JSON file of finding fingerprints that
  are *accepted* — matching findings are reported but do not fail the run;
  ``--write-baseline`` regenerates it from the current findings.

Exit status: 0 when every finding is waived or baselined, 1 otherwise —
so CI gates on *new* findings only.

JSON schema (version 1)::

    {"version": 1, "tool": "repro.analysis", "counts": {"total": N,
     "waived": N, "baselined": N, "failing": N},
     "findings": [{"rule", "category", "path", "line", "col", "scope",
                   "message", "waived", "baselined", "fingerprint"}, ...]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .rules import Finding, analyze_paths, apply_baseline, failing

__all__ = [
    "build_parser",
    "load_baseline",
    "main",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]

_BASELINE_VERSION = 1
_REPORT_VERSION = 1


def render_json(findings: Sequence[Finding]) -> dict:
    return {
        "version": _REPORT_VERSION,
        "tool": "repro.analysis",
        "counts": {
            "total": len(findings),
            "waived": sum(f.waived for f in findings),
            "baselined": sum(f.baselined for f in findings),
            "failing": len(failing(findings)),
        },
        "findings": [
            {
                "rule": f.rule,
                "category": f.category,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "scope": f.scope,
                "message": f.message,
                "waived": f.waived,
                "baselined": f.baselined,
                "fingerprint": f.fingerprint(),
            }
            for f in findings
        ],
    }


def render_text(findings: Sequence[Finding]) -> str:
    lines: list[str] = []
    for f in findings:
        status = ""
        if f.waived:
            status = "  [waived]"
        elif f.baselined:
            status = "  [baselined]"
        lines.append(f"{f.location()}: {f.rule} [{f.scope}] {f.message}{status}")
    new = len(failing(findings))
    lines.append(
        f"{len(findings)} finding(s): {new} new, "
        f"{sum(f.waived for f in findings)} waived, "
        f"{sum(f.baselined for f in findings)} baselined"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def load_baseline(path: Path) -> set[str]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != _BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}")
    return set(payload.get("fingerprints", []))


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Record every non-waived finding as accepted."""
    fingerprints = sorted({f.fingerprint() for f in findings if not f.waived})
    payload = {"version": _BASELINE_VERSION, "fingerprints": fingerprints}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def build_parser(prog: str = "python -m repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static kernel-contract analyzer: compilable-subset purity, "
            "plane dtype contracts, scalar/lane anti-drift."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--json", type=Path, metavar="PATH", help="write the JSON report to PATH"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="PATH",
        help="committed baseline of accepted finding fingerprints",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only the summary line"
    )
    return parser


def run_lint(args: argparse.Namespace) -> int:
    """Shared implementation behind ``memtree lint`` and ``-m repro.analysis``."""
    if args.paths:
        paths = list(args.paths)
    else:
        import repro

        paths = [Path(repro.__file__).parent]

    findings = analyze_paths(paths)

    if args.write_baseline:
        if args.baseline is None:
            print("--write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        write_baseline(args.baseline, findings)
        print(
            f"baseline written to {args.baseline} "
            f"({sum(not f.waived for f in findings)} fingerprint(s))"
        )
        return 0

    if args.baseline is not None and Path(args.baseline).exists():
        findings = apply_baseline(findings, load_baseline(args.baseline))

    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(render_json(findings), indent=2) + "\n", encoding="utf-8"
        )

    text = render_text(findings)
    if args.quiet:
        print(text.rsplit("\n", 1)[-1])
    else:
        print(text)
    return 1 if failing(findings) else 0


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = build_parser()
    return run_lint(parser.parse_args(argv))
