"""Rule engine of the kernel contract analyzer.

The engine is a pure AST/`symtable` pass — target modules are **never
imported** — organised as:

* :class:`SourceFile` — one parsed module: source, AST, qualname map (every
  def/class gets its runtime ``__qualname__``, including the ``<locals>``
  segments), decorated-kernel discovery and the ``# kernel-ok:`` waiver map;
* :class:`Finding` — one diagnostic, with a stable :meth:`fingerprint` used
  by the committed baseline (no line numbers, so unrelated edits do not
  churn the baseline);
* :func:`analyze_paths` / :func:`analyze_package` — collect files, run the
  three rule families (:mod:`.kernel_rules`, :mod:`.plane_rules`,
  :mod:`.drift_rules`), mark waivers, return sorted findings.

Waivers: a finding is *waived* when the offending line or the line directly
above carries ``# kernel-ok: <token>`` naming the rule id or its token from
:data:`repro.analysis.contracts.WAIVER_TOKENS` (comma-separated tokens, a
free-text justification may follow in parentheses).  Waived findings stay in
the report (machine-readable accountability) but never fail the run.
"""

from __future__ import annotations

import ast
import hashlib
import re
import symtable
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from .contracts import OBJECT_DTYPE_NAMES, WAIVER_TOKENS

__all__ = [
    "Finding",
    "SourceFile",
    "analyze_package",
    "analyze_paths",
    "collect_files",
    "dtype_from_node",
    "is_object_dtype_node",
    "np_constructor_name",
]

#: Decorator spellings that register a function with the analyzer.
_KERNEL_DECORATORS = frozenset({"hot_kernel"})
_MUTATOR_DECORATORS = frozenset({"plane_mutator"})

_WAIVER_RE = re.compile(r"#\s*kernel-ok:\s*([^#]*)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str  #: rule id, e.g. ``"KP106"``
    category: str  #: ``kernel-purity`` / ``plane-contract`` / ``anti-drift``
    path: str  #: file path as scanned (kept verbatim in reports)
    line: int
    col: int
    scope: str  #: enclosing qualname, ``"<module>"`` at module level
    message: str
    waived: bool = False
    baselined: bool = False

    def fingerprint(self) -> str:
        """Stable identity for baselines: rule + file name + scope + message.

        Line/column are excluded on purpose — inserting a docstring above a
        known finding must not invalidate a committed baseline entry.
        """
        digest = hashlib.sha256(self.message.encode("utf-8")).hexdigest()[:12]
        return f"{self.rule}:{Path(self.path).name}:{self.scope}:{digest}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def _decorator_name(node: ast.expr) -> str | None:
    """The terminal name of a decorator expression (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass
class RegisteredDef:
    """A def carrying one of the registration decorators."""

    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    qualname: str
    kind: str  #: ``"kernel"`` or ``"mutator"``


@dataclass
class SourceFile:
    """One parsed module plus the derived maps every rule family shares."""

    path: Path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: node -> runtime-style qualname for every def/class in the module.
    qualnames: dict[ast.AST, str] = field(default_factory=dict)
    #: line number -> waiver tokens found on that line.
    waivers: dict[int, set[str]] = field(default_factory=dict)
    registered: list[RegisteredDef] = field(default_factory=list)
    _symtable: "symtable.SymbolTable | None" = None

    @classmethod
    def parse(cls, path: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        module = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        module._build_qualnames()
        module._collect_waivers()
        module._collect_registered()
        return module

    # ------------------------------------------------------------------ #
    # derived maps
    # ------------------------------------------------------------------ #
    def _build_qualnames(self) -> None:
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = prefix + child.name
                    self.qualnames[child] = qual
                    visit(child, qual + ".<locals>.")
                elif isinstance(child, ast.ClassDef):
                    qual = prefix + child.name
                    self.qualnames[child] = qual
                    visit(child, qual + ".")
                else:
                    visit(child, prefix)

        visit(self.tree, "")

    def _collect_waivers(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = _WAIVER_RE.search(line)
            if match is None:
                continue
            tokens: set[str] = set()
            for raw in match.group(1).split(","):
                token = raw.strip()
                if not token:
                    continue
                # Drop any free-text justification after the token itself.
                tokens.add(token.split()[0].rstrip(":;.").lower())
            if tokens:
                self.waivers[number] = tokens

    def _collect_registered(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                name = _decorator_name(decorator)
                if name in _KERNEL_DECORATORS:
                    kind = "kernel"
                elif name in _MUTATOR_DECORATORS:
                    kind = "mutator"
                else:
                    continue
                self.registered.append(
                    RegisteredDef(node=node, qualname=self.qualnames[node], kind=kind)
                )
                break

    # ------------------------------------------------------------------ #
    # helpers used by the rule families
    # ------------------------------------------------------------------ #
    def rel_suffix(self) -> str:
        """Posix-style path used for contract matching (suffix semantics)."""
        return self.path.as_posix()

    def matches(self, suffix: str) -> bool:
        return self.rel_suffix().endswith(suffix)

    def scope_of(self, node: ast.AST, parents: "dict[ast.AST, ast.AST] | None" = None) -> str:
        """Qualname of the innermost def/class enclosing ``node``."""
        if parents is None:
            parents = self.parent_map()
        current = parents.get(node)
        while current is not None:
            qual = self.qualnames.get(current)
            if qual is not None:
                return qual
            current = parents.get(current)
        return "<module>"

    _parents: "dict[ast.AST, ast.AST] | None" = None

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents

    def symbol_table(self) -> symtable.SymbolTable:
        if self._symtable is None:
            self._symtable = symtable.symtable(self.source, str(self.path), "exec")
        return self._symtable

    def waived(self, rule: str, line: int) -> bool:
        accepted = {rule.lower()}
        token = WAIVER_TOKENS.get(rule)
        if token is not None:
            accepted.add(token.lower())
        for candidate in (line, line - 1):
            tokens = self.waivers.get(candidate)
            if tokens and tokens & accepted:
                return True
        return False

    def finding(
        self, rule: str, category: str, node: ast.AST, scope: str, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            category=category,
            path=str(self.path),
            line=line,
            col=col,
            scope=scope,
            message=message,
            waived=self.waived(rule, line),
        )


# --------------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------------- #
def np_constructor_name(node: ast.AST) -> str | None:
    """``"empty"`` for ``np.empty(...)``-style calls, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


#: np attributes :func:`dtype_from_node` resolves (a safelist — the analyzer
#: never evaluates arbitrary expressions).
_NP_DTYPE_ATTRS = frozenset(
    {
        "float16",
        "float32",
        "float64",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "bool_",
        "object_",
    }
)

_BUILTIN_DTYPE_NAMES = {"float": float, "int": int, "bool": bool, "object": object}


def dtype_from_node(node: "ast.expr | None") -> "np.dtype | None":
    """Statically resolve a dtype expression, ``None`` when not literal."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return np.dtype(node.value)
        except TypeError:
            return None
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
        and node.attr in _NP_DTYPE_ATTRS
    ):
        return np.dtype(getattr(np, node.attr))
    if isinstance(node, ast.Name) and node.id in _BUILTIN_DTYPE_NAMES:
        return np.dtype(_BUILTIN_DTYPE_NAMES[node.id])
    return None


def is_object_dtype_node(node: "ast.expr | None") -> bool:
    """True when a dtype expression unambiguously spells the object dtype."""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in OBJECT_DTYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in OBJECT_DTYPE_NAMES
    if isinstance(node, ast.Name):
        return node.id in OBJECT_DTYPE_NAMES
    return False


def call_keyword(node: ast.Call, name: str) -> "ast.expr | None":
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def subscript_base_name(node: ast.expr) -> str | None:
    """Innermost name of a subscript target: ``self._bbs[i][j]`` -> ``_bbs``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# --------------------------------------------------------------------------- #
# collection and entry points
# --------------------------------------------------------------------------- #
def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                seen.setdefault(child, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
        else:
            raise ValueError(f"not a Python file or directory: {path}")
    return sorted(seen)


RuleFamily = Callable[[SourceFile], Iterable[Finding]]


def _families() -> tuple[RuleFamily, ...]:
    # Imported here (not at module top) so the engine module has no import
    # cycle with the families, which import the helpers above.
    from .drift_rules import check_anti_drift
    from .kernel_rules import check_kernel_purity
    from .plane_rules import check_plane_contracts

    return (check_kernel_purity, check_plane_contracts, check_anti_drift)


def analyze_paths(paths: Sequence[Path]) -> list[Finding]:
    """Run every rule family over ``paths`` (files or directories)."""
    findings: list[Finding] = []
    families = _families()
    for file_path in collect_files(paths):
        try:
            module = SourceFile.parse(file_path)
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="AN000",
                    category="analyzer",
                    path=str(file_path),
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    scope="<module>",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        for family in families:
            findings.extend(family(module))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_package() -> list[Finding]:
    """Analyze the installed ``repro`` package tree (the CI target)."""
    import repro

    return analyze_paths([Path(repro.__file__).parent])


def iter_registered(paths: Sequence[Path]) -> Iterator[tuple[SourceFile, RegisteredDef]]:
    """Every decorated def under ``paths`` (used by the meta-test)."""
    for file_path in collect_files(paths):
        module = SourceFile.parse(file_path)
        for registered in module.registered:
            yield module, registered


def apply_baseline(findings: Sequence[Finding], fingerprints: "set[str]") -> list[Finding]:
    """Mark findings whose fingerprint is baselined; returns a new list."""
    return [
        replace(finding, baselined=finding.fingerprint() in fingerprints)
        for finding in findings
    ]


def failing(findings: Iterable[Finding]) -> list[Finding]:
    """The findings that should fail a gated run (not waived, not baselined)."""
    return [f for f in findings if not f.waived and not f.baselined]
