"""Kernel-purity rules (KP1xx): the compilable kernel subset.

Every def decorated ``@hot_kernel`` is checked against the restricted
Python the planned compiled stepper (ROADMAP direction 1) can port
one-to-one.  ``@plane_mutator`` defs are exempt — they may touch state
planes but are not hot-path code.

========  ==================================================================
KP101     ``dict``/``set`` creation (literals, comprehensions, constructor
          calls): hash-based containers have no compiled equivalent in the
          kernel plane and box their contents.
KP102     object-dtype arrays (``dtype=object`` in any spelling): every
          element is a boxed PyObject.
KP103     ``try``/``except``/``finally``: the compiled stepper has no
          exception machinery; kernels signal failure through sentinel
          values (e.g. ``ScheduleResult.completed``).
KP104     generators / ``yield`` / ``await``: kernels must be plain calls
          with materialised outputs.
KP105     ``**kwargs`` in the kernel signature: compiled entry points take
          a fixed argument plane.
KP106     array/list allocations inside ``for``/``while`` loop bodies
          (``np.empty``-family calls, list literals/comprehensions,
          ``list()``/``bytearray()`` calls, list ``+``/``*``): the compiled
          port pre-allocates every buffer.  Comprehensions *at* statement
          level are setup idiom and allowed; the same comprehension inside
          a loop body is a per-iteration allocation and flagged.
KP107     nested defs/lambdas that close over enclosing-scope variables
          (free variables or ``nonlocal``): closure cells do not port.
          Parameter-default binding (``def f(x, plane=plane)``) is the
          sanctioned alternative and is not flagged.
========  ==================================================================

Any rule is waivable in place with ``# kernel-ok: <token>`` (see
:data:`repro.analysis.contracts.WAIVER_TOKENS`).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .contracts import ALLOCATING_CONSTRUCTORS
from .rules import (
    Finding,
    SourceFile,
    call_keyword,
    is_object_dtype_node,
    np_constructor_name,
)

__all__ = ["check_kernel_purity"]

_CATEGORY = "kernel-purity"

#: Builtin/collections constructor names whose call creates a hash container.
_HASH_CONTAINER_CALLS = frozenset(
    {"dict", "set", "frozenset", "defaultdict", "OrderedDict", "Counter"}
)

#: Calls that allocate a fresh sequence buffer (KP106, loop context only).
_SEQUENCE_ALLOC_CALLS = frozenset({"list", "bytearray"})


def _plain_call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _object_dtype_site(node: ast.Call) -> ast.expr | None:
    """The dtype expression of ``node`` when it spells the object dtype."""
    candidates: list[ast.expr] = []
    keyword = call_keyword(node, "dtype")
    if keyword is not None:
        candidates.append(keyword)
    constructor = np_constructor_name(node)
    if constructor in ALLOCATING_CONSTRUCTORS and len(node.args) >= 2:
        candidates.append(node.args[1])
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "astype"
        and node.args
    ):
        candidates.append(node.args[0])
    for candidate in candidates:
        if is_object_dtype_node(candidate):
            return candidate
    return None


class _KernelVisitor(ast.NodeVisitor):
    """Walks one registered kernel body, tracking loop context."""

    def __init__(self, module: SourceFile, qualname: str) -> None:
        self.module = module
        self.qualname = qualname
        self.findings: list[Finding] = []
        self.loop_depth = 0

    # -- reporting ------------------------------------------------------ #
    def report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.module.finding(rule, _CATEGORY, node, self.qualname, message)
        )

    # -- containers / dtypes (any position in the kernel) --------------- #
    def visit_Dict(self, node: ast.Dict) -> None:
        self.report("KP101", node, "dict literal in kernel body")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self.report("KP101", node, "set literal in kernel body")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.report("KP101", node, "dict comprehension in kernel body")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.report("KP101", node, "set comprehension in kernel body")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _plain_call_name(node)
        if isinstance(node.func, ast.Name) and name in _HASH_CONTAINER_CALLS:
            self.report("KP101", node, f"{name}() construction in kernel body")
        dtype_site = _object_dtype_site(node)
        if dtype_site is not None:
            self.report("KP102", dtype_site, "object-dtype array in kernel body")
        if self.loop_depth > 0:
            constructor = np_constructor_name(node)
            if constructor in ALLOCATING_CONSTRUCTORS:
                self.report(
                    "KP106",
                    node,
                    f"np.{constructor}(...) allocates inside a kernel loop body",
                )
            elif isinstance(node.func, ast.Name) and name in _SEQUENCE_ALLOC_CALLS:
                self.report(
                    "KP106", node, f"{name}() allocates inside a kernel loop body"
                )
        self.generic_visit(node)

    # -- statements ------------------------------------------------------ #
    def visit_Try(self, node: ast.Try) -> None:
        self.report("KP103", node, "try/except in kernel body")
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self.report("KP104", node, "yield in kernel body (generator)")
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.report("KP104", node, "yield from in kernel body (generator)")
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        self.report("KP104", node, "await in kernel body")
        self.generic_visit(node)

    # -- loops ----------------------------------------------------------- #
    def _visit_loop(self, node: "ast.For | ast.While") -> None:
        # The iterable / condition is evaluated once (for) or is hot anyway
        # (while) — only the *body* gains loop context.
        if isinstance(node, ast.For):
            self.visit(node.target)
            self.visit(node.iter)
        else:
            self.visit(node.test)
        self.loop_depth += 1
        for statement in node.body:
            self.visit(statement)
        self.loop_depth -= 1
        for statement in node.orelse:
            self.visit(statement)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- loop-context allocations ---------------------------------------- #
    def visit_List(self, node: ast.List) -> None:
        if self.loop_depth > 0:
            self.report("KP106", node, "list literal allocates inside a kernel loop body")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if self.loop_depth > 0:
            self.report(
                "KP106", node, "list comprehension allocates inside a kernel loop body"
            )
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if self.loop_depth > 0:
            self.report(
                "KP106",
                node,
                "generator expression allocates inside a kernel loop body",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.loop_depth > 0 and isinstance(node.op, (ast.Add, ast.Mult)):
            if isinstance(node.left, ast.List) or isinstance(node.right, ast.List):
                self.report(
                    "KP106",
                    node,
                    "list concatenation/repetition allocates inside a kernel loop body",
                )
        self.generic_visit(node)

    # -- nested scopes ---------------------------------------------------- #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.report("KP104", node, "async def in kernel body")
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_closure(node, "<lambda>")
        # Defaults evaluate in the enclosing scope; the body in its own.
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        nested = _KernelVisitor(self.module, self.qualname)
        nested.visit(node.body)
        self.findings.extend(nested.findings)

    def _visit_nested(self, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self._check_closure(node, node.name)
        if node.args.kwarg is not None:
            self.report("KP105", node, f"**{node.args.kwarg.arg} in nested kernel def")
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        # A nested def's body runs per call (the dispatch closures run per
        # event), so it is scanned with the same rules; loop context restarts
        # at its own loops.
        nested = _KernelVisitor(self.module, self.qualname)
        for statement in node.body:
            nested.visit(statement)
        self.findings.extend(nested.findings)

    def _check_closure(self, node: ast.AST, name: str) -> None:
        free = _free_variables(self.module, node)
        if free:
            self.report(
                "KP107",
                node,
                f"nested {name!r} closes over {sorted(free)!r}; "
                "bind through parameter defaults instead",
            )

    # -- skip annotation-only subtrees ------------------------------------ #
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # The annotation is typing syntax, not runtime kernel code.
        self.visit(node.target)
        if node.value is not None:
            self.visit(node.value)


def _free_variables(module: SourceFile, node: ast.AST) -> frozenset[str]:
    """Free + nonlocal names of a nested function node, via ``symtable``."""
    line = getattr(node, "lineno", None)
    name = node.name if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else "lambda"
    block = _find_block(module.symbol_table(), name, line)
    if block is None:
        return frozenset()
    free = set(block.get_frees())
    for symbol in block.get_symbols():
        if symbol.is_nonlocal():
            free.add(symbol.get_name())
    return frozenset(free)


def _find_block(
    table: "object", name: str, line: "int | None"
) -> "object | None":
    """Locate the symtable function block matching ``(name, line)``."""
    stack = [table]
    while stack:
        current = stack.pop()
        if (
            current.get_type() == "function"
            and current.get_name() == name
            and current.get_lineno() == line
        ):
            return current
        stack.extend(current.get_children())
    return None


def check_kernel_purity(module: SourceFile) -> Iterable[Finding]:
    findings: list[Finding] = []
    for registered in module.registered:
        if registered.kind != "kernel":
            continue
        node = registered.node
        visitor = _KernelVisitor(module, registered.qualname)
        if isinstance(node, ast.AsyncFunctionDef):
            visitor.report("KP104", node, "kernel is an async def")
        if node.args.kwarg is not None:
            visitor.report(
                "KP105", node, f"**{node.args.kwarg.arg} in kernel signature"
            )
        for statement in node.body:
            visitor.visit(statement)
        findings.extend(visitor.findings)
    return findings
