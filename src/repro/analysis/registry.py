"""Runtime kernel-registration markers for the static contract analyzer.

The analyzer (:mod:`repro.analysis`) enforces the *compilable kernel
subset* — the restricted Python the hot scheduling loops must stay inside so
the planned compiled stepper (ROADMAP direction 1) can port them one-to-one
— plus the anti-drift rule that only designated transition code may mutate
the registered state planes.  Which functions those rules apply to is
declared **in the source itself** with the two decorators below; the
analyzer discovers them with a pure AST scan (it never imports the target
modules), and the runtime registries exist so a meta-test can assert the
scan and the live tree agree (``tests/test_analysis.py``).

Both decorators return the function object unchanged — zero call overhead,
no wrapper frame — so decorating a hot method cannot perturb the
parity-pinned schedules.

``@hot_kernel``
    Marks a hot-path kernel: the function must stay inside the compilable
    subset (no dict/set state, no try/generator/``**kwargs``, no hot-loop
    allocations, no closure cells) *and* is allowed to mutate the registered
    state planes.  Individual violations that are deliberate (e.g. the
    vectorised scan's chunk buffer) are waived in place with a
    ``# kernel-ok: <rule>`` comment.

``@plane_mutator``
    Marks setup/reference code that may mutate the state planes but is *not*
    held to the compilable subset (batch-kernel constructors, the naive
    reference candidate structure).
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = [
    "HOT_KERNELS",
    "PLANE_MUTATORS",
    "hot_kernel",
    "plane_mutator",
    "registration_key",
]

_F = TypeVar("_F", bound=Callable)

#: ``"module:qualname" -> note`` for every function registered at runtime.
HOT_KERNELS: dict[str, str] = {}
PLANE_MUTATORS: dict[str, str] = {}


def registration_key(module: str, qualname: str) -> str:
    """The canonical registry key of a decorated function."""
    return f"{module}:{qualname}"


def _register(registry: dict[str, str], func: Callable, note: str) -> None:
    registry[registration_key(func.__module__, func.__qualname__)] = note


def hot_kernel(func: "_F | None" = None, *, note: str = "") -> "_F | Callable[[_F], _F]":
    """Register ``func`` as a hot-path kernel (see the module docstring).

    Usable bare (``@hot_kernel``) or with a note
    (``@hot_kernel(note="event loop")``).
    """
    if func is None:
        def wrap(inner: _F) -> _F:
            _register(HOT_KERNELS, inner, note)
            return inner

        return wrap
    _register(HOT_KERNELS, func, note)
    return func


def plane_mutator(func: "_F | None" = None, *, note: str = "") -> "_F | Callable[[_F], _F]":
    """Register ``func`` as allowed to mutate state planes (subset-exempt)."""
    if func is None:
        def wrap(inner: _F) -> _F:
            _register(PLANE_MUTATORS, inner, note)
            return inner

        return wrap
    _register(PLANE_MUTATORS, func, note)
    return func
