"""Static kernel-contract analyzer (``memtree lint``).

An AST-based analysis subsystem that turns the repo's implicit architecture
rules into machine-checked invariants, ahead of the compiled kernel plane
(ROADMAP direction 1).  Three rule families:

* **kernel purity** (KP1xx, :mod:`.kernel_rules`) — functions registered
  ``@hot_kernel`` must stay inside the compilable subset;
* **plane contracts** (PC2xx, :mod:`.plane_rules`) — the RecordTable
  schema, workspace plane columns, arena plane dtypes and named result
  planes must match the declarative registry in :mod:`.contracts`;
* **anti-drift** (AD301, :mod:`.drift_rules`) — only registered kernels and
  ``@plane_mutator`` defs may mutate the protected state planes.

The analyzer never imports the modules it scans; registration is
discovered from decorator syntax, and the runtime registries in
:mod:`.registry` exist so tests can assert scan and live tree agree.

Run it as ``memtree lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from .contracts import WAIVER_TOKENS
from .registry import HOT_KERNELS, PLANE_MUTATORS, hot_kernel, plane_mutator, registration_key
from .report import build_parser, load_baseline, main, run_lint, write_baseline
from .rules import (
    Finding,
    SourceFile,
    analyze_package,
    analyze_paths,
    apply_baseline,
    collect_files,
    failing,
    iter_registered,
)

__all__ = [
    "Finding",
    "HOT_KERNELS",
    "PLANE_MUTATORS",
    "SourceFile",
    "WAIVER_TOKENS",
    "analyze_package",
    "analyze_paths",
    "apply_baseline",
    "build_parser",
    "collect_files",
    "failing",
    "hot_kernel",
    "iter_registered",
    "load_baseline",
    "main",
    "plane_mutator",
    "registration_key",
    "run_lint",
    "write_baseline",
]
