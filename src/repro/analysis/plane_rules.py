"""Plane-contract rules (PC2xx): static dtype/schema cross-checks.

The contracts in :mod:`repro.analysis.contracts` pin the dtypes and layouts
that *other* code indexes by — the RecordTable schema read back by the
result cache, the arena plane columns rebuilt into workspaces, the schedule
result planes consumed by validation and batch collapse.  This family diffs
the source literals and array-construction sites against those contracts so
schema drift fails lint, not a fuzz run three layers later.

========  ==================================================================
PC201     ``RECORD_FIELDS`` literal in ``experiments/records.py`` differs
          from :data:`RECORD_FIELD_CONTRACT` (name/dtype/nullable/encoding,
          order-sensitive — on-disk layout is positional).
PC202     a contract-registered array target (named array, workspace plane
          append, or contract call keyword) is constructed with a dtype
          that statically resolves to something else.
PC203     a contract-registered array target is constructed by an
          ``np.<constructor>`` call with **no** explicit dtype: the result
          would depend on numpy promotion rules, which the contracts exist
          to keep out of the planes.
PC205     workspace plane-name drift: the ``WORKSPACE_PLANE_NAMES`` literal
          differs from the contract keys, or an append targets an
          unregistered ``ws:`` plane.
PC206     the ``_PLANE_DTYPES`` literal of ``core/tree_store.py`` differs
          from :data:`ARENA_PLANE_DTYPES`.
========  ==================================================================
"""

from __future__ import annotations

import ast
from typing import Iterable

import numpy as np

from .contracts import (
    ARENA_PLANE_DTYPES,
    CALL_KEYWORD_DTYPES,
    NAMED_ARRAY_DTYPES,
    RECORD_FIELD_CONTRACT,
    WORKSPACE_PLANE_DTYPES,
)
from .rules import Finding, SourceFile, call_keyword, dtype_from_node, np_constructor_name

__all__ = ["check_plane_contracts"]

_CATEGORY = "plane-contract"


def _target_names(target: ast.expr) -> list[str]:
    """Assignable names a contract can pin: ``x``, ``self.x``, ``sim.x``."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _construction_dtype_node(value: ast.expr) -> "tuple[bool, ast.expr | None]":
    """``(is_checked_construction, dtype node or None)`` for an RHS."""
    if not isinstance(value, ast.Call):
        return False, None
    constructor = np_constructor_name(value)
    if constructor is not None:
        from .contracts import ALLOCATING_CONSTRUCTORS

        if constructor in ALLOCATING_CONSTRUCTORS:
            node = call_keyword(value, "dtype")
            if node is None and len(value.args) >= 2:
                node = value.args[1]
            return True, node
        return False, None
    if isinstance(value.func, ast.Attribute) and value.func.attr == "astype":
        node = call_keyword(value, "dtype")
        if node is None and value.args:
            node = value.args[0]
        return True, node
    return False, None


def _check_dtype_site(
    module: SourceFile,
    value: ast.expr,
    expected: str,
    label: str,
    scope: str,
    findings: list[Finding],
) -> None:
    checked, dtype_node = _construction_dtype_node(value)
    if not checked:
        return
    if dtype_node is None:
        findings.append(
            module.finding(
                "PC203",
                _CATEGORY,
                value,
                scope,
                f"{label} is constructed without an explicit dtype "
                f"(contract requires {expected})",
            )
        )
        return
    resolved = dtype_from_node(dtype_node)
    if resolved is None:
        # dtype is a runtime expression the analyzer cannot evaluate — the
        # contract cannot be verified statically, so the site is skipped.
        return
    if resolved != np.dtype(expected):
        findings.append(
            module.finding(
                "PC202",
                _CATEGORY,
                dtype_node,
                scope,
                f"{label} is constructed as {resolved} but the contract "
                f"requires {expected}",
            )
        )


# --------------------------------------------------------------------------- #
# literal-diff checks (PC201 / PC205 / PC206)
# --------------------------------------------------------------------------- #
def _module_assign(module: SourceFile, name: str) -> "ast.Assign | ast.AnnAssign | None":
    for statement in module.tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return statement
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.target.id == name:
                return statement
    return None


def _parse_field_call(node: ast.expr) -> "tuple[str, str, bool, str | None] | None":
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return None
    if node.func.id != "Field":
        return None
    positional = [
        arg.value if isinstance(arg, ast.Constant) else None for arg in node.args
    ]
    if len(positional) < 2 or not all(isinstance(p, str) for p in positional[:2]):
        return None
    name, dtype = positional[0], positional[1]
    nullable = bool(positional[2]) if len(positional) > 2 else False
    encoding = positional[3] if len(positional) > 3 else None
    for keyword in node.keywords:
        if not isinstance(keyword.value, ast.Constant):
            return None
        if keyword.arg == "nullable":
            nullable = bool(keyword.value.value)
        elif keyword.arg == "encoding":
            encoding = keyword.value.value
    return (name, dtype, nullable, encoding)


def _check_record_fields(module: SourceFile, findings: list[Finding]) -> None:
    statement = _module_assign(module, "RECORD_FIELDS")
    if statement is None:
        findings.append(
            module.finding(
                "PC201",
                _CATEGORY,
                module.tree,
                "<module>",
                "RECORD_FIELDS literal not found at module level",
            )
        )
        return
    value = statement.value
    if not isinstance(value, ast.Tuple):
        findings.append(
            module.finding(
                "PC201", _CATEGORY, statement, "<module>",
                "RECORD_FIELDS is not a tuple literal",
            )
        )
        return
    parsed: list["tuple[str, str, bool, str | None] | None"] = [
        _parse_field_call(element) for element in value.elts
    ]
    for element, entry in zip(value.elts, parsed):
        if entry is None:
            findings.append(
                module.finding(
                    "PC201", _CATEGORY, element, "<module>",
                    "RECORD_FIELDS entry is not a literal Field(...) call",
                )
            )
    entries = [entry for entry in parsed if entry is not None]
    contract = RECORD_FIELD_CONTRACT
    for index in range(max(len(entries), len(contract))):
        node = value.elts[index] if index < len(value.elts) else value
        if index >= len(entries):
            findings.append(
                module.finding(
                    "PC201", _CATEGORY, node, "<module>",
                    f"RECORD_FIELDS is missing contract field "
                    f"{contract[index][0]!r} at position {index}",
                )
            )
        elif index >= len(contract):
            findings.append(
                module.finding(
                    "PC201", _CATEGORY, node, "<module>",
                    f"RECORD_FIELDS has uncontracted field "
                    f"{entries[index][0]!r} at position {index}",
                )
            )
        elif entries[index] != contract[index]:
            findings.append(
                module.finding(
                    "PC201", _CATEGORY, node, "<module>",
                    f"RECORD_FIELDS position {index}: source declares "
                    f"{entries[index]!r}, contract requires {contract[index]!r}",
                )
            )


def _literal_strings(node: ast.expr) -> "list[str] | None":
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        elements = node.elts
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set", "tuple")
        and len(node.args) == 1
        and isinstance(node.args[0], (ast.Tuple, ast.List, ast.Set))
    ):
        elements = node.args[0].elts
    else:
        return None
    values: list[str] = []
    for element in elements:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return values


def _check_plane_names(module: SourceFile, findings: list[Finding]) -> None:
    statement = _module_assign(module, "WORKSPACE_PLANE_NAMES")
    expected = list(WORKSPACE_PLANE_DTYPES)
    if statement is None:
        findings.append(
            module.finding(
                "PC205", _CATEGORY, module.tree, "<module>",
                "WORKSPACE_PLANE_NAMES literal not found at module level",
            )
        )
        return
    names = _literal_strings(statement.value)
    if names is None:
        findings.append(
            module.finding(
                "PC205", _CATEGORY, statement, "<module>",
                "WORKSPACE_PLANE_NAMES is not a literal tuple of strings",
            )
        )
        return
    if names != expected:
        findings.append(
            module.finding(
                "PC205", _CATEGORY, statement, "<module>",
                f"WORKSPACE_PLANE_NAMES {names!r} differs from the contract "
                f"plane set {expected!r}",
            )
        )


def _check_arena_dtypes(module: SourceFile, findings: list[Finding]) -> None:
    statement = _module_assign(module, "_PLANE_DTYPES")
    if statement is None:
        findings.append(
            module.finding(
                "PC206", _CATEGORY, module.tree, "<module>",
                "_PLANE_DTYPES literal not found at module level",
            )
        )
        return
    values = _literal_strings(statement.value)
    if values is None or set(values) != set(ARENA_PLANE_DTYPES):
        findings.append(
            module.finding(
                "PC206", _CATEGORY, statement, "<module>",
                f"_PLANE_DTYPES differs from the arena contract "
                f"{sorted(ARENA_PLANE_DTYPES)!r}",
            )
        )


# --------------------------------------------------------------------------- #
# construction-site checks (PC202 / PC203 / PC205-append)
# --------------------------------------------------------------------------- #
def _plane_append(node: ast.Call) -> "tuple[str, ast.expr] | None":
    """Match ``<planes>[\"ws:...\"]...append(value)`` and return (key, value)."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "append"):
        return None
    if not isinstance(func.value, ast.Subscript):
        return None
    key_node = func.value.slice
    if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
        return None
    key = key_node.value
    if not key.startswith("ws:") or len(node.args) != 1:
        return None
    return key, node.args[0]


def check_plane_contracts(module: SourceFile) -> Iterable[Finding]:
    findings: list[Finding] = []

    if module.matches("experiments/records.py"):
        _check_record_fields(module, findings)
    if module.matches("batch/planes.py"):
        _check_plane_names(module, findings)
    if module.matches("core/tree_store.py"):
        _check_arena_dtypes(module, findings)

    named_contract: dict[str, str] = {}
    for suffix, table in NAMED_ARRAY_DTYPES.items():
        if module.matches(suffix):
            named_contract.update(table)
    keyword_contract: dict[tuple[str, str], str] = {}
    for suffix, table in CALL_KEYWORD_DTYPES.items():
        if module.matches(suffix):
            keyword_contract.update(table)

    parents = module.parent_map()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and named_contract:
            names = [
                name
                for target in node.targets
                for name in _target_names(target)
                if name in named_contract
            ]
            for name in names:
                _check_dtype_site(
                    module,
                    node.value,
                    named_contract[name],
                    f"contract array {name!r}",
                    module.scope_of(node, parents),
                    findings,
                )
        elif isinstance(node, ast.AnnAssign) and named_contract and node.value is not None:
            for name in _target_names(node.target):
                if name in named_contract:
                    _check_dtype_site(
                        module,
                        node.value,
                        named_contract[name],
                        f"contract array {name!r}",
                        module.scope_of(node, parents),
                        findings,
                    )
        elif isinstance(node, ast.Call):
            match = _plane_append(node)
            if match is not None:
                key, value = match
                scope = module.scope_of(node, parents)
                if key not in WORKSPACE_PLANE_DTYPES:
                    findings.append(
                        module.finding(
                            "PC205", _CATEGORY, node, scope,
                            f"append to unregistered workspace plane {key!r}",
                        )
                    )
                else:
                    _check_dtype_site(
                        module,
                        value,
                        WORKSPACE_PLANE_DTYPES[key],
                        f"workspace plane {key!r}",
                        scope,
                        findings,
                    )
            if keyword_contract:
                callee = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if callee is not None:
                    for (name, kw), expected in keyword_contract.items():
                        if name != callee:
                            continue
                        value = call_keyword(node, kw)
                        if value is None:
                            continue
                        _check_dtype_site(
                            module,
                            value,
                            expected,
                            f"{callee}({kw}=...)",
                            module.scope_of(node, parents),
                            findings,
                        )
    return findings
