"""Declarative contract registry for the static analyzer.

Everything the rule families check against lives here as plain data, so the
repo's architecture rules are written down exactly once and the analyzer
stays a mechanical cross-checker:

* the **compilable-subset** bans of the kernel-purity family (which NumPy
  constructors count as allocations, which dtypes are object-like);
* the **plane dtype contracts**: the 21-field :data:`RECORD_FIELD_CONTRACT`
  mirrored from ``experiments/records.py``, the workspace plane columns of
  ``batch/planes.py``, the arena plane dtype set of ``core/tree_store.py``,
  and the named array/keyword dtype contracts of the engine/lane modules;
* the **anti-drift** configuration: which modules are scanned, which
  variable names are protected state planes.

``schedulers/reference.py`` is deliberately absent everywhere: it is the
frozen pre-array generation kept verbatim as the parity oracle, and must
never be edited to satisfy a lint rule.
"""

from __future__ import annotations

__all__ = [
    "ALLOCATING_CONSTRUCTORS",
    "ARENA_PLANE_DTYPES",
    "CALL_KEYWORD_DTYPES",
    "DRIFT_MODULE_SUFFIXES",
    "NAMED_ARRAY_DTYPES",
    "OBJECT_DTYPE_NAMES",
    "RECORD_FIELD_CONTRACT",
    "STATE_PLANE_NAMES",
    "WAIVER_PREFIX",
    "WAIVER_TOKENS",
    "WORKSPACE_PLANE_DTYPES",
]

# --------------------------------------------------------------------------- #
# kernel purity (rules KP1xx)
# --------------------------------------------------------------------------- #

#: NumPy namespace calls that allocate a fresh array.  Inside a kernel's
#: loop body these are findings (rule KP106): the compiled port pre-allocates
#: every buffer, so a hot-loop allocation is a porting hazard *and* a CPython
#: performance bug.  Reductions/ufuncs with ``out=`` are deliberately not
#: listed.
ALLOCATING_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "empty",
        "empty_like",
        "zeros",
        "zeros_like",
        "ones",
        "ones_like",
        "full",
        "full_like",
        "array",
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "arange",
        "linspace",
        "frombuffer",
        "fromiter",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "tile",
        "repeat",
    }
)

#: dtype spellings that make an array object-dtyped (rule KP102: object
#: arrays are uncompilable and box every element).
OBJECT_DTYPE_NAMES: frozenset[str] = frozenset({"object", "object_", "O"})

#: ``# kernel-ok: <token>`` waiver tokens, one per rule.  The rule id itself
#: is always accepted too.
WAIVER_PREFIX = "kernel-ok:"
WAIVER_TOKENS: dict[str, str] = {
    "KP101": "dict-state",
    "KP102": "object-dtype",
    "KP103": "try",
    "KP104": "generator",
    "KP105": "kwargs",
    "KP106": "loop-alloc",
    "KP107": "closure",
    "AD301": "plane-mutation",
}

# --------------------------------------------------------------------------- #
# plane dtype contracts (rules PC2xx)
# --------------------------------------------------------------------------- #

#: The fixed sweep-record schema of
#: :data:`repro.experiments.records.RECORD_FIELDS`, duplicated declaratively
#: as ``(name, dtype, nullable, encoding)``.  Rule PC201 statically parses
#: the ``RECORD_FIELDS`` literal and diffs it against this table, so editing
#: the schema without updating the contract (or vice versa) fails lint —
#: before any fuzz or cache-key machinery notices.
RECORD_FIELD_CONTRACT: tuple[tuple[str, str, bool, "str | None"], ...] = (
    ("tree_index", "<i8", False, None),
    ("tree_size", "<i8", False, None),
    ("tree_height", "<i8", False, None),
    ("scheduler", "<U24", False, None),
    ("num_processors", "<i8", False, None),
    ("memory_factor", "<f8", False, None),
    ("memory_limit", "<f8", False, None),
    ("minimum_memory", "<f8", False, None),
    ("completed", "|b1", False, None),
    ("makespan", "<f8", False, None),
    ("lower_bound", "<f8", False, None),
    ("classical_lower_bound", "<f8", False, None),
    ("memory_lower_bound", "<f8", False, None),
    ("normalized_makespan", "<f8", False, None),
    ("peak_memory", "<f8", False, None),
    ("memory_fraction", "<f8", False, None),
    ("scheduling_seconds", "<f8", False, None),
    ("scheduling_seconds_per_node", "<f8", False, None),
    ("activation_order", "<U16", False, None),
    ("execution_order", "<U16", False, None),
    ("failure_reason", "<i4", True, "dict"),
)

#: The arena-resident workspace plane columns of
#: :data:`repro.batch.planes.WORKSPACE_PLANE_NAMES` with their dtypes.
#: Rule PC205 diffs the names tuple literal against these keys; PC202/PC203
#: check every ``planes["ws:..."].append(np.asarray(..., dtype=...))`` site.
WORKSPACE_PLANE_DTYPES: dict[str, str] = {
    "ws:child_offsets": "int64",
    "ws:child_nodes": "int64",
    "ws:ao_sequence": "int64",
    "ws:ao_rank": "int64",
    "ws:eo_sequence": "int64",
    "ws:eo_rank": "int64",
    "ws:request_ao": "float64",
    "ws:release": "float64",
    "ws:scalars": "float64",
}

#: dtype strings the TreeStore arena accepts for plane columns; rule PC206
#: pins the ``_PLANE_DTYPES`` literal of ``core/tree_store.py`` to this set
#: (8-byte scalars keep every arena section aligned without padding).
ARENA_PLANE_DTYPES: frozenset[str] = frozenset({"<i8", "<f8"})

#: Named-array dtype contracts: ``module suffix -> {target name -> dtype}``.
#: A *target name* is the variable, ``self``-attribute or attribute being
#: assigned an ``np.<constructor>`` call (or ``.astype`` result).  Rules
#: PC202 (dtype mismatch) and PC203 (registered target built without an
#: explicit dtype) fire on these; unregistered names are never checked, so
#: the registry only pins the planes whose layout other code relies on.
NAMED_ARRAY_DTYPES: dict[str, dict[str, str]] = {
    "schedulers/engine.py": {
        "block": "float64",  # the SimWorkspace request/release scratch block
        "_block": "float64",
        "children_fout": "float64",
        "offsets": "int64",  # children CSR offsets adopted in from_planes
        "request": "float64",
    },
    "batch/lanes.py": {
        "slot_time": "float64",  # the [B, p_max] event wavefront plane
        "slot_node": "int64",
        "act": "int64",
        "start": "float64",  # materialised _LaneSim result planes
        "finish": "float64",
        "processor": "int64",
    },
    "core/tree_store.py": {
        "offsets": "int64",  # per-tree node offsets (prefix sums)
        "sizes": "int64",
        "off_view": "int64",
    },
    "experiments/plan.py": {
        "tree_index": "int64",  # the SweepPlan instance-grid planes
        "scheduler_code": "int64",
        "ao_code": "int64",
        "eo_code": "int64",
        "processors": "int64",
        "memory_factor": "float64",
        "global_index": "int64",
    },
    "experiments/backends.py": {
        "seen": "bool",  # instance-coverage bitmap of the keyed merges
    },
}

#: Call-keyword dtype contracts: ``module suffix -> {(callee, keyword) ->
#: dtype}`` — the schedule result planes every consumer (validation, records,
#: batch collapse) indexes by dtype.
CALL_KEYWORD_DTYPES: dict[str, dict[tuple[str, str], str]] = {
    "schedulers/engine.py": {
        ("ScheduleResult", "start_times"): "float64",
        ("ScheduleResult", "finish_times"): "float64",
        ("ScheduleResult", "processor"): "int64",
    },
}

# --------------------------------------------------------------------------- #
# anti-drift (rule AD301)
# --------------------------------------------------------------------------- #

#: Modules whose state-plane mutations are policed.  ``reference.py`` is the
#: frozen oracle (never edited, never registered); everything else that
#: touches the heuristic state planes must route mutations through the
#: registered kernels / plane mutators.
DRIFT_MODULE_SUFFIXES: tuple[str, ...] = (
    "schedulers/engine.py",
    "schedulers/activation.py",
    "schedulers/membooking.py",
    "schedulers/membooking_redtree.py",
    "batch/lanes.py",
)

#: Protected state-plane variable names (bare locals/params and
#: ``self``-attributes alike).  Subscript stores and augmented subscript
#: stores on these outside a registered kernel / plane mutator are AD301
#: findings: a second implementation of the transition rules is exactly the
#: drift the shared-kernel refactor of PR 5 exists to prevent.
STATE_PLANE_NAMES: frozenset[str] = frozenset(
    {
        "activated",
        "_activated",
        "ch_not_fin",
        "_ch_not_fin",
        "ch_not_act",
        "_ch_not_act",
        "booked",
        "_booked",
        "bbs",
        "_bbs",
        "state",
        "_state",
    }
)
