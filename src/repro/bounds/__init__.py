"""Makespan lower bounds (classical and memory-aware, Section 6)."""

from .makespan import (
    LowerBounds,
    classical_lower_bound,
    combined_lower_bound,
    lower_bound_improvement_stats,
    lower_bounds,
    memory_lower_bound,
)

__all__ = [
    "LowerBounds",
    "classical_lower_bound",
    "combined_lower_bound",
    "lower_bound_improvement_stats",
    "lower_bounds",
    "memory_lower_bound",
]
