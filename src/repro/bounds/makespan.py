"""Makespan lower bounds, including the memory-aware bound of Theorem 3.

The paper normalises every reported makespan by the best known lower bound
(Section 7.2).  Two bounds are combined:

* the **classical** bound ``max(W / p, CP)`` where ``W`` is the total work
  and ``CP`` the critical path (longest weighted leaf-to-root chain);
* the new **memory-aware** bound of Theorem 3: every task ``i`` occupies at
  least ``MemNeeded_i`` memory for ``t_i`` time units, and the total
  memory-time product available over a schedule of length ``C_max`` is at
  most ``C_max * M``, hence::

      C_max  >=  (1 / M) * sum_i MemNeeded_i * t_i

  Unlike the classical bound it does not depend on ``p``, so it becomes the
  dominant bound when many processors compete for little memory.

Section 6 reports how often the new bound improves on the classical one
(22% of the assembly trees and 33% of the synthetic trees at ``p = 8``);
:func:`lower_bound_improvement_stats` reproduces that measurement for any
collection of instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.task_tree import TaskTree
from ..core.tree_metrics import critical_path_length

__all__ = [
    "classical_lower_bound",
    "memory_lower_bound",
    "combined_lower_bound",
    "LowerBounds",
    "lower_bounds",
    "lower_bound_improvement_stats",
]


def classical_lower_bound(tree: TaskTree, num_processors: int) -> float:
    """Classical makespan bound ``max(total work / p, critical path)``."""
    if num_processors < 1:
        raise ValueError("num_processors must be at least 1")
    return max(tree.total_work / num_processors, critical_path_length(tree))


def memory_lower_bound(tree: TaskTree, memory_limit: float) -> float:
    """Memory-aware makespan bound of Theorem 3.

    ``sum_i MemNeeded_i * t_i / M``: the schedule must fit the total
    memory-time demand of the tasks inside the ``C_max * M`` rectangle.
    """
    if memory_limit <= 0:
        raise ValueError("memory_limit must be positive")
    demand = float(np.dot(tree.mem_needed, tree.ptime))
    return demand / float(memory_limit)


def combined_lower_bound(tree: TaskTree, num_processors: int, memory_limit: float) -> float:
    """Best (largest) of the classical and memory-aware bounds."""
    return max(
        classical_lower_bound(tree, num_processors),
        memory_lower_bound(tree, memory_limit),
    )


@dataclass(frozen=True)
class LowerBounds:
    """All makespan lower bounds for one instance."""

    work_bound: float
    critical_path_bound: float
    memory_bound: float

    @property
    def classical(self) -> float:
        """``max(W/p, CP)``."""
        return max(self.work_bound, self.critical_path_bound)

    @property
    def combined(self) -> float:
        """``max`` of every bound (the normalisation used in Section 7)."""
        return max(self.classical, self.memory_bound)

    @property
    def memory_bound_improves(self) -> bool:
        """True when the Theorem 3 bound is strictly better than the classical one."""
        return self.memory_bound > self.classical

    @property
    def improvement_ratio(self) -> float:
        """Relative increase of the bound thanks to Theorem 3 (0 when it does not help)."""
        if self.classical <= 0:
            return 0.0
        return max(0.0, self.memory_bound / self.classical - 1.0)


def lower_bounds(tree: TaskTree, num_processors: int, memory_limit: float) -> LowerBounds:
    """Compute every lower bound for one instance."""
    if num_processors < 1:
        raise ValueError("num_processors must be at least 1")
    return LowerBounds(
        work_bound=tree.total_work / num_processors,
        critical_path_bound=critical_path_length(tree),
        memory_bound=memory_lower_bound(tree, memory_limit),
    )


def lower_bound_improvement_stats(
    trees: Iterable[TaskTree],
    num_processors: int,
    memory_limits: Sequence[float],
) -> dict[str, float]:
    """Fraction of instances where Theorem 3 improves the classical bound.

    Parameters
    ----------
    trees:
        The instances.
    num_processors:
        Processor count used in the classical bound.
    memory_limits:
        One memory bound per tree (same order).

    Returns
    -------
    dict with keys ``improved_fraction`` (how often the memory bound wins)
    and ``average_improvement`` (mean relative increase over the improved
    instances, 0.0 when none improved) plus the raw ``count``.
    """
    trees = list(trees)
    if len(trees) != len(memory_limits):
        raise ValueError("need exactly one memory limit per tree")
    improved: list[float] = []
    total = 0
    for tree, memory in zip(trees, memory_limits):
        bounds = lower_bounds(tree, num_processors, memory)
        total += 1
        if bounds.memory_bound_improves:
            improved.append(bounds.improvement_ratio)
    return {
        "count": float(total),
        "improved_fraction": (len(improved) / total) if total else 0.0,
        "average_improvement": float(np.mean(improved)) if improved else 0.0,
    }
