"""Small internal utilities shared across the :mod:`repro` package.

This module deliberately has no dependency on the rest of the package so it
can be imported from anywhere (core data structures, schedulers, workload
generators) without creating import cycles.

Contents
--------
``IndexedHeap``
    A binary min-heap over integer node identifiers keyed by an arbitrary
    priority, with O(log n) push/pop/remove and O(1) membership tests.  The
    schedulers' ready pools now use the faster, rank-keyed
    :class:`repro.schedulers.ReadyQueue` (C ``heapq`` + lazy deletion), so
    ``IndexedHeap`` currently has no production callers; it is retained as a
    tested general-purpose utility (eager removal, arbitrary float
    priorities) for future subsystems.
``as_rng``
    Normalise the many ways a caller may specify randomness (``None``, seed,
    ``numpy.random.Generator``) into a :class:`numpy.random.Generator`.
``as_float_array`` / ``as_int_array``
    Validated conversions of per-node data into NumPy arrays.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "IndexedHeap",
    "as_rng",
    "as_float_array",
    "as_int_array",
    "argsort_stable",
]


class IndexedHeap:
    """Binary min-heap of integer items with priority-based ordering.

    The heap stores *items* (arbitrary hashable keys, in practice node
    indices) ordered by a numeric *priority*.  Ties are broken by the item
    itself so the ordering is deterministic, which matters for reproducible
    schedules.

    All operations are ``O(log n)`` except :meth:`peek`, :meth:`__len__`,
    and :meth:`__contains__` which are ``O(1)``.

    Examples
    --------
    >>> h = IndexedHeap()
    >>> h.push(4, priority=2.0)
    >>> h.push(7, priority=1.0)
    >>> h.peek()
    7
    >>> h.pop()
    7
    >>> 4 in h
    True
    """

    __slots__ = ("_heap", "_pos", "_prio")

    def __init__(self, items: Iterable[tuple[int, float]] | None = None) -> None:
        # _heap is a list of items; _pos maps item -> index in _heap;
        # _prio maps item -> priority.
        self._heap: list[int] = []
        self._pos: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        if items is not None:
            for item, priority in items:
                self.push(item, priority)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[int]:
        """Iterate over items in arbitrary (heap) order."""
        return iter(list(self._heap))

    # ------------------------------------------------------------------ #
    # heap operations
    # ------------------------------------------------------------------ #
    def push(self, item: int, priority: float) -> None:
        """Insert ``item`` with ``priority``; raise if already present."""
        if item in self._pos:
            raise ValueError(f"item {item!r} already in heap")
        self._prio[item] = priority
        self._heap.append(item)
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def peek(self) -> int:
        """Return the item with the smallest priority without removing it."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        return self._heap[0]

    def peek_priority(self) -> float:
        """Return the smallest priority currently stored."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        return self._prio[self._heap[0]]

    def pop(self) -> int:
        """Remove and return the item with the smallest priority."""
        if not self._heap:
            raise IndexError("pop from an empty heap")
        top = self._heap[0]
        self._remove_at(0)
        return top

    def remove(self, item: int) -> None:
        """Remove an arbitrary ``item`` from the heap."""
        try:
            index = self._pos[item]
        except KeyError:
            raise KeyError(f"item {item!r} not in heap") from None
        self._remove_at(index)

    def priority(self, item: int) -> float:
        """Return the priority associated with ``item``."""
        return self._prio[item]

    def clear(self) -> None:
        """Remove every item."""
        self._heap.clear()
        self._pos.clear()
        self._prio.clear()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _less(self, a: int, b: int) -> bool:
        pa, pb = self._prio[a], self._prio[b]
        if pa != pb:
            return pa < pb
        return a < b

    def _remove_at(self, index: int) -> None:
        item = self._heap[index]
        last = self._heap.pop()
        del self._pos[item]
        del self._prio[item]
        if index < len(self._heap):
            self._heap[index] = last
            self._pos[last] = index
            # The replacement may need to move either way.
            self._sift_down(index)
            self._sift_up(index)

    def _sift_up(self, index: int) -> None:
        heap, pos = self._heap, self._pos
        item = heap[index]
        while index > 0:
            parent = (index - 1) >> 1
            if self._less(item, heap[parent]):
                heap[index] = heap[parent]
                pos[heap[index]] = index
                index = parent
            else:
                break
        heap[index] = item
        pos[item] = index

    def _sift_down(self, index: int) -> None:
        heap, pos = self._heap, self._pos
        size = len(heap)
        item = heap[index]
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._less(heap[left], heap[smallest] if smallest != index else item):
                smallest = left
            if right < size and self._less(
                heap[right], heap[smallest] if smallest != index else item
            ):
                smallest = right
            if smallest == index:
                break
            heap[index] = heap[smallest]
            pos[heap[index]] = index
            index = smallest
        heap[index] = item
        pos[item] = index


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from flexible user input.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_float_array(
    values: Sequence[float] | np.ndarray | float,
    n: int,
    name: str,
    *,
    nonnegative: bool = True,
    copy: bool = True,
) -> np.ndarray:
    """Validate per-node floating point data.

    ``values`` may be a scalar (broadcast to every node) or a sequence of
    length ``n``.  By default the returned array is a fresh ``float64`` array
    of shape ``(n,)``; with ``copy=False`` an input that is already a
    ``float64`` array is used as-is (the zero-copy path of
    :meth:`repro.core.task_tree.TaskTree.from_arrays`), so views into a
    larger arena keep referencing the arena's buffer.
    """
    if np.isscalar(values):
        array = np.full(n, float(values), dtype=np.float64)  # type: ignore[arg-type]
    else:
        array = np.asarray(values, dtype=np.float64)
        if copy:
            array = array.copy()
        if array.shape != (n,):
            raise ValueError(f"{name} must have shape ({n},), got {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must be finite")
    if nonnegative and np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
    return array


def as_int_array(values: Sequence[int] | np.ndarray, n: int, name: str) -> np.ndarray:
    """Validate per-node integer data (shape ``(n,)``, dtype ``int64``)."""
    array = np.asarray(values, dtype=np.int64).copy()
    if array.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {array.shape}")
    return array


def argsort_stable(keys: np.ndarray, *, descending: bool = False) -> np.ndarray:
    """Stable argsort, optionally descending (ties keep original order)."""
    keys = np.asarray(keys)
    if descending:
        # Stable descending sort: sort the negated keys when numeric.
        order = np.argsort(-keys, kind="stable")
    else:
        order = np.argsort(keys, kind="stable")
    return order
