"""Constructors that turn various tree descriptions into :class:`TaskTree`.

The scheduling algorithms all operate on the contiguous integer labelling of
:class:`~repro.core.task_tree.TaskTree`; this module converts the formats a
user is likely to start from:

* parent arrays (possibly with arbitrary hashable labels),
* ``(child, parent)`` edge lists,
* ``networkx`` directed graphs,
* children adjacency lists,
* an incremental :class:`TreeBuilder` for programmatic construction.

Structured synthetic families (chains, stars, balanced trees, ...) live in
:mod:`repro.workloads.families`; this module is only about *conversion*.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from .task_tree import NO_PARENT, TaskTree

__all__ = [
    "from_parents",
    "from_edges",
    "from_children_lists",
    "from_networkx",
    "relabelled_from_labels",
    "TreeBuilder",
]


def from_parents(
    parent: Sequence[int] | np.ndarray,
    fout: Sequence[float] | np.ndarray | float = 1.0,
    nexec: Sequence[float] | np.ndarray | float = 0.0,
    ptime: Sequence[float] | np.ndarray | float = 1.0,
    **kwargs,
) -> TaskTree:
    """Build a tree from a parent-pointer array (thin wrapper over ``TaskTree``)."""
    return TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime, **kwargs)


def from_edges(
    edges: Iterable[tuple[Hashable, Hashable]],
    fout: Mapping[Hashable, float] | float = 1.0,
    nexec: Mapping[Hashable, float] | float = 0.0,
    ptime: Mapping[Hashable, float] | float = 1.0,
    *,
    root: Hashable | None = None,
) -> tuple[TaskTree, dict[Hashable, int]]:
    """Build a tree from ``(child, parent)`` edges with arbitrary labels.

    Parameters
    ----------
    edges:
        Iterable of ``(child, parent)`` pairs.  Each child must appear in at
        most one edge.  The set of nodes is the union of all endpoints, plus
        ``root`` if given.
    fout, nexec, ptime:
        Either scalars (applied to all nodes) or mappings from label to value
        (missing labels fall back to the scalar defaults 1.0 / 0.0 / 1.0).
    root:
        Optional explicit root label, useful for a single-node tree with no
        edges.

    Returns
    -------
    (tree, label_to_index):
        The constructed :class:`TaskTree` and the mapping from original
        labels to the contiguous node indices used by the tree.
    """
    edge_list = list(edges)
    labels: list[Hashable] = []
    seen: set[Hashable] = set()

    def _register(label: Hashable) -> None:
        if label not in seen:
            seen.add(label)
            labels.append(label)

    for child, parent in edge_list:
        _register(child)
        _register(parent)
    if root is not None:
        _register(root)
    if not labels:
        raise ValueError("cannot build a tree from an empty edge list without a root")

    index = {label: i for i, label in enumerate(labels)}
    parent_arr = np.full(len(labels), NO_PARENT, dtype=np.int64)
    assigned = set()
    for child, parent in edge_list:
        ci = index[child]
        if ci in assigned:
            raise ValueError(f"node {child!r} has more than one parent")
        assigned.add(ci)
        parent_arr[ci] = index[parent]

    def _values(spec: Mapping[Hashable, float] | float, default: float) -> np.ndarray:
        if isinstance(spec, Mapping):
            return np.asarray([float(spec.get(label, default)) for label in labels])
        return np.full(len(labels), float(spec))

    tree = TaskTree(
        parent_arr,
        fout=_values(fout, 1.0),
        nexec=_values(nexec, 0.0),
        ptime=_values(ptime, 1.0),
        names=[str(label) for label in labels],
    )
    return tree, index


def from_children_lists(
    children: Sequence[Sequence[int]],
    fout: Sequence[float] | np.ndarray | float = 1.0,
    nexec: Sequence[float] | np.ndarray | float = 0.0,
    ptime: Sequence[float] | np.ndarray | float = 1.0,
) -> TaskTree:
    """Build a tree from per-node children lists (indices ``0 .. n-1``)."""
    n = len(children)
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    for node, kids in enumerate(children):
        for child in kids:
            if not 0 <= child < n:
                raise ValueError(f"child index {child} out of range for n={n}")
            if parent[child] != NO_PARENT:
                raise ValueError(f"node {child} has more than one parent")
            parent[child] = node
    return TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime)


def from_networkx(graph, *, orientation: str = "child_to_parent") -> TaskTree:
    """Build a tree from a :class:`networkx.DiGraph`.

    Parameters
    ----------
    graph:
        A directed graph whose edges encode the dependencies.  Node attributes
        ``fout``, ``nexec`` and ``ptime`` are used when present (defaults
        1.0 / 0.0 / 1.0 otherwise).
    orientation:
        ``"child_to_parent"`` (default, matches :meth:`TaskTree.to_networkx`)
        or ``"parent_to_child"`` when edges point away from the root.
    """
    if orientation not in ("child_to_parent", "parent_to_child"):
        raise ValueError("orientation must be 'child_to_parent' or 'parent_to_child'")

    nodes = list(graph.nodes())
    index = {label: i for i, label in enumerate(nodes)}
    parent = np.full(len(nodes), NO_PARENT, dtype=np.int64)
    for u, v in graph.edges():
        child, par = (u, v) if orientation == "child_to_parent" else (v, u)
        ci = index[child]
        if parent[ci] != NO_PARENT:
            raise ValueError(f"node {child!r} has more than one parent")
        parent[ci] = index[par]

    def _attr(name: str, default: float) -> np.ndarray:
        return np.asarray(
            [float(graph.nodes[label].get(name, default)) for label in nodes], dtype=np.float64
        )

    return TaskTree(
        parent,
        fout=_attr("fout", 1.0),
        nexec=_attr("nexec", 0.0),
        ptime=_attr("ptime", 1.0),
        names=[str(label) for label in nodes],
    )


def relabelled_from_labels(
    parent_of: Mapping[Hashable, Hashable | None],
    fout: Mapping[Hashable, float] | float = 1.0,
    nexec: Mapping[Hashable, float] | float = 0.0,
    ptime: Mapping[Hashable, float] | float = 1.0,
) -> tuple[TaskTree, dict[Hashable, int]]:
    """Build a tree from a ``{node: parent or None}`` mapping with labels."""
    labels = list(parent_of.keys())
    index = {label: i for i, label in enumerate(labels)}
    parent = np.full(len(labels), NO_PARENT, dtype=np.int64)
    for label, par in parent_of.items():
        if par is not None:
            if par not in index:
                raise ValueError(f"parent {par!r} of {label!r} is not itself a node")
            parent[index[label]] = index[par]

    def _values(spec: Mapping[Hashable, float] | float, default: float) -> np.ndarray:
        if isinstance(spec, Mapping):
            return np.asarray([float(spec.get(label, default)) for label in labels])
        return np.full(len(labels), float(spec))

    tree = TaskTree(
        parent,
        fout=_values(fout, 1.0),
        nexec=_values(nexec, 0.0),
        ptime=_values(ptime, 1.0),
        names=[str(label) for label in labels],
    )
    return tree, index


class TreeBuilder:
    """Incrementally build a :class:`TaskTree`.

    Nodes are added one at a time with :meth:`add_node`, which returns the
    index of the new node; children reference their parent by that index.
    Useful in generators where the tree shape is discovered top-down.

    Examples
    --------
    >>> b = TreeBuilder()
    >>> root = b.add_node(fout=4.0, ptime=2.0)
    >>> child = b.add_node(parent=root, fout=1.0)
    >>> tree = b.build()
    >>> tree.n
    2
    """

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._fout: list[float] = []
        self._nexec: list[float] = []
        self._ptime: list[float] = []
        self._names: list[str | None] = []

    def add_node(
        self,
        parent: int | None = None,
        *,
        fout: float = 1.0,
        nexec: float = 0.0,
        ptime: float = 1.0,
        name: str | None = None,
    ) -> int:
        """Append a node and return its index."""
        if parent is not None and not 0 <= parent < len(self._parent):
            raise ValueError(f"unknown parent index {parent}")
        self._parent.append(NO_PARENT if parent is None else parent)
        self._fout.append(float(fout))
        self._nexec.append(float(nexec))
        self._ptime.append(float(ptime))
        self._names.append(name)
        return len(self._parent) - 1

    def set_data(
        self,
        node: int,
        *,
        fout: float | None = None,
        nexec: float | None = None,
        ptime: float | None = None,
    ) -> None:
        """Update the data of an already added node."""
        if not 0 <= node < len(self._parent):
            raise ValueError(f"unknown node index {node}")
        if fout is not None:
            self._fout[node] = float(fout)
        if nexec is not None:
            self._nexec[node] = float(nexec)
        if ptime is not None:
            self._ptime[node] = float(ptime)

    def __len__(self) -> int:
        return len(self._parent)

    def build(self) -> TaskTree:
        """Finalise and validate the tree."""
        if not self._parent:
            raise ValueError("cannot build an empty tree")
        names = None
        if any(name is not None for name in self._names):
            names = [name if name is not None else str(i) for i, name in enumerate(self._names)]
        return TaskTree(
            np.asarray(self._parent, dtype=np.int64),
            fout=np.asarray(self._fout),
            nexec=np.asarray(self._nexec),
            ptime=np.asarray(self._ptime),
            names=names,
        )
