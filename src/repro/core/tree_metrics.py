"""Structural and workload metrics of task trees.

These quantities appear throughout the paper:

* **depth / height** (Figures 6 and 7 study the impact of tree height on the
  scheduling overhead and on the achievable speed-up),
* **bottom levels** (the ``CP`` execution order of Section 7.3.1 sorts nodes
  by decreasing bottom level; the classical makespan lower bound uses the
  critical path),
* **subtree work** ``T_i`` (Appendix A orders subtrees by ``T_i / f_i``),
* degree statistics (Section 7.1 describes the data sets by their maximum
  degree and height ranges).

All functions accept a :class:`~repro.core.task_tree.TaskTree` and return
NumPy arrays indexed by node, or plain Python scalars for aggregate values.
They are all ``O(n)`` (single pass over a topological order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .task_tree import NO_PARENT, TaskTree

__all__ = [
    "depths",
    "height",
    "bottom_levels",
    "top_levels",
    "critical_path_length",
    "subtree_sizes",
    "subtree_work",
    "subtree_output",
    "num_leaves",
    "degree_histogram",
    "max_degree",
    "TreeStats",
    "tree_stats",
]


def depths(tree: TaskTree) -> np.ndarray:
    """Depth of every node (root has depth 0)."""
    out = np.zeros(tree.n, dtype=np.int64)
    # Process in reverse topological order (parents before children).
    order = tree.topological_order()[::-1]
    parent = tree.parent
    for node in order:
        p = parent[node]
        if p != NO_PARENT:
            out[node] = out[p] + 1
    return out


def height(tree: TaskTree) -> int:
    """Height of the tree = number of nodes on the longest root-to-leaf path.

    A single-node tree has height 1.  (The paper reports heights between 12
    and 70 000 for the assembly trees, and ~63–131 for the synthetic trees.)
    """
    return int(depths(tree).max()) + 1


def bottom_levels(tree: TaskTree, *, weights: np.ndarray | None = None) -> np.ndarray:
    """Bottom level of every node.

    The bottom level of ``i`` is the total processing time on the path from
    ``i`` to the root, *including* ``i`` and the root.  Nodes with larger
    bottom level are more urgent; the ``CP`` order of the paper schedules
    them first.

    Parameters
    ----------
    weights:
        Optional alternative node weights; defaults to ``tree.ptime``.
    """
    w = tree.ptime if weights is None else np.asarray(weights, dtype=np.float64)
    out = np.zeros(tree.n, dtype=np.float64)
    order = tree.topological_order()[::-1]  # parents before children
    parent = tree.parent
    for node in order:
        p = parent[node]
        out[node] = w[node] + (out[p] if p != NO_PARENT else 0.0)
    return out


def top_levels(tree: TaskTree, *, weights: np.ndarray | None = None) -> np.ndarray:
    """Top level of every node: the longest weighted path from any leaf below.

    ``top_levels[i]`` is the length of the longest chain of processing times
    from a leaf of the subtree of ``i`` up to and including ``i``; it is the
    earliest time at which ``i`` can possibly complete with unlimited
    processors and memory.
    """
    w = tree.ptime if weights is None else np.asarray(weights, dtype=np.float64)
    out = np.zeros(tree.n, dtype=np.float64)
    for node in tree.topological_order():  # children before parents
        kids = tree.children(node)
        best = max((out[c] for c in kids), default=0.0)
        out[node] = w[node] + best
    return out


def critical_path_length(tree: TaskTree) -> float:
    """Length (total processing time) of the longest leaf-to-root path."""
    return float(top_levels(tree)[tree.root])


def subtree_sizes(tree: TaskTree) -> np.ndarray:
    """Number of nodes in the subtree rooted at each node."""
    out = np.ones(tree.n, dtype=np.int64)
    parent = tree.parent
    for node in tree.topological_order():
        p = parent[node]
        if p != NO_PARENT:
            out[p] += out[node]
    return out


def subtree_work(tree: TaskTree) -> np.ndarray:
    """Total processing time ``T_i`` of the subtree rooted at each node.

    Used by the average-memory-minimising postorder of Appendix A (subtrees
    are processed by non-increasing ``T_i / f_i``).
    """
    out = tree.ptime.copy()
    parent = tree.parent
    for node in tree.topological_order():
        p = parent[node]
        if p != NO_PARENT:
            out[p] += out[node]
    return out


def subtree_output(tree: TaskTree) -> np.ndarray:
    """Sum of output sizes ``f_j`` over the subtree rooted at each node."""
    out = tree.fout.copy()
    parent = tree.parent
    for node in tree.topological_order():
        p = parent[node]
        if p != NO_PARENT:
            out[p] += out[node]
    return out


def num_leaves(tree: TaskTree) -> int:
    """Number of leaves of the tree."""
    return int(tree.leaves().size)


def degree_histogram(tree: TaskTree) -> dict[int, int]:
    """Histogram ``{number of children: count of nodes}``."""
    counts: dict[int, int] = {}
    for node in range(tree.n):
        d = tree.num_children(node)
        counts[d] = counts.get(d, 0) + 1
    return dict(sorted(counts.items()))


def max_degree(tree: TaskTree) -> int:
    """Maximum number of children over all nodes."""
    return max(tree.num_children(node) for node in range(tree.n))


@dataclass(frozen=True)
class TreeStats:
    """Summary statistics of a tree, as reported in Section 7.1 of the paper."""

    n: int
    height: int
    num_leaves: int
    max_degree: int
    total_work: float
    critical_path: float
    total_output: float
    total_exec: float
    max_mem_needed: float

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary view (handy for CSV reporting)."""
        return {
            "n": self.n,
            "height": self.height,
            "num_leaves": self.num_leaves,
            "max_degree": self.max_degree,
            "total_work": self.total_work,
            "critical_path": self.critical_path,
            "total_output": self.total_output,
            "total_exec": self.total_exec,
            "max_mem_needed": self.max_mem_needed,
        }


def tree_stats(tree: TaskTree) -> TreeStats:
    """Compute the :class:`TreeStats` summary of ``tree``."""
    return TreeStats(
        n=tree.n,
        height=height(tree),
        num_leaves=num_leaves(tree),
        max_degree=max_degree(tree),
        total_work=tree.total_work,
        critical_path=critical_path_length(tree),
        total_output=float(tree.fout.sum()),
        total_exec=float(tree.nexec.sum()),
        max_mem_needed=tree.max_mem_needed,
    )
