"""The task-tree application model of the paper (Section 2.1).

A :class:`TaskTree` is a rooted *in-tree*: every node has at most one parent
and dependencies point towards the root.  Node ``i`` carries three pieces of
per-node data:

``fout[i]`` (paper: ``f_i``)
    size of the output datum produced by ``i`` and consumed by its parent
    (the weight of the edge ``i -> parent(i)``; the root's output must also
    reside in memory while the root executes),
``nexec[i]`` (paper: ``n_i``)
    size of the temporary *execution* datum needed while ``i`` runs,
``ptime[i]`` (paper: ``t_i``)
    processing time of the task.

Processing node ``i`` requires all three kinds of data resident at once
(Equation (1) of the paper)::

    MemNeeded_i = sum_{j in children(i)} fout[j] + nexec[i] + fout[i]

On completion, the children outputs and the execution datum are freed and
only ``fout[i]`` stays resident until the parent consumes it.

The class is a lightweight, immutable container: the structure (parents and
children) and the per-node data are NumPy arrays marked read-only.  All
structure-dependent quantities that the algorithms need repeatedly
(``mem_needed``, leaves, a default topological order) are computed once and
cached.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .._utils import as_float_array

__all__ = ["TaskTree", "NO_PARENT"]

#: Sentinel used in the ``parent`` array for the root node.
NO_PARENT: int = -1


class TaskTree:
    """Rooted in-tree of tasks with output/execution data sizes and durations.

    Parameters
    ----------
    parent:
        Sequence of length ``n``; ``parent[i]`` is the index of the parent of
        node ``i`` and ``-1`` (:data:`NO_PARENT`) for the root.  Exactly one
        root must be present and the structure must be acyclic (a tree).
    fout:
        Output data sizes ``f_i`` (scalar broadcast or length-``n`` sequence).
    nexec:
        Execution data sizes ``n_i``.  Defaults to ``0`` for every node.
    ptime:
        Processing times ``t_i``.  Defaults to ``1`` for every node.
    names:
        Optional human readable node names (purely informational).
    validate:
        When true (default) the structure is fully checked; building very
        large trees from trusted generators may disable it.
    copy:
        When true (default) the per-node arrays are defensively copied.
        ``copy=False`` adopts suitably typed input arrays *without* copying
        (they are marked read-only in place), which is how
        :class:`~repro.core.tree_store.TreeStore` materialises zero-copy
        tree views over a shared arena; see :meth:`from_arrays`.

    Notes
    -----
    Node identifiers are the integers ``0 .. n-1``; any external labelling
    must be mapped to this contiguous range first (see
    :mod:`repro.core.tree_builders`).
    """

    __slots__ = (
        "_parent",
        "_children",
        "_child_counts",
        "_child_offsets",
        "_child_nodes",
        "_fout",
        "_nexec",
        "_ptime",
        "_root",
        "_mem_needed",
        "_names",
        # Weak referenceability lets the experiment harness memoise per-tree
        # derived data (orders, minimum memory) without keeping trees alive.
        "__weakref__",
    )

    def __init__(
        self,
        parent: Sequence[int] | np.ndarray,
        fout: Sequence[float] | np.ndarray | float = 1.0,
        nexec: Sequence[float] | np.ndarray | float = 0.0,
        ptime: Sequence[float] | np.ndarray | float = 1.0,
        *,
        names: Sequence[str] | None = None,
        validate: bool = True,
        copy: bool = True,
    ) -> None:
        parent_arr = np.asarray(parent, dtype=np.int64)
        if copy:
            parent_arr = parent_arr.copy()
        if parent_arr.ndim != 1 or parent_arr.size == 0:
            raise ValueError("parent must be a non-empty 1-D sequence")
        n = int(parent_arr.size)

        self._parent = parent_arr
        self._fout = as_float_array(fout, n, "fout", copy=copy)
        self._nexec = as_float_array(nexec, n, "nexec", copy=copy)
        self._ptime = as_float_array(ptime, n, "ptime", copy=copy)

        roots = np.flatnonzero(parent_arr == NO_PARENT)
        if validate:
            self._validate_structure(parent_arr, roots)
        if roots.size != 1:
            raise ValueError(f"a TaskTree must have exactly one root, found {roots.size}")
        self._root = int(roots[0])

        self._init_child_planes()

        # MemNeeded_i  =  sum_{j in children(i)} f_j + n_i + f_i   (Equation (1))
        child_nodes = np.flatnonzero(parent_arr != NO_PARENT)
        child_sum = np.bincount(
            parent_arr[child_nodes], weights=self._fout[child_nodes], minlength=n
        )
        self._mem_needed = child_sum + self._nexec + self._fout

        if names is not None:
            if len(names) != n:
                raise ValueError("names must have one entry per node")
            self._names: tuple[str, ...] | None = tuple(str(x) for x in names)
        else:
            self._names = None

        for array in (
            self._parent,
            self._fout,
            self._nexec,
            self._ptime,
            self._mem_needed,
        ):
            array.setflags(write=False)

    def _init_child_planes(self) -> None:
        """Build the CSR children plane from the parent pointers.

        ``_child_nodes[_child_offsets[i]:_child_offsets[i+1]]`` are the
        children of ``i`` in increasing index order, via one stable argsort
        — exactly as the former per-node append loop produced.  The flat
        arrays are the *children plane* the array-native simulation kernels
        walk; the tuple-of-tuples view is materialised lazily for the
        (cold) callers that want per-node tuples.  Everything here is a
        pure function of ``_parent``, so pickling skips it (see
        ``__getstate__``) and the receiving process rebuilds it.
        """
        parent_arr = self._parent
        n = int(parent_arr.size)
        child_nodes = np.flatnonzero(parent_arr != NO_PARENT)
        child_parents = parent_arr[child_nodes]
        child_counts = np.bincount(child_parents, minlength=n)
        self._child_nodes = child_nodes[np.argsort(child_parents, kind="stable")]
        self._child_offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(child_counts, dtype=np.int64))
        )
        self._children: tuple[tuple[int, ...], ...] | None = None
        self._child_counts = child_counts
        for array in (self._child_counts, self._child_offsets, self._child_nodes):
            array.setflags(write=False)

    # ------------------------------------------------------------------ #
    # pickling (worker dispatch payloads)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle only the defining planes, not the derived children state.

        The CSR arrays (16 bytes/node) and any materialised tuple view are
        pure functions of the parent pointers; shipping them would inflate
        the per-tree payload of the process-pool backend by ~20%+.
        """
        drop = {"_children", "_child_nodes", "_child_offsets", "_child_counts"}
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "__weakref__" and slot not in drop
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._init_child_planes()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_structure(parent: np.ndarray, roots: np.ndarray) -> None:
        n = parent.size
        if np.any((parent < NO_PARENT) | (parent >= n)):
            raise ValueError("parent indices must be in [-1, n)")
        if np.any(parent == np.arange(n)):
            raise ValueError("a node cannot be its own parent")
        if roots.size != 1:
            raise ValueError(f"a TaskTree must have exactly one root, found {roots.size}")
        # Cycle detection: follow parent pointers with path compression-ish
        # marking.  A node whose chain reaches the root (or an already
        # verified node) is fine; otherwise there is a cycle.
        state = np.zeros(n, dtype=np.int8)  # 0 unknown, 1 verified, 2 in progress
        for start in range(n):
            if state[start] == 1:
                continue
            path = []
            node = start
            while True:
                if state[node] == 1:
                    break
                if state[node] == 2:
                    raise ValueError("parent pointers contain a cycle")
                state[node] = 2
                path.append(node)
                p = parent[node]
                if p == NO_PARENT:
                    break
                node = p
            for visited in path:
                state[visited] = 1

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of tasks in the tree."""
        return int(self._parent.size)

    def __len__(self) -> int:
        return self.n

    @property
    def root(self) -> int:
        """Index of the root task."""
        return self._root

    @property
    def parent(self) -> np.ndarray:
        """Read-only parent array (``-1`` for the root)."""
        return self._parent

    @property
    def fout(self) -> np.ndarray:
        """Read-only array of output data sizes ``f_i``."""
        return self._fout

    @property
    def nexec(self) -> np.ndarray:
        """Read-only array of execution data sizes ``n_i``."""
        return self._nexec

    @property
    def ptime(self) -> np.ndarray:
        """Read-only array of processing times ``t_i``."""
        return self._ptime

    @property
    def mem_needed(self) -> np.ndarray:
        """Read-only array of ``MemNeeded_i`` values (Equation (1))."""
        return self._mem_needed

    @property
    def names(self) -> tuple[str, ...] | None:
        """Optional node names (informational only)."""
        return self._names

    @property
    def children_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The flat children plane ``(offsets, nodes)`` in CSR form.

        ``nodes[offsets[i]:offsets[i+1]]`` are the children of node ``i`` in
        increasing index order.  Both arrays are read-only; this is the
        representation the array-native simulation kernels iterate, without
        materialising per-node tuples.
        """
        return self._child_offsets, self._child_nodes

    def _children_tuples(self) -> tuple[tuple[int, ...], ...]:
        """Materialise (and cache) the tuple-of-tuples children view."""
        children = self._children
        if children is None:
            grouped = self._child_nodes.tolist()
            bounds = self._child_offsets.tolist()
            children = self._children = tuple(
                tuple(grouped[bounds[i] : bounds[i + 1]]) for i in range(self.n)
            )
        return children

    def children(self, node: int) -> tuple[int, ...]:
        """Return the children of ``node`` (empty tuple for a leaf)."""
        return self._children_tuples()[node]

    def num_children(self, node: int) -> int:
        """Number of children of ``node``."""
        return int(self._child_counts[node])

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` has no children."""
        return not self._child_counts[node]

    def is_root(self, node: int) -> bool:
        """True when ``node`` is the root of the tree."""
        return node == self._root

    def leaves(self) -> np.ndarray:
        """Indices of all leaves, in increasing index order."""
        return np.flatnonzero(self._child_counts == 0)

    def nodes(self) -> range:
        """All node indices, ``0 .. n-1``."""
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(child, parent)`` dependency edges."""
        for node in range(self.n):
            p = self._parent[node]
            if p != NO_PARENT:
                yield node, int(p)

    # ------------------------------------------------------------------ #
    # traversal helpers
    # ------------------------------------------------------------------ #
    def ancestors(self, node: int, *, include_self: bool = False) -> Iterator[int]:
        """Yield the ancestors of ``node`` from parent to root."""
        if include_self:
            yield node
        current = self._parent[node]
        while current != NO_PARENT:
            yield int(current)
            current = self._parent[current]

    def subtree(self, node: int) -> np.ndarray:
        """Indices of the subtree rooted at ``node`` (preorder), as an array."""
        offsets = self._child_offsets.tolist()
        nodes = self._child_nodes.tolist()
        out: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(nodes[offsets[current] : offsets[current + 1]])
        return np.asarray(out, dtype=np.int64)

    def topological_order(self) -> np.ndarray:
        """A natural bottom-up topological order (children before parents).

        This is a deterministic depth-first postorder that visits children in
        increasing index order.  It is *not* memory-optimised; use
        :mod:`repro.orders` for the orderings studied in the paper.
        """
        order = np.empty(self.n, dtype=np.int64)
        offsets = self._child_offsets.tolist()
        nodes = self._child_nodes.tolist()
        cursor = 0
        # Iterative postorder over the CSR children plane.
        stack: list[tuple[int, bool]] = [(self._root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order[cursor] = node
                cursor += 1
            else:
                stack.append((node, True))
                # Reverse so the smallest-index child is processed first.
                for child in reversed(nodes[offsets[node] : offsets[node + 1]]):
                    stack.append((child, False))
        return order

    # ------------------------------------------------------------------ #
    # derived constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        parent: Sequence[int] | np.ndarray,
        fout: Sequence[float] | np.ndarray | float = 1.0,
        nexec: Sequence[float] | np.ndarray | float = 0.0,
        ptime: Sequence[float] | np.ndarray | float = 1.0,
        *,
        names: Sequence[str] | None = None,
        validate: bool = True,
        copy: bool = True,
    ) -> "TaskTree":
        """Build a tree from per-node arrays, optionally without copying them.

        With ``copy=False`` the arrays are adopted as-is when they already
        have the right dtype (``int64`` parents, ``float64`` data) and are
        marked read-only **in place** — the caller hands over ownership and
        must not mutate them afterwards.  This is the zero-copy path used by
        :class:`~repro.core.tree_store.TreeStore` views and by workers that
        receive tree data through :mod:`multiprocessing.shared_memory`:
        the resulting :class:`TaskTree` keeps referencing the external
        buffer instead of duplicating megabytes of node data per transfer.
        Arrays of a different dtype (or scalars) are still materialised.
        """
        return cls(
            parent,
            fout=fout,
            nexec=nexec,
            ptime=ptime,
            names=names,
            validate=validate,
            copy=copy,
        )

    def with_data(
        self,
        *,
        fout: Sequence[float] | np.ndarray | float | None = None,
        nexec: Sequence[float] | np.ndarray | float | None = None,
        ptime: Sequence[float] | np.ndarray | float | None = None,
    ) -> "TaskTree":
        """Return a copy of the tree with some per-node data replaced."""
        return TaskTree(
            self._parent.copy(),
            fout=self._fout if fout is None else fout,
            nexec=self._nexec if nexec is None else nexec,
            ptime=self._ptime if ptime is None else ptime,
            names=self._names,
            validate=False,
        )

    def to_networkx(self):
        """Export the tree as a :class:`networkx.DiGraph` (edges child->parent).

        Node attributes ``fout``, ``nexec``, ``ptime`` and the graph attribute
        ``root`` are populated so the tree can be reconstructed with
        :func:`repro.core.tree_builders.from_networkx`.
        """
        import networkx as nx

        graph = nx.DiGraph(root=self._root)
        for node in range(self.n):
            graph.add_node(
                node,
                fout=float(self._fout[node]),
                nexec=float(self._nexec[node]),
                ptime=float(self._ptime[node]),
            )
        for child, parent in self.edges():
            graph.add_edge(child, parent)
        return graph

    # ------------------------------------------------------------------ #
    # dunder conveniences
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskTree(n={self.n}, root={self._root}, "
            f"total_work={float(self._ptime.sum()):.3g}, "
            f"total_output={float(self._fout.sum()):.3g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskTree):
            return NotImplemented
        return (
            self.n == other.n
            and bool(np.array_equal(self._parent, other._parent))
            and bool(np.allclose(self._fout, other._fout))
            and bool(np.allclose(self._nexec, other._nexec))
            and bool(np.allclose(self._ptime, other._ptime))
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.n,
                self._root,
                self._parent.tobytes(),
                self._fout.tobytes(),
                self._nexec.tobytes(),
                self._ptime.tobytes(),
            )
        )

    # ------------------------------------------------------------------ #
    # aggregate properties used throughout the experiments
    # ------------------------------------------------------------------ #
    @property
    def total_work(self) -> float:
        """Sum of all processing times (used by the classical lower bound)."""
        return float(self._ptime.sum())

    @property
    def max_mem_needed(self) -> float:
        """Largest single-task memory requirement.

        No schedule (sequential or parallel) can use less memory than this,
        so it is a hard lower bound on any feasible memory budget.
        """
        return float(self._mem_needed.max())

    def check_same_structure(self, other: "TaskTree") -> bool:
        """True when ``other`` has identical parent pointers (data may differ)."""
        return bool(np.array_equal(self._parent, other._parent))
