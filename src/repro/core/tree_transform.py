"""Structural transformations of task trees.

The most important transformation is :func:`to_reduction_tree`, needed by the
``MemBookingRedTree`` baseline of Section 3.2: the booking strategy of
Eyraud-Dubois et al. only applies to *reduction trees*, i.e. trees where

1. no node has execution data (``n_i = 0``), and
2. every node's output is no larger than the sum of its inputs
   (``f_i <= sum_{j in children(i)} f_j``).

A general tree is turned into a reduction tree by adding *fictitious* leaf
children that carry the missing input volume; fictitious nodes cost zero
processing time, so the transformation does not change the total work nor the
precedence constraints between real tasks — but it does increase the memory
footprint of any traversal, which is exactly the drawback the paper points
out.

The module also provides subtree extraction and relabelling utilities used by
the workload generators and by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .task_tree import NO_PARENT, TaskTree

__all__ = [
    "ReductionTreeResult",
    "to_reduction_tree",
    "is_reduction_tree",
    "extract_subtree",
    "relabel_by_order",
]


def is_reduction_tree(tree: TaskTree, *, tolerance: float = 1e-9) -> bool:
    """Check the two reduction-tree properties of Section 3.2."""
    if np.any(tree.nexec > tolerance):
        return False
    for node in range(tree.n):
        kids = tree.children(node)
        if not kids:
            continue
        if tree.fout[node] > sum(tree.fout[c] for c in kids) + tolerance:
            return False
    return True


@dataclass(frozen=True)
class ReductionTreeResult:
    """Outcome of :func:`to_reduction_tree`.

    Attributes
    ----------
    tree:
        The transformed reduction tree.  Original nodes keep their indices
        ``0 .. n-1``; fictitious nodes are appended after them.
    original_n:
        Number of nodes of the original tree.
    fictitious_parent:
        For every fictitious node (index ``>= original_n`` in ``tree``), the
        original node it was attached to.
    added_output:
        Total output volume carried by fictitious nodes (the memory overhead
        introduced by the transformation).
    """

    tree: TaskTree
    original_n: int
    fictitious_parent: tuple[int, ...]
    added_output: float

    @property
    def num_fictitious(self) -> int:
        """Number of fictitious leaves added by the transformation."""
        return len(self.fictitious_parent)

    def is_fictitious(self, node: int) -> bool:
        """True when ``node`` (index in the transformed tree) is fictitious."""
        return node >= self.original_n

    def to_original(self, node: int) -> int | None:
        """Map a transformed-tree node back to the original tree (None if fictitious)."""
        return None if node >= self.original_n else node


def to_reduction_tree(tree: TaskTree) -> ReductionTreeResult:
    """Transform a general tree into a reduction tree by adding fictitious leaves.

    For every node ``i`` the transformation guarantees
    ``n'_i = 0`` and ``f_i <= sum of children outputs`` by attaching a single
    fictitious zero-time leaf child whose output size is::

        d_i = max( n_i,  f_i - sum_{j in children(i)} f_j )

    (only when ``d_i > 0``).  The first term folds the execution data into a
    fictitious input so that any schedule of the transformed tree reserves at
    least as much memory as the original task needs while it runs
    (``MemNeeded'_i = sum f_j + d_i + f_i >= MemNeeded_i``); the second term
    is the input volume missing for ``i`` to satisfy the reduction property.
    Nodes that already satisfy both properties are left untouched.

    The fictitious leaves model data that must be loaded before the node can
    execute (in a multifrontal solver: the contribution blocks allocated when
    the front is assembled), which is how reference [7] of the paper applies
    its strategy to general trees.
    """
    n = tree.n
    parent = list(tree.parent.tolist())
    fout = list(tree.fout.tolist())
    nexec = [0.0] * n
    ptime = list(tree.ptime.tolist())

    fict_parent: list[int] = []
    added_output = 0.0

    for node in range(n):
        kids = tree.children(node)
        child_output = float(sum(tree.fout[c] for c in kids))
        deficit = max(float(tree.nexec[node]), float(tree.fout[node]) - child_output)
        if deficit > 0:
            new_index = len(parent)
            parent.append(node)
            fout.append(deficit)
            nexec.append(0.0)
            ptime.append(0.0)
            fict_parent.append(node)
            added_output += deficit

    reduced = TaskTree(
        np.asarray(parent, dtype=np.int64),
        fout=np.asarray(fout),
        nexec=np.asarray(nexec),
        ptime=np.asarray(ptime),
        validate=False,
    )
    return ReductionTreeResult(
        tree=reduced,
        original_n=n,
        fictitious_parent=tuple(fict_parent),
        added_output=added_output,
    )


def extract_subtree(tree: TaskTree, node: int) -> tuple[TaskTree, np.ndarray]:
    """Return the subtree rooted at ``node`` as a standalone tree.

    Returns ``(subtree, original_indices)`` where ``original_indices[k]`` is
    the index in ``tree`` of node ``k`` of the extracted subtree.
    """
    nodes = tree.subtree(node)
    index = {int(orig): new for new, orig in enumerate(nodes)}
    parent = np.full(nodes.size, NO_PARENT, dtype=np.int64)
    for new, orig in enumerate(nodes):
        p = tree.parent[orig]
        if orig != node and p != NO_PARENT:
            parent[new] = index[int(p)]
    sub = TaskTree(
        parent,
        fout=tree.fout[nodes],
        nexec=tree.nexec[nodes],
        ptime=tree.ptime[nodes],
        validate=False,
    )
    return sub, nodes


def relabel_by_order(tree: TaskTree, order: np.ndarray) -> tuple[TaskTree, np.ndarray]:
    """Relabel the nodes of ``tree`` so that ``order`` becomes ``0, 1, ..., n-1``.

    ``order`` must be a permutation of the node indices.  Returns the
    relabelled tree and the mapping ``new_of_old`` such that node ``i`` of the
    original tree becomes node ``new_of_old[i]``.

    Relabelling by a topological order gives trees where parents always have
    a larger index than their children, a convenient normal form for tests.
    """
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(tree.n)):
        raise ValueError("order must be a permutation of the node indices")
    new_of_old = np.empty(tree.n, dtype=np.int64)
    new_of_old[order] = np.arange(tree.n, dtype=np.int64)

    parent = np.full(tree.n, NO_PARENT, dtype=np.int64)
    fout = np.empty(tree.n)
    nexec = np.empty(tree.n)
    ptime = np.empty(tree.n)
    for old in range(tree.n):
        new = new_of_old[old]
        p = tree.parent[old]
        parent[new] = NO_PARENT if p == NO_PARENT else new_of_old[p]
        fout[new] = tree.fout[old]
        nexec[new] = tree.nexec[old]
        ptime[new] = tree.ptime[old]
    relabelled = TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime, validate=False)
    return relabelled, new_of_old
