"""Serialization of task trees.

Two formats are supported:

* a **JSON** representation (:func:`to_dict` / :func:`from_dict`,
  :func:`save_json` / :func:`load_json`) that carries every node attribute
  and optional metadata, and
* a **compact text format** (:func:`save_text` / :func:`load_text`) with one
  node per line — ``id parent fout nexec ptime`` — similar to the plain-text
  dumps used by multifrontal solvers to export their assembly trees.

:func:`save_dataset` / :func:`load_dataset` persist a whole collection of
trees (one file per tree plus an ``index.json``), which is how the experiment
harness caches generated data sets.

For large collections there is also the binary **arena format** of
:class:`~repro.core.tree_store.TreeStore`: :func:`save_store` packs every
tree into one contiguous file and :func:`load_store` memory-maps it back, so
per-tree access is a zero-copy view instead of a parse.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from .task_tree import NO_PARENT, TaskTree
from .tree_store import TreeStore

__all__ = [
    "to_dict",
    "from_dict",
    "save_json",
    "load_json",
    "save_text",
    "load_text",
    "save_dataset",
    "load_dataset",
    "save_store",
    "load_store",
]

_FORMAT_VERSION = 1


def to_dict(tree: TaskTree, *, metadata: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Convert ``tree`` into a JSON-serialisable dictionary."""
    payload: dict[str, Any] = {
        "format": "repro.task_tree",
        "version": _FORMAT_VERSION,
        "n": tree.n,
        "parent": tree.parent.tolist(),
        "fout": tree.fout.tolist(),
        "nexec": tree.nexec.tolist(),
        "ptime": tree.ptime.tolist(),
    }
    if tree.names is not None:
        payload["names"] = list(tree.names)
    if metadata:
        payload["metadata"] = dict(metadata)
    return payload


def from_dict(payload: Mapping[str, Any]) -> TaskTree:
    """Rebuild a :class:`TaskTree` from :func:`to_dict` output."""
    if payload.get("format") != "repro.task_tree":
        raise ValueError("not a repro.task_tree payload")
    version = payload.get("version", 0)
    if version > _FORMAT_VERSION:
        raise ValueError(f"unsupported task tree format version {version}")
    return TaskTree(
        np.asarray(payload["parent"], dtype=np.int64),
        fout=np.asarray(payload["fout"], dtype=np.float64),
        nexec=np.asarray(payload["nexec"], dtype=np.float64),
        ptime=np.asarray(payload["ptime"], dtype=np.float64),
        names=payload.get("names"),
    )


def save_json(
    tree: TaskTree, path: str | Path, *, metadata: Mapping[str, Any] | None = None
) -> Path:
    """Write ``tree`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_dict(tree, metadata=metadata)))
    return path


def load_json(path: str | Path) -> TaskTree:
    """Load a tree previously written with :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))


def save_text(tree: TaskTree, path: str | Path) -> Path:
    """Write ``tree`` in the compact one-node-per-line text format.

    Each line is ``id parent fout nexec ptime`` where ``parent`` is ``-1``
    for the root.  Lines starting with ``#`` are comments.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = ["# id parent fout nexec ptime"]
    for node in range(tree.n):
        lines.append(
            f"{node} {int(tree.parent[node])} "
            f"{tree.fout[node]:.17g} {tree.nexec[node]:.17g} {tree.ptime[node]:.17g}"
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_text(path: str | Path) -> TaskTree:
    """Load a tree written by :func:`save_text`.

    Node ids may appear in any order but must cover ``0 .. n-1`` exactly.
    """
    entries: dict[int, tuple[int, float, float, float]] = {}
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 5:
            raise ValueError(f"malformed tree line: {raw!r}")
        node = int(fields[0])
        if node in entries:
            raise ValueError(f"duplicate node id {node}")
        entries[node] = (int(fields[1]), float(fields[2]), float(fields[3]), float(fields[4]))
    if not entries:
        raise ValueError(f"no nodes found in {path}")
    n = len(entries)
    if set(entries) != set(range(n)):
        raise ValueError("node ids must be exactly 0 .. n-1")
    parent = np.full(n, NO_PARENT, dtype=np.int64)
    fout = np.empty(n)
    nexec = np.empty(n)
    ptime = np.empty(n)
    for node, (p, f, ne, t) in entries.items():
        parent[node] = p
        fout[node] = f
        nexec[node] = ne
        ptime[node] = t
    return TaskTree(parent, fout=fout, nexec=nexec, ptime=ptime)


def save_dataset(
    trees: Iterable[TaskTree],
    directory: str | Path,
    *,
    name: str = "dataset",
    metadata: Mapping[str, Any] | None = None,
) -> Path:
    """Persist a collection of trees under ``directory``.

    Trees are written as ``tree_00000.json``, ``tree_00001.json``, ... and an
    ``index.json`` records the dataset name, the file list and any metadata.
    Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files = []
    for i, tree in enumerate(trees):
        filename = f"tree_{i:05d}.json"
        save_json(tree, directory / filename)
        files.append(filename)
    index = {
        "format": "repro.dataset",
        "version": _FORMAT_VERSION,
        "name": name,
        "files": files,
        "metadata": dict(metadata or {}),
    }
    (directory / "index.json").write_text(json.dumps(index, indent=2))
    return directory


def save_store(
    trees: Iterable[TaskTree] | TreeStore,
    path: str | Path,
    *,
    metadata: Mapping[str, Any] | None = None,
    planes=None,
) -> Path:
    """Write ``trees`` to ``path`` in the binary arena format.

    Accepts either an iterable of trees (packed on the fly) or an existing
    :class:`~repro.core.tree_store.TreeStore`.  ``planes`` (optional named
    per-tree plane columns, e.g. the workspace planes of
    :func:`repro.batch.planes.workspace_planes`) writes the version-2 arena
    format; without planes the bytes are the version-1 format unchanged,
    and both versions load through :func:`load_store`.  Returns the path.
    """
    if isinstance(trees, TreeStore):
        if metadata is not None or planes is not None:
            raise ValueError(
                "metadata/planes can only be set when packing trees, "
                "not when re-saving an existing store"
            )
        store = trees
    else:
        store = TreeStore.pack(trees, metadata=metadata, planes=planes)
    return store.save(path)


def load_store(path: str | Path, *, use_mmap: bool = True, validate: bool = False) -> TreeStore:
    """Open an arena file written by :func:`save_store`.

    The default is an mmap-backed store: tree data stays on disk until a
    :meth:`~repro.core.tree_store.TreeStore.tree` view actually touches it.
    ``validate=True`` eagerly runs the full per-tree structure checks — use
    it for files that did not come from this library's own :func:`save_store`
    (the arena header checks cannot vouch for the parent pointers inside).
    """
    store = TreeStore.load(path, use_mmap=use_mmap)
    if validate:
        store.trees(validate=True)
    return store


def load_dataset(directory: str | Path) -> list[TaskTree]:
    """Load every tree of a dataset written by :func:`save_dataset`."""
    directory = Path(directory)
    index_path = directory / "index.json"
    if not index_path.exists():
        raise FileNotFoundError(f"{index_path} not found; not a dataset directory")
    index = json.loads(index_path.read_text())
    if index.get("format") != "repro.dataset":
        raise ValueError("not a repro.dataset directory")
    return [load_json(directory / filename) for filename in index["files"]]
