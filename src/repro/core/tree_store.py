"""Contiguous arena storage for whole datasets of task trees.

A :class:`TreeStore` packs the node data of many :class:`~repro.core.task_tree.TaskTree`
instances into **one contiguous buffer** (the *arena*):

* the same arena bytes serve as the on-disk format (:meth:`TreeStore.save` /
  :meth:`TreeStore.load`, mmap-backed so loading a multi-gigabyte dataset
  touches no data until it is used),
* as the transport format for :mod:`multiprocessing.shared_memory`
  (:meth:`TreeStore.to_shared_memory` / :meth:`TreeStore.attach`), and
* as the backing buffer of **zero-copy per-tree views**: :meth:`TreeStore.tree`
  slices the arena in O(1) and materialises a :class:`TaskTree` through
  :meth:`TaskTree.from_arrays(..., copy=False) <repro.core.task_tree.TaskTree.from_arrays>`,
  so every tree's ``parent``/``fout``/``nexec``/``ptime`` arrays reference the
  arena directly instead of owning private copies.

This is what lets the shared-memory sweep backend
(:class:`repro.experiments.backends.SharedMemoryBackend`) ship a whole
dataset to every worker once, as a named shared-memory block, and afterwards
dispatch work items that carry only ``(arena name, tree index, instance
parameters)`` — a few dozen bytes — instead of pickling full NumPy arrays
per task.

Arena layout (little-endian)::

    0   8 bytes   magic  b"MTARENA1"
    8   u64       format version (1, or 2 when plane columns are present)
    16  u64       number of trees
    24  u64       total number of nodes over all trees
    32  u64       length of the JSON metadata block
    40  u64       offset of the data section (8-byte aligned)
    48  ...       JSON metadata (per-tree names, free-form dataset metadata;
                  version 2 adds "planes": [[name, dtype], ...])
    data_offset   int64[n_trees + 1]   node offsets (prefix sums of sizes)
                  int64[total_nodes]   parent pointers (tree-local, root = -1)
                  f64[total_nodes]     fout
                  f64[total_nodes]     nexec
                  f64[total_nodes]     ptime
    (version 2)   per plane, in metadata order:
                  int64[n_trees + 1]   value offsets (prefix sums of lengths)
                  dtype[total_values]  the concatenated per-tree plane values

**Plane columns** (format version 2) are optional named per-tree arrays of
arbitrary length riding in the same arena: the batch subsystem stores the
static simulation planes of every tree (children CSR, AO/EO orders,
activation request/release blocks, tree-pure scalars — see
:mod:`repro.batch.planes`) so shared-memory workers and batch lanes inherit
them zero-copy instead of recomputing them per process.  Version-1 files
(no planes) load unchanged, and arenas packed without planes are written as
version 1 byte for byte, so every pre-existing artefact and cache key is
untouched.
"""

from __future__ import annotations

import json
import mmap
import struct
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing import shared_memory

from .task_tree import NO_PARENT, TaskTree

__all__ = ["TreeStore"]

_MAGIC = b"MTARENA1"
#: Highest format version this build reads; arenas without plane columns
#: are still *written* as version 1 (byte-identical to the PR 2 format).
_VERSION = 2
#: magic, version, n_trees, total_nodes, meta_len, data_offset
_HEADER = struct.Struct("<8sQQQQQ")

#: Plane-column dtypes the arena accepts (8-byte scalars keep every section
#: 8-aligned without padding bookkeeping).
_PLANE_DTYPES = {"<i8", "<f8"}


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class TreeStore:
    """A read-only collection of task trees backed by one contiguous arena.

    Instances are created through one of the classmethods:

    * :meth:`pack` — build an arena from existing :class:`TaskTree` objects;
    * :meth:`load` — map (or read) an arena file written by :meth:`save`;
    * :meth:`attach` — open an arena living in named shared memory.

    The store itself only holds NumPy views into the arena; :meth:`view`
    returns the raw per-tree arrays in O(1) and :meth:`tree` wraps them into
    a :class:`TaskTree` without copying any node data.
    """

    def __init__(
        self,
        buffer: "bytes | bytearray | memoryview | mmap.mmap",
        *,
        shm: "shared_memory.SharedMemory | None" = None,
        mmap_obj: mmap.mmap | None = None,
    ) -> None:
        """Wrap an existing arena ``buffer`` (bytes, bytearray, mmap or shm view).

        ``shm`` / ``mmap_obj`` are the owning resources, kept alive with the
        store and released by :meth:`close`.  Most callers should use the
        :meth:`pack` / :meth:`load` / :meth:`attach` classmethods instead.
        """
        self._buffer = buffer
        self._shm = shm
        self._mmap = mmap_obj

        size = memoryview(buffer).nbytes
        if size < _HEADER.size:
            raise ValueError("buffer too small to hold a TreeStore arena header")
        magic, version, n_trees, total_nodes, meta_len, data_offset = _HEADER.unpack_from(
            buffer, 0
        )
        if magic != _MAGIC:
            raise ValueError("not a TreeStore arena (bad magic)")
        if version > _VERSION:
            raise ValueError(f"unsupported TreeStore arena version {version}")
        # Bound every header field before trusting it: a corrupt data_offset
        # or meta_len must fail here, not surface as garbage tree views.
        if data_offset % 8 != 0 or data_offset < _align8(_HEADER.size + meta_len):
            raise ValueError("not a TreeStore arena (invalid data offset)")
        if size < _HEADER.size + meta_len:
            raise ValueError("truncated TreeStore arena: metadata exceeds the buffer")
        expected = data_offset + 8 * (n_trees + 1) + 8 * total_nodes * 4
        if size < expected:
            raise ValueError(
                f"truncated TreeStore arena: {size} bytes, layout needs {expected}"
            )
        meta = json.loads(bytes(memoryview(buffer)[_HEADER.size : _HEADER.size + meta_len]))

        self._n_trees = int(n_trees)
        self._total_nodes = int(total_nodes)
        self._names: list[list[str] | None] = meta.get("names") or [None] * self._n_trees
        self.metadata: dict[str, Any] = meta.get("metadata", {})

        def view(dtype: "np.dtype | type", count: int, offset: int) -> np.ndarray:
            array = np.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
            array.setflags(write=False)
            return array

        cursor = int(data_offset)
        self._offsets = view(np.int64, n_trees + 1, cursor)
        cursor += 8 * (n_trees + 1)
        if n_trees and (
            int(self._offsets[0]) != 0
            or int(self._offsets[-1]) != total_nodes
            or bool(np.any(np.diff(self._offsets) <= 0))
        ):
            raise ValueError("not a TreeStore arena (tree offsets are not monotone)")
        self._parent = view(np.int64, total_nodes, cursor)
        cursor += 8 * total_nodes
        self._fout = view(np.float64, total_nodes, cursor)
        cursor += 8 * total_nodes
        self._nexec = view(np.float64, total_nodes, cursor)
        cursor += 8 * total_nodes
        self._ptime = view(np.float64, total_nodes, cursor)
        cursor += 8 * total_nodes

        # Version-2 plane columns, described by the embedded metadata; every
        # section is bounds-checked before any view is materialised.
        self._planes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        plane_meta = meta.get("planes") or []
        if version < 2 and plane_meta:
            raise ValueError("not a TreeStore arena (version 1 cannot carry planes)")
        for entry in plane_meta:
            name, dtype_str = str(entry[0]), str(entry[1])
            if dtype_str not in _PLANE_DTYPES:
                raise ValueError(f"unsupported plane dtype {dtype_str!r} in arena")
            expected += 8 * (n_trees + 1)
            if size < expected:
                raise ValueError("truncated TreeStore arena: plane offsets exceed the buffer")
            plane_offsets = view(np.int64, n_trees + 1, cursor)
            cursor += 8 * (n_trees + 1)
            total_values = int(plane_offsets[-1]) if n_trees else 0
            if int(plane_offsets[0]) != 0 or bool(np.any(np.diff(plane_offsets) < 0)):
                raise ValueError("not a TreeStore arena (plane offsets are not monotone)")
            expected += 8 * total_values
            if size < expected:
                raise ValueError("truncated TreeStore arena: plane values exceed the buffer")
            values = view(np.dtype(dtype_str), total_values, cursor)
            cursor += 8 * total_values
            self._planes[name] = (plane_offsets, values)
        self._nbytes = int(expected)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalise_planes(
        planes: "Mapping[str, Sequence[np.ndarray]] | None", n_trees: int
    ) -> list[tuple[str, str, np.ndarray, list[np.ndarray]]]:
        """Validate plane columns: ``(name, dtype str, offsets, arrays)`` each."""
        if not planes:
            return []
        normalised = []
        for name, arrays in planes.items():
            arrays = [np.ascontiguousarray(a) for a in arrays]
            if len(arrays) != n_trees:
                raise ValueError(
                    f"plane {name!r} has {len(arrays)} arrays for {n_trees} trees"
                )
            dtype = arrays[0].dtype if arrays else np.dtype(np.float64)
            dtype_str = dtype.newbyteorder("<").str
            if dtype_str not in _PLANE_DTYPES:
                raise ValueError(
                    f"plane {name!r} has dtype {dtype}; planes must be int64 or float64"
                )
            offsets = np.zeros(n_trees + 1, dtype=np.int64)
            for i, array in enumerate(arrays):
                if array.ndim != 1:
                    raise ValueError(f"plane {name!r} arrays must be 1-D")
                if array.dtype != dtype:
                    raise ValueError(f"plane {name!r} mixes dtypes across trees")
                offsets[i + 1] = offsets[i] + array.size
            normalised.append((name, dtype_str, offsets, arrays))
        return normalised

    @classmethod
    def _layout(
        cls,
        trees: Iterable[TaskTree],
        metadata: Mapping[str, Any] | None,
        planes: "Mapping[str, Sequence[np.ndarray]] | None" = None,
    ):
        """Compute the arena layout: (trees, offsets, planes, meta bytes, data offset, nbytes)."""
        tree_list = list(trees)
        if not tree_list:
            raise ValueError("cannot pack an empty collection of trees")
        sizes = np.asarray([t.n for t in tree_list], dtype=np.int64)
        offsets = np.zeros(len(tree_list) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        plane_list = cls._normalise_planes(planes, len(tree_list))

        names: list[list[str] | None] = [
            list(t.names) if t.names is not None else None for t in tree_list
        ]
        meta = {
            "names": names if any(n is not None for n in names) else None,
            "metadata": dict(metadata or {}),
        }
        if plane_list:
            meta["planes"] = [[name, dtype_str] for name, dtype_str, _, _ in plane_list]
        meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        data_offset = _align8(_HEADER.size + len(meta_bytes))
        nbytes = data_offset + 8 * (len(tree_list) + 1) + 8 * int(offsets[-1]) * 4
        for _, _, plane_offsets, _ in plane_list:
            nbytes += 8 * (len(tree_list) + 1) + 8 * int(plane_offsets[-1])
        return tree_list, offsets, plane_list, meta_bytes, data_offset, nbytes

    @staticmethod
    def _write_arena(
        buffer,
        tree_list: list[TaskTree],
        offsets: np.ndarray,
        plane_list,
        meta_bytes: bytes,
        data_offset: int,
    ) -> None:
        """Serialise ``tree_list`` into ``buffer`` (bytearray or shm view)."""
        total = int(offsets[-1])
        # Plane-less arenas keep the historical version-1 bytes.
        version = 2 if plane_list else 1
        _HEADER.pack_into(
            buffer, 0, _MAGIC, version, len(tree_list), total, len(meta_bytes), data_offset
        )
        buffer[_HEADER.size : _HEADER.size + len(meta_bytes)] = meta_bytes

        cursor = data_offset
        off_view = np.frombuffer(buffer, dtype=np.int64, count=len(tree_list) + 1, offset=cursor)
        off_view[:] = offsets
        cursor += off_view.nbytes
        for dtype, attr in (
            (np.int64, "parent"),
            (np.float64, "fout"),
            (np.float64, "nexec"),
            (np.float64, "ptime"),
        ):
            column = np.frombuffer(buffer, dtype=dtype, count=total, offset=cursor)
            for i, tree in enumerate(tree_list):
                column[offsets[i] : offsets[i + 1]] = getattr(tree, attr)
            cursor += column.nbytes
        for _, dtype_str, plane_offsets, arrays in plane_list:
            off_view = np.frombuffer(
                buffer, dtype=np.int64, count=len(tree_list) + 1, offset=cursor
            )
            off_view[:] = plane_offsets
            cursor += off_view.nbytes
            values = np.frombuffer(
                buffer, dtype=np.dtype(dtype_str), count=int(plane_offsets[-1]), offset=cursor
            )
            for i, array in enumerate(arrays):
                values[plane_offsets[i] : plane_offsets[i + 1]] = array
            cursor += values.nbytes

    @classmethod
    def pack(
        cls,
        trees: Iterable[TaskTree],
        *,
        metadata: Mapping[str, Any] | None = None,
        planes: "Mapping[str, Sequence[np.ndarray]] | None" = None,
    ) -> "TreeStore":
        """Pack ``trees`` (and optional plane columns) into a fresh arena.

        ``planes`` maps plane names to one int64/float64 array per tree of
        arbitrary per-tree length (see the module docstring); packing
        without planes produces the version-1 bytes unchanged.
        """
        tree_list, offsets, plane_list, meta_bytes, data_offset, nbytes = cls._layout(
            trees, metadata, planes
        )
        arena = bytearray(nbytes)
        cls._write_arena(arena, tree_list, offsets, plane_list, meta_bytes, data_offset)
        return cls(arena)

    @classmethod
    def pack_to_shared_memory(
        cls,
        trees: Iterable[TaskTree],
        *,
        metadata: Mapping[str, Any] | None = None,
        planes: "Mapping[str, Sequence[np.ndarray]] | None" = None,
        name: str | None = None,
    ) -> "shared_memory.SharedMemory":
        """Pack ``trees`` straight into a new named shared-memory block.

        Unlike ``pack(...).to_shared_memory()`` this serialises directly into
        the segment — no intermediate arena copy, so peak memory stays at one
        arena regardless of dataset size (what the sweep backend uses).
        Ownership semantics are those of :meth:`to_shared_memory`.
        """
        from multiprocessing import shared_memory

        tree_list, offsets, plane_list, meta_bytes, data_offset, nbytes = cls._layout(
            trees, metadata, planes
        )
        shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        try:
            cls._write_arena(shm.buf, tree_list, offsets, plane_list, meta_bytes, data_offset)
        except BaseException:
            shm.unlink()
            try:
                shm.close()
            except BufferError:  # the unwinding frame may still hold views
                pass
            raise
        return shm

    @classmethod
    def load(cls, path: str | Path, *, use_mmap: bool = True) -> "TreeStore":
        """Open an arena file written by :meth:`save`.

        With ``use_mmap=True`` (default) the file is memory-mapped read-only:
        tree data is paged in lazily by the OS, so opening a huge dataset is
        O(1) in I/O and several stores/processes can share the page cache.
        """
        path = Path(path)
        if use_mmap:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            return cls(mapped, mmap_obj=mapped)
        return cls(path.read_bytes())

    @classmethod
    def attach(cls, name: str) -> "TreeStore":
        """Attach to an arena published with :meth:`to_shared_memory`.

        The returned store keeps the shared-memory segment open for its
        lifetime; the segment itself stays owned (and is eventually unlinked)
        by the publishing process.
        """
        shm = _open_shared_memory(name)
        return cls(shm.buf, shm=shm)

    # ------------------------------------------------------------------ #
    # persistence and sharing
    # ------------------------------------------------------------------ #
    def _arena_view(self) -> memoryview:
        """Zero-copy view of the arena bytes (exactly :attr:`nbytes` long)."""
        return memoryview(self._buffer)[: self._nbytes]

    def tobytes(self) -> bytes:
        """Return a copy of the arena bytes (exactly :attr:`nbytes` long)."""
        return bytes(self._arena_view())

    def save(self, path: str | Path) -> Path:
        """Write the arena to ``path`` and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self._arena_view())
        return path

    def to_shared_memory(self, name: str | None = None) -> "shared_memory.SharedMemory":
        """Copy the arena into a named shared-memory block and return it.

        The arena is copied straight from the backing buffer (no intermediate
        ``bytes`` duplicate — for the multi-gigabyte datasets the arena
        targets, a transient second copy would double the peak footprint).
        The caller owns the returned
        :class:`multiprocessing.shared_memory.SharedMemory` and must
        ``close()`` and ``unlink()`` it when every consumer is done; workers
        attach with :meth:`attach` using ``shm.name``.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=self._nbytes, name=name)
        shm.buf[: self._nbytes] = self._arena_view()
        return shm

    def close(self) -> None:
        """Drop the arena views and release any mmap / shared-memory handle.

        Every :class:`TaskTree` view previously handed out must have been
        dropped first — their arrays reference the arena buffer, and closing
        a buffer with live exports raises :class:`BufferError`.
        """
        self._offsets = self._parent = self._fout = self._nexec = self._ptime = None  # type: ignore[assignment]
        self._planes = {}
        self._buffer = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Size of the arena in bytes."""
        return self._nbytes

    @property
    def total_nodes(self) -> int:
        """Total number of nodes over all stored trees."""
        return self._total_nodes

    def __len__(self) -> int:
        return self._n_trees

    def num_nodes(self, index: int) -> int:
        """Number of nodes of tree ``index``."""
        start, stop = self._slice(index)
        return stop - start

    def _slice(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self._n_trees:
            raise IndexError(f"tree index {index} out of range [0, {self._n_trees})")
        return int(self._offsets[index]), int(self._offsets[index + 1])

    def view(self, index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """O(1) raw views ``(parent, fout, nexec, ptime)`` of tree ``index``.

        The arrays are read-only slices of the arena; parents are tree-local
        (the root holds :data:`~repro.core.task_tree.NO_PARENT`).
        """
        start, stop = self._slice(index)
        return (
            self._parent[start:stop],
            self._fout[start:stop],
            self._nexec[start:stop],
            self._ptime[start:stop],
        )

    @property
    def plane_names(self) -> tuple[str, ...]:
        """Names of the plane columns carried by this arena (may be empty)."""
        return tuple(self._planes)

    def plane(self, name: str, index: int) -> np.ndarray:
        """O(1) read-only view of plane ``name`` for tree ``index``."""
        try:
            offsets, values = self._planes[name]
        except KeyError:
            raise KeyError(
                f"arena has no plane {name!r}; available: {sorted(self._planes)}"
            ) from None
        if not 0 <= index < self._n_trees:
            raise IndexError(f"tree index {index} out of range [0, {self._n_trees})")
        return values[int(offsets[index]) : int(offsets[index + 1])]

    def planes_for(self, index: int) -> dict[str, np.ndarray]:
        """All plane views of tree ``index`` as ``{name: array}`` (zero-copy)."""
        return {name: self.plane(name, index) for name in self._planes}

    def tree(self, index: int, *, validate: bool = False) -> TaskTree:
        """Materialise tree ``index`` as a zero-copy :class:`TaskTree` view.

        Node data arrays of the result alias the arena (no bytes are
        duplicated).  ``validate`` defaults to False because arenas are
        produced from already-validated trees; pass True for untrusted files.
        """
        parent, fout, nexec, ptime = self.view(index)
        return TaskTree.from_arrays(
            parent,
            fout=fout,
            nexec=nexec,
            ptime=ptime,
            names=self._names[index],
            validate=validate,
            copy=False,
        )

    def trees(self, *, validate: bool = False) -> list[TaskTree]:
        """Materialise every stored tree (each one a zero-copy view).

        ``validate=True`` runs the full :class:`TaskTree` structure checks on
        every view — the option to use on arenas from untrusted sources,
        whose parent pointers the header checks alone cannot vouch for.
        """
        return [self.tree(i, validate=validate) for i in range(self._n_trees)]

    def __iter__(self) -> Iterator[TaskTree]:
        return iter(self.trees())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TreeStore(trees={self._n_trees}, total_nodes={self._total_nodes}, "
            f"nbytes={self._nbytes})"
        )


def _open_shared_memory(name: str):
    """Open an existing named shared-memory block without tracker churn.

    On Python >= 3.13 ``track=False`` prevents the per-process resource
    tracker from registering a segment this process does not own.  Older
    interpreters always register on attach, and because forked workers share
    one tracker process, N attachments to the same arena would race their
    (de)registrations and spam ``KeyError`` warnings when the owner unlinks.
    There the registration is suppressed for the duration of the attach —
    ownership (and cleanup responsibility) stays with the publishing process.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register_without_shm(rname: str, rtype: str) -> None:  # pragma: no cover - py<3.13 shim
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = register_without_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
