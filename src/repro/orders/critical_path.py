"""Critical-path ordering (the ``CP`` order of Section 7.3.1).

Nodes are sorted by non-increasing *bottom level*, i.e. by the total
processing time of the path from the node to the root (including both ends).
Since the bottom level of a node is never smaller than its parent's, the
resulting order is a valid topological order (children first) whenever
processing times are positive; zero-duration ties are broken by depth so the
order remains topological in all cases.

The paper observes that using ``CP`` as the *execution* order consistently
gives a small improvement over using the activation postorder for execution
(Figures 8 and 14).
"""

from __future__ import annotations

import numpy as np

from ..core import tree_metrics
from ..core.task_tree import TaskTree
from .base import Ordering

__all__ = ["critical_path_order"]


def critical_path_order(tree: TaskTree, *, name: str = "CP") -> Ordering:
    """Order the nodes by non-increasing bottom level.

    Ties (equal bottom levels, which happen with zero-duration tasks) are
    broken by non-increasing depth and then node index, which guarantees the
    returned ordering is topological for any tree.
    """
    bottom = tree_metrics.bottom_levels(tree)
    depth = tree_metrics.depths(tree)
    n = tree.n
    order = sorted(range(n), key=lambda i: (-bottom[i], -depth[i], i))
    return Ordering(np.asarray(order, dtype=np.int64), name=name)
