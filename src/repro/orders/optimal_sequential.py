"""Optimal sequential traversal for peak memory (the ``OptSeq`` order).

Postorder traversals can be arbitrarily worse than general topological
orders for peak memory minimisation.  Liu's generalised tree-pebbling
algorithm [Liu 1987] computes an *optimal* (not necessarily postorder)
traversal in polynomial time; the paper uses it as one of the candidate
activation/execution orders in Section 7.3.1 (``OptSeq``).

Algorithm sketch
----------------
Every subtree traversal is summarised by its *hill–valley decomposition*: a
sequence of segments ``(h_1, v_1), ..., (h_k, v_k)`` where, relative to the
memory level at the start of the segment, ``h_j`` is the peak reached while
executing the segment and ``v_j`` the resident memory left when it ends.
The canonical decomposition (cut after each global maximum at the minimum
that follows it) has non-increasing ``h_j - v_j``, and Liu's combining
theorem states that the optimal interleaving of independent canonical
sequences executes their segments atomically, sorted by non-increasing
``h - v``.

The traversal of a subtree rooted at ``i`` is therefore obtained by merging
the children's canonical segment lists by non-increasing ``h - v``, appending
the processing of ``i`` itself, and re-normalising the result into canonical
form.  We re-normalise from the exact node-level profile (via
:func:`repro.orders.peak_memory.sequential_profile` arithmetic) so no
approximation is introduced at segment boundaries.

Complexity is ``O(n^2)`` in the worst case (deep chains) and close to
``O(n log n)`` on bushy trees; the optimal traversal is only used on the
moderate-size instances of the ordering-comparison experiments, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree
from .base import Ordering

__all__ = ["optimal_sequential_order", "optimal_sequential_peak"]


@dataclass
class _Segment:
    """A hill–valley segment: ``nodes`` executed as an atomic block."""

    hill: float  # peak memory reached, relative to the segment start
    valley: float  # resident memory at the end, relative to the segment start
    nodes: list[int]

    @property
    def key(self) -> float:
        """Sort key of Liu's combining theorem (larger first)."""
        return self.hill - self.valley


def _merge_children_segments(children_segments: list[list[_Segment]]) -> list[_Segment]:
    """Merge canonical segment lists by non-increasing ``hill - valley``.

    Within each child list the key is non-increasing (canonical property), so
    a k-way merge preserves every child's internal order.  Ties are broken by
    child position for determinism.
    """
    if len(children_segments) == 1:
        return list(children_segments[0])
    heap: list[tuple[float, int, int]] = []
    for child_pos, segments in enumerate(children_segments):
        if segments:
            heap.append((-segments[0].key, child_pos, 0))
    heapify(heap)
    merged: list[_Segment] = []
    while heap:
        _, child_pos, index = heappop(heap)
        segments = children_segments[child_pos]
        merged.append(segments[index])
        if index + 1 < len(segments):
            heappush(heap, (-segments[index + 1].key, child_pos, index + 1))
    return merged


def _canonical_segments(
    tree: TaskTree, nodes: list[int], child_fout: np.ndarray
) -> list[_Segment]:
    """Canonical hill–valley decomposition of executing ``nodes`` in order.

    ``nodes`` must be the full node set of a subtree, listed in a valid
    topological order of that subtree.  The profile is computed relative to
    an empty memory (only data internal to the subtree is accounted for,
    which is correct because data from other subtrees is an additive offset).

    ``child_fout`` is the per-node sum of children outputs, precomputed once
    per tree: because ``nodes`` is a complete subtree, the inputs a node
    consumes when it executes are exactly the outputs of all its children,
    which lets the whole profile be built with vectorised prefix sums
    instead of the seed's per-node Python walk (this function runs once per
    internal node, so the walk made ``OptSeq`` quadratic in Python ops).
    """
    nodes_arr = np.asarray(nodes, dtype=np.int64)
    out = tree.fout[nodes_arr]
    # Memory step of each node: allocate its output, free its inputs.
    delta = out - child_fout[nodes_arr]
    residents = np.cumsum(delta)
    # Peak while a node runs: memory before it, plus execution data + output.
    peaks = residents - delta + tree.nexec[nodes_arr] + out

    n = len(nodes)
    segments: list[_Segment] = []
    start = 0
    base = 0.0  # resident memory at the start of the current segment
    while start < n:
        # Position of the (first) maximum peak in the remaining suffix.
        hill_pos = start + int(np.argmax(peaks[start:]))
        hill = float(peaks[hill_pos])
        # Position of the (first) minimum resident at or after the hill.
        valley_pos = hill_pos + int(np.argmin(residents[hill_pos:]))
        valley = float(residents[valley_pos])
        segments.append(
            _Segment(hill=hill - base, valley=valley - base, nodes=list(nodes[start : valley_pos + 1]))
        )
        base = valley
        start = valley_pos + 1
    return segments


def _subtree_segments(tree: TaskTree) -> list[_Segment]:
    """Canonical segments of the optimal traversal of the whole tree."""
    fout = tree.fout
    nexec = tree.nexec
    # Per-node sum of children outputs, accumulated directly (not recovered
    # from ``mem_needed`` by subtraction, which could lose bits).
    child_fout = np.zeros(tree.n, dtype=np.float64)
    has_parent = tree.parent != NO_PARENT
    np.add.at(child_fout, tree.parent[has_parent], fout[has_parent])
    segments_of: dict[int, list[_Segment]] = {}
    for node in tree.topological_order():  # children before parents
        kids = tree.children(node)
        if not kids:
            segments_of[node] = [
                _Segment(hill=float(nexec[node] + fout[node]), valley=float(fout[node]), nodes=[node])
            ]
            continue
        merged = _merge_children_segments([segments_of.pop(c) for c in kids])
        order_nodes: list[int] = []
        for segment in merged:
            order_nodes.extend(segment.nodes)
        order_nodes.append(node)
        segments_of[node] = _canonical_segments(tree, order_nodes, child_fout)
    return segments_of[tree.root]


def optimal_sequential_order(tree: TaskTree, *, name: str = "OptSeq") -> Ordering:
    """Return a peak-memory-optimal sequential traversal of ``tree``.

    The returned :class:`~repro.orders.base.Ordering` is a (generally
    non-postorder) topological order whose sequential peak memory is minimal
    over *all* topological orders of the tree.
    """
    sequence: list[int] = []
    for segment in _subtree_segments(tree):
        sequence.extend(segment.nodes)
    return Ordering(np.asarray(sequence, dtype=np.int64), name=name)


def optimal_sequential_peak(tree: TaskTree) -> float:
    """Minimum achievable sequential peak memory over all topological orders."""
    from .peak_memory import sequential_peak_memory

    return sequential_peak_memory(tree, optimal_sequential_order(tree), check=False)
