"""Optimal sequential traversal for peak memory (the ``OptSeq`` order).

Postorder traversals can be arbitrarily worse than general topological
orders for peak memory minimisation.  Liu's generalised tree-pebbling
algorithm [Liu 1987] computes an *optimal* (not necessarily postorder)
traversal in polynomial time; the paper uses it as one of the candidate
activation/execution orders in Section 7.3.1 (``OptSeq``).

Algorithm sketch
----------------
Every subtree traversal is summarised by its *hill–valley decomposition*: a
sequence of segments ``(h_1, v_1), ..., (h_k, v_k)`` where, relative to the
memory level at the start of the segment, ``h_j`` is the peak reached while
executing the segment and ``v_j`` the resident memory left when it ends.
The canonical decomposition (cut after each global maximum at the minimum
that follows it) has non-increasing ``h_j - v_j``, and Liu's combining
theorem states that the optimal interleaving of independent canonical
sequences executes their segments atomically, sorted by non-increasing
``h - v``.

The traversal of a subtree rooted at ``i`` is therefore obtained by merging
the children's canonical segment lists by non-increasing ``h - v``, appending
the processing of ``i`` itself, and re-normalising the result into canonical
form.  We re-normalise from the exact node-level profile (via
:func:`repro.orders.peak_memory.sequential_profile` arithmetic) so no
approximation is introduced at segment boundaries.

Representation
--------------
A subtree's decomposition is held as four NumPy arrays — the traversal
``order``, segment ``bounds`` (``order[bounds[j]:bounds[j+1]]`` is segment
``j``) and per-segment ``hills``/``valleys`` — processed iteratively over a
bottom-up topological order.  The seed implementation materialised one
``_Segment`` dataclass (with a Python node list) per segment per level,
which dominated the pre-computation cost of order-choice sweeps; the
array accumulation performs the identical merge and re-normalisation
(same tie-breaking, same first-occurrence argmax/argmin semantics, hence
bit-identical traversals) without the per-node object churn.

Complexity is ``O(n^2)`` in the worst case (deep chains) and close to
``O(n log n)`` on bushy trees; the optimal traversal is only used on the
moderate-size instances of the ordering-comparison experiments, as in the
paper.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree
from .base import Ordering

__all__ = ["optimal_sequential_order", "optimal_sequential_peak"]


#: A subtree decomposition: (order, bounds, hills, valleys).  ``order`` lists
#: the subtree's nodes in traversal order; segment ``j`` spans
#: ``order[bounds[j]:bounds[j+1]]`` and has hill ``hills[j]`` / valley
#: ``valleys[j]`` relative to the memory level at its start.
_Decomposition = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _canonical_decomposition(
    order: np.ndarray, tree: TaskTree, child_fout: np.ndarray
) -> _Decomposition:
    """Canonical hill–valley decomposition of executing ``order`` as given.

    ``order`` must be the full node set of a subtree in a valid topological
    order of that subtree.  The profile is computed relative to an empty
    memory (only data internal to the subtree is accounted for, which is
    correct because data from other subtrees is an additive offset).

    ``child_fout`` is the per-node sum of children outputs, precomputed once
    per tree: because ``order`` is a complete subtree, the inputs a node
    consumes when it executes are exactly the outputs of all its children,
    which lets the whole profile be built with vectorised prefix sums.
    """
    out = tree.fout[order]
    # Memory step of each node: allocate its output, free its inputs.
    delta = out - child_fout[order]
    residents = np.cumsum(delta)
    # Peak while a node runs: memory before it, plus execution data + output.
    peaks = residents - delta + tree.nexec[order] + out

    n = order.size
    bounds = [0]
    hills: list[float] = []
    valleys: list[float] = []
    start = 0
    base = 0.0  # resident memory at the start of the current segment
    while start < n:
        # Position of the (first) maximum peak in the remaining suffix.
        hill_pos = start + int(np.argmax(peaks[start:]))
        # Position of the (first) minimum resident at or after the hill.
        valley_pos = hill_pos + int(np.argmin(residents[hill_pos:]))
        hills.append(float(peaks[hill_pos]) - base)
        valleys.append(float(residents[valley_pos]) - base)
        base = float(residents[valley_pos])
        start = valley_pos + 1
        bounds.append(start)
    return (
        order,
        np.asarray(bounds, dtype=np.int64),
        np.asarray(hills, dtype=np.float64),
        np.asarray(valleys, dtype=np.float64),
    )


def _merge_children(parts: list[_Decomposition]) -> list[np.ndarray]:
    """Merge canonical decompositions by non-increasing ``hill - valley``.

    Within each child the key is non-increasing (canonical property), so a
    k-way merge preserves every child's internal segment order; ties are
    broken by child position for determinism.  Returns the merged segment
    node-chunks (views into the children's order arrays).
    """
    if len(parts) == 1:
        order, bounds, _, _ = parts[0]
        return [order[bounds[j] : bounds[j + 1]] for j in range(bounds.size - 1)]
    heap: list[tuple[float, int, int]] = []
    for child_pos, (_, _, hills, valleys) in enumerate(parts):
        if hills.size:
            heap.append((-(float(hills[0]) - float(valleys[0])), child_pos, 0))
    heapify(heap)
    chunks: list[np.ndarray] = []
    while heap:
        _, child_pos, index = heappop(heap)
        order, bounds, hills, valleys = parts[child_pos]
        chunks.append(order[bounds[index] : bounds[index + 1]])
        if index + 1 < hills.size:
            key = -(float(hills[index + 1]) - float(valleys[index + 1]))
            heappush(heap, (key, child_pos, index + 1))
    return chunks


def _subtree_segments(tree: TaskTree) -> _Decomposition:
    """Canonical decomposition of the optimal traversal of the whole tree."""
    fout = tree.fout
    nexec = tree.nexec
    # Per-node sum of children outputs, accumulated directly (not recovered
    # from ``mem_needed`` by subtraction, which could lose bits).
    child_fout = np.zeros(tree.n, dtype=np.float64)
    has_parent = tree.parent != NO_PARENT
    np.add.at(child_fout, tree.parent[has_parent], fout[has_parent])
    leaf_bounds = np.asarray([0, 1], dtype=np.int64)
    decompositions: dict[int, _Decomposition] = {}
    for node in tree.topological_order():  # children before parents
        kids = tree.children(node)
        if not kids:
            decompositions[node] = (
                np.asarray([node], dtype=np.int64),
                leaf_bounds,
                np.asarray([float(nexec[node] + fout[node])]),
                np.asarray([float(fout[node])]),
            )
            continue
        chunks = _merge_children([decompositions.pop(c) for c in kids])
        chunks.append(np.asarray([node], dtype=np.int64))
        decompositions[node] = _canonical_decomposition(
            np.concatenate(chunks), tree, child_fout
        )
    return decompositions[tree.root]


def optimal_sequential_order(tree: TaskTree, *, name: str = "OptSeq") -> Ordering:
    """Return a peak-memory-optimal sequential traversal of ``tree``.

    The returned :class:`~repro.orders.base.Ordering` is a (generally
    non-postorder) topological order whose sequential peak memory is minimal
    over *all* topological orders of the tree.
    """
    order, _, _, _ = _subtree_segments(tree)
    return Ordering(order, name=name)


def optimal_sequential_peak(tree: TaskTree) -> float:
    """Minimum achievable sequential peak memory over all topological orders."""
    from .peak_memory import sequential_peak_memory

    return sequential_peak_memory(tree, optimal_sequential_order(tree), check=False)
