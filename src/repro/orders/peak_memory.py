"""Sequential evaluation of an ordering: peak and average memory.

Executing the tasks of a tree one at a time in a topological order ``sigma``
produces a memory profile: right before task ``i`` starts, the resident
memory holds the outputs of every completed task whose parent has not yet
completed; while ``i`` runs the memory additionally holds ``n_i + f_i``; when
``i`` finishes its inputs and execution data are freed and ``f_i`` stays.

The peak of this profile is the *sequential peak memory* of the ordering;
the paper normalises every memory bound by the peak of the best postorder
(``memPO``), and Theorem 1 guarantees that MemBooking terminates whenever
``M`` is at least the peak of the activation order.

The *average memory* (Appendix A) is the time-average of the profile where
task ``i`` occupies the memory for ``t_i`` time units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree
from .base import Ordering

__all__ = [
    "SequentialProfile",
    "sequential_profile",
    "sequential_peak_memory",
    "sequential_average_memory",
]


@dataclass(frozen=True)
class SequentialProfile:
    """Memory profile of a sequential execution.

    Attributes
    ----------
    order:
        The evaluated ordering.
    peaks:
        ``peaks[k]`` is the memory used *while* the task at position ``k``
        runs (resident data + execution data + output of that task).
    residents:
        ``residents[k]`` is the resident memory right *after* the task at
        position ``k`` completes.
    """

    order: Ordering
    peaks: np.ndarray
    residents: np.ndarray

    @property
    def peak_memory(self) -> float:
        """Maximum memory used at any instant of the sequential execution."""
        return float(self.peaks.max())

    def average_memory(self, ptime: np.ndarray) -> float:
        """Time-averaged memory usage (Appendix A definition)."""
        durations = np.asarray(ptime, dtype=np.float64)[self.order.sequence]
        total_time = float(durations.sum())
        if total_time <= 0:
            # Degenerate zero-duration schedule: fall back to a plain average.
            return float(self.peaks.mean())
        return float(np.dot(self.peaks, durations) / total_time)


def sequential_profile(tree: TaskTree, order: Ordering, *, check: bool = True) -> SequentialProfile:
    """Simulate the sequential execution of ``order`` and return its profile.

    Parameters
    ----------
    tree:
        The task tree.
    order:
        A topological ordering of ``tree`` (children before parents).
    check:
        Verify that ``order`` is topological (O(n)); disable only for trusted
        callers in tight loops.

    Raises
    ------
    ValueError
        If the ordering is not a valid topological order of the tree.
    """
    if tree.n != order.n:
        raise ValueError("tree and ordering have different sizes")
    if check and not order.is_topological(tree):
        raise ValueError("the ordering is not a topological order of the tree")

    fout = tree.fout
    nexec = tree.nexec
    parent = tree.parent

    n = tree.n
    peaks = np.empty(n, dtype=np.float64)
    residents = np.empty(n, dtype=np.float64)

    # ``child_output_sum[i]`` accumulates the outputs of the already-finished
    # children of ``i`` so we can free them in O(1) when ``i`` completes.
    child_output_sum = np.zeros(n, dtype=np.float64)
    current = 0.0
    for k, node in enumerate(order.sequence):
        node = int(node)
        peaks[k] = current + nexec[node] + fout[node]
        # Complete the node: free its inputs and execution data, keep f_i.
        current = current - child_output_sum[node] + fout[node]
        residents[k] = current
        p = parent[node]
        if p != NO_PARENT:
            child_output_sum[p] += fout[node]
    return SequentialProfile(order=order, peaks=peaks, residents=residents)


def sequential_peak_memory(tree: TaskTree, order: Ordering, *, check: bool = True) -> float:
    """Peak memory of the sequential execution of ``order`` on ``tree``."""
    return sequential_profile(tree, order, check=check).peak_memory


def sequential_average_memory(tree: TaskTree, order: Ordering, *, check: bool = True) -> float:
    """Average memory (Appendix A) of the sequential execution of ``order``."""
    return sequential_profile(tree, order, check=check).average_memory(tree.ptime)
