"""Ordering objects: validated task permutations used as AO and EO.

Every scheduling heuristic of the paper is parameterised by two orders:

* the **activation order** ``AO`` — a *topological* order of the tree
  (children before parents) that drives memory booking; the guarantees of
  Theorem 1 require the sequential execution of ``AO`` to fit in memory;
* the **execution order** ``EO`` — an arbitrary priority order used to pick
  which activated & available task to run when a processor frees up.

:class:`Ordering` wraps a permutation of the node indices and provides

* ``sequence[k]`` — the node processed at position ``k``,
* ``rank[i]``     — the position of node ``i`` (its priority; smaller = earlier),
* validation helpers (:meth:`is_topological`, :meth:`is_postorder`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree

__all__ = ["Ordering"]


class Ordering:
    """A permutation of the tasks of a tree, usable as an AO or EO.

    Parameters
    ----------
    sequence:
        A permutation of ``0 .. n-1``; ``sequence[k]`` is the node in
        position ``k``.
    name:
        Optional label (e.g. ``"memPO"``, ``"CP"``) used in reports.
    """

    __slots__ = ("_sequence", "_rank", "name")

    def __init__(self, sequence: Sequence[int] | np.ndarray, *, name: str = "") -> None:
        seq = np.asarray(sequence, dtype=np.int64).copy()
        if seq.ndim != 1:
            raise ValueError("an ordering must be a 1-D sequence of node indices")
        n = seq.size
        if n == 0:
            raise ValueError("an ordering cannot be empty")
        present = np.zeros(n, dtype=bool)
        if seq.min() < 0 or seq.max() >= n:
            raise ValueError("ordering entries must be node indices in [0, n)")
        present[seq] = True
        if not present.all():
            raise ValueError("an ordering must be a permutation of 0 .. n-1")
        rank = np.empty(n, dtype=np.int64)
        rank[seq] = np.arange(n, dtype=np.int64)
        seq.setflags(write=False)
        rank.setflags(write=False)
        self._sequence = seq
        self._rank = rank
        self.name = name

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of tasks covered by the ordering."""
        return int(self._sequence.size)

    @property
    def sequence(self) -> np.ndarray:
        """Read-only permutation: ``sequence[k]`` is the node at position ``k``."""
        return self._sequence

    @property
    def rank(self) -> np.ndarray:
        """Read-only rank array: ``rank[i]`` is the position of node ``i``."""
        return self._rank

    def rank_of(self, node: int) -> int:
        """Position (priority) of ``node``; smaller means earlier/higher priority."""
        return int(self._rank[node])

    def node_at(self, position: int) -> int:
        """Node processed at ``position``."""
        return int(self._sequence[position])

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return iter(self._sequence.tolist())

    def __getitem__(self, position: int) -> int:
        return int(self._sequence[position])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ordering):
            return bool(np.array_equal(self._sequence, other._sequence))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._sequence.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return f"Ordering(n={self.n}{label})"

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def is_topological(self, tree: TaskTree) -> bool:
        """True when every node appears *before* its parent (children first)."""
        if tree.n != self.n:
            raise ValueError("ordering and tree sizes differ")
        parent = tree.parent
        rank = self._rank
        # Vectorised: this check runs on every ``schedule()`` call, so a
        # per-node Python loop would tax every simulation of a sweep.
        children = np.flatnonzero(parent != NO_PARENT)
        return bool(np.all(rank[children] < rank[parent[children]]))

    def is_postorder(self, tree: TaskTree) -> bool:
        """True when the ordering is a postorder traversal of ``tree``.

        A postorder is a topological order in which every subtree occupies a
        contiguous block of positions (the whole subtree is processed before
        any node outside it starts).  Postorders are the natural traversals
        used by multifrontal solvers (Section 3 of the paper).
        """
        if not self.is_topological(tree):
            return False
        # For each node the positions of its subtree must form the contiguous
        # range ending at the node's own position.
        sizes = np.ones(tree.n, dtype=np.int64)
        for node in tree.topological_order():
            p = tree.parent[node]
            if p != NO_PARENT:
                sizes[p] += sizes[node]
        rank = self._rank
        for node in range(tree.n):
            first = rank[node] - sizes[node] + 1
            if first < 0:
                return False
            block = self._sequence[first : rank[node] + 1]
            # All nodes of the block must belong to the subtree of ``node``:
            # equivalently every block node's ancestors within the block reach ``node``.
            if block.size != sizes[node]:
                return False
            members = set(block.tolist())
            for other in block:
                if other == node:
                    continue
                p2 = int(tree.parent[other])
                if p2 not in members:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_priorities(
        cls,
        priorities: Sequence[float] | np.ndarray,
        *,
        descending: bool = True,
        name: str = "",
    ) -> "Ordering":
        """Build an ordering by sorting nodes by priority.

        ``descending=True`` (default) puts the highest priority first, which
        matches the paper's convention for execution orders such as ``CP``
        (largest bottom level first).  Ties are broken by node index.
        """
        priorities = np.asarray(priorities, dtype=np.float64)
        keys = -priorities if descending else priorities
        order = np.argsort(keys, kind="stable")
        return cls(order, name=name)

    def restricted_to(self, nodes: Iterable[int], *, name: str = "") -> np.ndarray:
        """Return the given nodes sorted by this ordering (used for sub-problems)."""
        nodes = np.asarray(list(nodes), dtype=np.int64)
        return nodes[np.argsort(self._rank[nodes], kind="stable")]
