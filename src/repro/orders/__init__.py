"""Task orderings: activation and execution orders studied in the paper."""

from .base import Ordering
from .critical_path import critical_path_order
from .optimal_sequential import optimal_sequential_order, optimal_sequential_peak
from .peak_memory import (
    SequentialProfile,
    sequential_average_memory,
    sequential_peak_memory,
    sequential_profile,
)
from .postorder import (
    average_memory_postorder,
    enumerate_postorders,
    minimum_memory_postorder,
    natural_postorder,
    performance_postorder,
    postorder_from_child_keys,
    postorder_peaks,
    random_postorder,
)

__all__ = [
    "Ordering",
    "critical_path_order",
    "optimal_sequential_order",
    "optimal_sequential_peak",
    "SequentialProfile",
    "sequential_average_memory",
    "sequential_peak_memory",
    "sequential_profile",
    "average_memory_postorder",
    "enumerate_postorders",
    "minimum_memory_postorder",
    "natural_postorder",
    "performance_postorder",
    "postorder_from_child_keys",
    "postorder_peaks",
    "random_postorder",
    "make_order",
    "ORDER_FACTORIES",
]


def make_order(tree, kind: str) -> Ordering:
    """Build a named ordering (``"memPO"``, ``"perfPO"``, ``"CP"``, ``"OptSeq"``, ...).

    This is the string-based factory used by the experiment harness and the
    CLI so orders can be selected from configuration files.
    """
    try:
        factory = ORDER_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown ordering {kind!r}; available: {sorted(ORDER_FACTORIES)}"
        ) from None
    return factory(tree)


ORDER_FACTORIES = {
    "memPO": minimum_memory_postorder,
    "perfPO": performance_postorder,
    "avgMemPO": average_memory_postorder,
    "naturalPO": natural_postorder,
    "CP": critical_path_order,
    "OptSeq": optimal_sequential_order,
}
