"""Postorder traversals of task trees.

A postorder processes every subtree entirely before starting a sibling
subtree.  Postorders are the traversals used in practice by multifrontal
sparse solvers (MUMPS, qr_mumps, ...) because they allow stack-based memory
management; the paper uses three of them:

``memPO`` — :func:`minimum_memory_postorder`
    Liu's postorder [Liu 1986] that minimises the sequential peak memory
    among all postorders: at every node, child subtrees are processed by
    non-increasing ``P_j - f_j`` where ``P_j`` is the peak of the (optimal
    postorder) traversal of the subtree of ``j``.  It is the default AO/EO of
    both Activation and MemBooking in the paper's experiments, and its peak
    defines the "minimum memory" used to normalise memory bounds.

``perfPO`` — :func:`performance_postorder`
    A postorder designed for parallel performance: at every node, child
    subtrees with the largest critical path are scheduled first.

average-memory postorder — :func:`average_memory_postorder`
    The Appendix A result: among postorders, the average memory is minimised
    by processing child subtrees by non-increasing ``T_j / f_j`` (Smith's
    rule applied to the subtree processing times and output sizes).

All of these are produced by the same generic machinery
(:func:`postorder_from_child_keys`) which builds the postorder induced by a
per-node ordering of its children.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.task_tree import TaskTree
from ..core import tree_metrics
from .base import Ordering

__all__ = [
    "natural_postorder",
    "postorder_from_child_keys",
    "postorder_peaks",
    "minimum_memory_postorder",
    "performance_postorder",
    "average_memory_postorder",
    "random_postorder",
    "enumerate_postorders",
]


def postorder_from_child_keys(
    tree: TaskTree,
    child_priority: Callable[[int], Sequence[float] | np.ndarray] | np.ndarray,
    *,
    descending: bool = True,
    name: str = "",
) -> Ordering:
    """Build the postorder induced by sorting every node's children by a key.

    Parameters
    ----------
    tree:
        The task tree.
    child_priority:
        Either an array of per-node keys, or a callable mapping a node index
        to its key.  At every internal node, children are visited by
        non-increasing key (``descending=True``) or non-decreasing key.
        Ties are broken by child index (ascending) so the result is
        deterministic.
    name:
        Label stored on the returned :class:`Ordering`.
    """
    if callable(child_priority):
        keys = np.asarray([float(child_priority(i)) for i in range(tree.n)], dtype=np.float64)
    else:
        keys = np.asarray(child_priority, dtype=np.float64)
        if keys.shape != (tree.n,):
            raise ValueError("child_priority array must have one entry per node")

    order = np.empty(tree.n, dtype=np.int64)
    cursor = 0
    # Iterative DFS postorder with children sorted by key.
    stack: list[tuple[int, bool]] = [(tree.root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order[cursor] = node
            cursor += 1
            continue
        stack.append((node, True))
        kids = list(tree.children(node))
        if kids:
            if descending:
                kids.sort(key=lambda c: (-keys[c], c))
            else:
                kids.sort(key=lambda c: (keys[c], c))
            # Push in reverse so the highest-priority child is expanded first.
            for child in reversed(kids):
                stack.append((child, False))
    return Ordering(order, name=name)


def natural_postorder(tree: TaskTree, *, name: str = "naturalPO") -> Ordering:
    """Depth-first postorder visiting children in increasing index order."""
    return Ordering(tree.topological_order(), name=name)


def postorder_peaks(tree: TaskTree) -> np.ndarray:
    """Per-subtree peak memory of the *optimal* postorder (Liu's recursion).

    ``peaks[i]`` is the minimum, over all postorders of the subtree rooted at
    ``i``, of the sequential peak memory needed to process that subtree.  The
    recursion is the classical one: children are processed by non-increasing
    ``P_j - f_j`` and::

        P_i = max( max_k ( sum_{l<k} f_{c_l} + P_{c_k} ),
                   sum_j f_{c_j} + n_i + f_i )

    with ``P_i = n_i + f_i`` for a leaf.
    """
    peaks = np.zeros(tree.n, dtype=np.float64)
    fout = tree.fout
    nexec = tree.nexec
    for node in tree.topological_order():  # children before parents
        kids = tree.children(node)
        if not kids:
            peaks[node] = nexec[node] + fout[node]
            continue
        # Optimal order of the child subtrees: non-increasing P_j - f_j.
        ordered = sorted(kids, key=lambda c: (-(peaks[c] - fout[c]), c))
        prefix = 0.0
        best = 0.0
        for child in ordered:
            best = max(best, prefix + peaks[child])
            prefix += fout[child]
        best = max(best, prefix + nexec[node] + fout[node])
        peaks[node] = best
    return peaks


def minimum_memory_postorder(tree: TaskTree, *, name: str = "memPO") -> Ordering:
    """Liu's memory-minimising postorder (``memPO`` in the paper).

    Returns the postorder whose sequential peak memory is minimal among all
    postorder traversals of the tree.  Its peak (see
    :func:`repro.orders.peak_memory.sequential_peak_memory`) is the
    "minimum memory" used throughout Section 7 to normalise memory bounds.
    """
    peaks = postorder_peaks(tree)
    # Children are visited by non-increasing (P_j - f_j).
    keys = peaks - tree.fout
    return postorder_from_child_keys(tree, keys, descending=True, name=name)


def performance_postorder(tree: TaskTree, *, name: str = "perfPO") -> Ordering:
    """Postorder giving priority to subtrees with the largest critical path.

    This is the ``perfPO`` order of Section 7.3.1: in a parallel execution it
    tends to release the long chains early, giving higher priority to nodes
    with a large critical path.
    """
    critical = tree_metrics.top_levels(tree)
    return postorder_from_child_keys(tree, critical, descending=True, name=name)


def average_memory_postorder(tree: TaskTree, *, name: str = "avgMemPO") -> Ordering:
    """Postorder minimising the *average* memory (Appendix A, Theorem 4).

    At every node the child subtrees are processed by non-increasing
    ``T_j / f_j`` where ``T_j`` is the total processing time of the subtree
    of ``j`` — Smith's rule applied to (weight = subtree output, processing
    time = subtree duration).
    """
    work = tree_metrics.subtree_work(tree)
    fout = tree.fout
    with np.errstate(divide="ignore"):
        ratio = np.where(fout > 0, work / np.where(fout > 0, fout, 1.0), np.inf)
    return postorder_from_child_keys(tree, ratio, descending=True, name=name)


def random_postorder(
    tree: TaskTree, rng: np.random.Generator | int | None = None, *, name: str = "randomPO"
) -> Ordering:
    """A uniformly random postorder (random child order at every node)."""
    from .._utils import as_rng

    generator = as_rng(rng)
    keys = generator.random(tree.n)
    return postorder_from_child_keys(tree, keys, descending=True, name=name)


def enumerate_postorders(tree: TaskTree, *, limit: int = 100_000) -> list[Ordering]:
    """Enumerate every postorder of a (small) tree.

    Intended for exhaustive validation in the test-suite; raises
    :class:`ValueError` when the number of postorders exceeds ``limit``.
    """
    from itertools import permutations

    def expand(node: int) -> list[list[int]]:
        kids = tree.children(node)
        if not kids:
            return [[node]]
        child_expansions = [expand(c) for c in kids]
        results: list[list[int]] = []
        for child_order in permutations(range(len(kids))):
            # Cartesian product of the child expansions in this order.
            partials: list[list[int]] = [[]]
            for idx in child_order:
                partials = [p + e for p in partials for e in child_expansions[idx]]
                if len(partials) > limit:
                    raise ValueError("too many postorders to enumerate")
            for p in partials:
                results.append(p + [node])
            if len(results) > limit:
                raise ValueError("too many postorders to enumerate")
        return results

    return [Ordering(seq, name="enum") for seq in expand(tree.root)]
