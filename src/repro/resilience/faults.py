"""Deterministic fault injection: the seeded :class:`FaultPlan`.

A fault plan is a compact spec string — set through ``REPRO_FAULTS`` or
``SweepConfig.fault_plan`` — describing which fault kinds fire, how often,
and the recovery tunables of the run:

    seed=7;worker-crash:40;hang:97;os-transient:60:2;cache-corrupt:1;watchdog=5;backoff=0.05

Grammar (``;``-separated parts, order-free):

* ``seed=N`` — the deterministic seed (default 0).
* ``<kind>:<period>[:<max_attempt>]`` — arm fault ``kind``: it fires at a
  hook whose key hashes to ``0 mod period`` (``period=1`` = every key),
  but only while the hook's attempt counter is below ``max_attempt``
  (default 1 — the first attempt fails, every retry succeeds, so a
  default plan is always recoverable).  Kinds: ``worker-crash``,
  ``hang``, ``os-transient``, ``cache-corrupt``, ``native-build``,
  ``shm-lost``, ``lane-engine``.
* ``watchdog=S`` / ``backoff=S`` / ``hang=S`` / ``retries=N`` — recovery
  tunables: the per-result watchdog window of the pool backends, the
  base retry backoff, how long an injected hang sleeps, and the retry
  budget after which an instance is quarantined.

The firing decision (:meth:`FaultPlan.should_fire`) is a **pure function**
of ``(seed, kind, key, attempt)`` — no RNG state, no monkeypatching — so
the same plan injects the same faults in every process that evaluates the
same hook: workers decide locally from the attempt counter carried in
their dispatch payload, and the parent *previews* the same decision to
keep the :class:`~repro.resilience.health.RunHealth` ledger accurate.
Parent-only hooks with no natural attempt counter (cache writes, native
builds, arena publishes) use a per-plan fired-count instead
(:meth:`FaultPlan.fire`), which is equally deterministic within a process.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Iterable

from .health import current_health

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "instance_fault_key",
    "parse_fault_plan",
    "reset_fault_state",
    "resolve_fault_plan",
]

#: Every fault kind a plan may arm.
FAULT_KINDS: frozenset[str] = frozenset(
    {
        "worker-crash",  # worker process exits hard mid-task (os._exit)
        "hang",  # worker sleeps past the watchdog window
        "os-transient",  # run_single raises a transient OSError
        "cache-corrupt",  # a just-written cache row store is truncated
        "native-build",  # build_library fails (no shared object produced)
        "shm-lost",  # the published shared-memory arena vanishes
        "lane-engine",  # simulate_lanes raises (batched backend)
    }
)

#: Watchdog default when neither the plan nor ``REPRO_WATCHDOG`` says
#: otherwise: long enough that no real sweep instance ever trips it, short
#: enough that a genuinely wedged pool recovers within the run.
DEFAULT_WATCHDOG = 600.0
DEFAULT_BACKOFF = 0.1
DEFAULT_HANG_SECONDS = 3600.0
DEFAULT_MAX_ATTEMPTS = 4
#: Retry backoff is capped so an exhausted budget cannot stall for minutes.
BACKOFF_CAP = 2.0

#: ``failure_reason`` prefix of records produced by the quarantine path;
#: the plan layer refuses to cache such rows (see
#: :func:`~repro.experiments.plan.execute_plan_cached`).
QUARANTINE_PREFIX = "quarantined"


@dataclass(frozen=True)
class FaultRule:
    """One armed fault kind: fire keys hashing to ``0 mod period`` while
    the hook's attempt counter is below ``max_attempt``."""

    period: int
    max_attempt: int = 1


def _default_watchdog() -> float:
    raw = os.environ.get("REPRO_WATCHDOG")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_WATCHDOG


@dataclass
class FaultPlan:
    """A parsed fault-injection plan (see the module docstring grammar).

    Instances are cached per spec string (:func:`resolve_fault_plan`), so
    the parent-side fired counters of :meth:`fire` persist for the life of
    the process — a ``cache-corrupt:1`` rule corrupts the first cache
    write of the process, not every one.
    """

    spec: str
    seed: int = 0
    rules: dict[str, FaultRule] = field(default_factory=dict)
    watchdog: float = field(default_factory=_default_watchdog)
    backoff: float = DEFAULT_BACKOFF
    hang_seconds: float = DEFAULT_HANG_SECONDS
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    #: Parent-site fired counts: ``(kind, key) -> times fired``.
    _fired: dict[tuple[str, str], int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # the firing decision
    # ------------------------------------------------------------------ #
    def should_fire(self, kind: str, key: str, attempt: int) -> bool:
        """Pure firing decision — identical in every process.

        True iff ``kind`` is armed, ``attempt`` is still below the rule's
        ``max_attempt`` and the (seed, kind, key) digest lands on the
        rule's period.
        """
        rule = self.rules.get(kind)
        if rule is None or attempt >= rule.max_attempt:
            return False
        digest = hashlib.sha256(f"{self.seed}|{kind}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % rule.period == 0

    def fire(self, kind: str, key: str) -> bool:
        """Parent-site decision for hooks with no external attempt counter.

        The attempt is the number of times this (kind, key) has already
        fired in this process, so the default ``max_attempt=1`` makes a
        parent-site fault a fire-once event.  Records the injection on the
        health ledger when it fires.
        """
        attempt = self._fired.get((kind, key), 0)
        if not self.should_fire(kind, key, attempt):
            return False
        self._fired[(kind, key)] = attempt + 1
        current_health().record_injected(kind)
        return True

    def maybe_raise(
        self,
        kind: str,
        key: str,
        *,
        attempt: int | None = None,
        exc: type[Exception] = OSError,
    ) -> None:
        """Raise ``exc`` when the fault fires (recording the injection).

        With an explicit ``attempt`` the decision is the pure
        :meth:`should_fire`; without one it is the parent-site
        :meth:`fire` counter.
        """
        if attempt is None:
            if not self.fire(kind, key):
                return
        else:
            if not self.should_fire(kind, key, attempt):
                return
            current_health().record_injected(kind)
        raise exc(f"injected {kind} fault at {key!r} (seed {self.seed})")

    def worker_entry(self, key: str, attempt: int) -> None:
        """Worker-side crash/hang hook, called on task entry.

        No health recording here — a crashed worker could not report it
        anyway; the parent previews the same pure decision at dispatch
        time (:meth:`preview`) so the ledger still counts these.
        """
        if self.should_fire("worker-crash", key, attempt):
            os._exit(70)
        if self.should_fire("hang", key, attempt):
            time.sleep(self.hang_seconds)

    def preview(self, kinds: Iterable[str], key: str, attempt: int) -> None:
        """Parent-side ledger entry for faults a worker is about to take."""
        health = current_health()
        for kind in kinds:
            if self.should_fire(kind, key, attempt):
                health.record_injected(kind)


def instance_fault_key(
    tree_index: int, scheduler: str, num_processors: int, memory_factor: float
) -> str:
    """The canonical hook key of one sweep instance.

    Shared by every backend (serial, batched, both pools), so one plan
    injects the same instance-level faults whichever backend runs it.
    """
    return f"inst:{tree_index}:{scheduler}:{num_processors}:{memory_factor!r}"


# --------------------------------------------------------------------------- #
# spec parsing and resolution
# --------------------------------------------------------------------------- #
def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a plan spec string; raises :class:`ValueError` on bad grammar."""
    seed = 0
    rules: dict[str, FaultRule] = {}
    tunables: dict[str, float] = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            name, sep, value = part.partition("=")
            name, value = name.strip(), value.strip()
            if not sep:
                raise ValueError(f"bad fault-plan part {part!r} (expected name=value or kind:period)")
            try:
                if name == "seed":
                    seed = int(value)
                elif name == "retries":
                    tunables["retries"] = float(int(value))
                elif name in ("watchdog", "backoff", "hang"):
                    tunables[name] = float(value)
                else:
                    raise ValueError(f"unknown fault-plan tunable {name!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault-plan part {part!r}: {exc}") from None
        else:
            fields = [f.strip() for f in part.split(":")]
            kind = fields[0]
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; available: {sorted(FAULT_KINDS)}"
                )
            if len(fields) not in (2, 3):
                raise ValueError(f"bad fault rule {part!r} (expected kind:period[:max_attempt])")
            try:
                period = int(fields[1])
                max_attempt = int(fields[2]) if len(fields) == 3 else 1
            except ValueError:
                raise ValueError(f"bad fault rule {part!r}: period/max_attempt must be integers") from None
            if period < 1 or max_attempt < 1:
                raise ValueError(f"bad fault rule {part!r}: period and max_attempt must be >= 1")
            rules[kind] = FaultRule(period, max_attempt)
    plan = FaultPlan(spec=spec, seed=seed, rules=rules)
    if "watchdog" in tunables:
        plan.watchdog = tunables["watchdog"]
    if "backoff" in tunables:
        plan.backoff = tunables["backoff"]
    if "hang" in tunables:
        plan.hang_seconds = tunables["hang"]
    if "retries" in tunables:
        plan.max_attempts = max(1, int(tunables["retries"]))
    if plan.watchdog <= 0 or plan.backoff < 0 or plan.hang_seconds < 0:
        raise ValueError("fault-plan watchdog must be > 0 and backoff/hang >= 0")
    return plan


#: Plan instances by spec string: parent-site fired counters must persist
#: across hook evaluations within one process.
_PLANS: dict[str, FaultPlan] = {}


def resolve_fault_plan(spec: str | None) -> FaultPlan | None:
    """The active plan for a config spec (falling back to ``REPRO_FAULTS``).

    ``None`` when no plan is armed — the hot paths then skip every hook.
    Plans are cached per spec string so repeated resolution is a dict hit
    and parent-site counters persist.
    """
    effective = spec if spec is not None else os.environ.get("REPRO_FAULTS")
    if not effective:
        return None
    plan = _PLANS.get(effective)
    if plan is None:
        plan = _PLANS[effective] = parse_fault_plan(effective)
    return plan


def reset_fault_state() -> None:
    """Forget every cached plan (and its fired counters) — test helper."""
    _PLANS.clear()
