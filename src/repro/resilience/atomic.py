"""Crash-safe file publication: temp file + fsync + atomic rename.

The caches (:class:`~repro.experiments.records.ResultCache`'s row store
and sweep blobs, :class:`~repro.workloads.datasets.WorkloadCache`'s tree
arenas) publish through these helpers so a crash — power loss, SIGKILL,
OOM — can never leave a half-written file under the final name: readers
see either the old bytes or the new bytes.  The data is fsynced before the
rename and the parent directory is fsynced after it, closing the window
where the rename itself is not yet durable.  A leftover ``*.tmp`` from a
killed writer is inert (never opened by readers) and is overwritten by the
next successful write.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync (makes the rename itself durable)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Publish ``data`` at ``path`` atomically and durably."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Publish ``text`` (UTF-8) at ``path`` atomically and durably."""
    return atomic_write_bytes(path, text.encode("utf-8"))
