"""Fault-tolerant execution plane: injection, recovery, degradation, health.

Four pieces (see the module docstrings for detail):

* :mod:`~repro.resilience.faults` — the deterministic, seeded
  :class:`FaultPlan` (armed via ``REPRO_FAULTS`` or
  ``SweepConfig.fault_plan``) whose firing decision is a pure function of
  ``(seed, kind, key, attempt)``, injected through explicit hook points in
  the backends, the caches and the native build — no monkeypatching, so
  the same plan reproduces the same faults in every process.
* :mod:`~repro.resilience.recovery` — watchdog-timed pool drains with
  bounded retry-with-backoff re-dispatch (:func:`drain_pool`) and the
  :class:`TransportFailure` signal of the backend degradation ladder.
* :mod:`~repro.resilience.atomic` — crash-safe (fsync + atomic rename)
  cache file publication.
* :mod:`~repro.resilience.locks` — advisory cross-process
  :class:`FileLock` guarding cache read-modify-write sections (atomic
  writes make each publish safe; the lock makes concurrent merges safe).
* :mod:`~repro.resilience.health` — the per-run :class:`RunHealth`
  ledger surfaced in ``summary.md``, stdout and ``run-health.json``.
"""

from .atomic import atomic_write_bytes, atomic_write_text
from .faults import (
    FAULT_KINDS,
    QUARANTINE_PREFIX,
    FaultPlan,
    FaultRule,
    instance_fault_key,
    parse_fault_plan,
    reset_fault_state,
    resolve_fault_plan,
)
from .health import RunHealth, current_health, reset_run_health
from .locks import FileLock
from .recovery import RetrySettings, TransportFailure, drain_pool, retry_sleep

__all__ = [
    "FAULT_KINDS",
    "QUARANTINE_PREFIX",
    "FaultPlan",
    "FaultRule",
    "FileLock",
    "RetrySettings",
    "RunHealth",
    "TransportFailure",
    "atomic_write_bytes",
    "atomic_write_text",
    "current_health",
    "drain_pool",
    "instance_fault_key",
    "parse_fault_plan",
    "reset_fault_state",
    "reset_run_health",
    "resolve_fault_plan",
    "retry_sleep",
]
