"""Pool recovery machinery: watchdog drains, retry rounds, quarantine.

:func:`drain_pool` is the shared dispatch loop of the two pool backends
(:class:`~repro.experiments.backends.ProcessPoolBackend` and
:class:`~repro.experiments.backends.SharedMemoryBackend`): it collects
unordered results under a per-result **watchdog** — a window that resets
on every arrival, so a healthy-but-slow pool never trips it, while a
crashed worker's lost task or an injected hang shows up as a window with
no progress.  A tripped watchdog terminates the round's pool, bumps the
attempt counter of everything still pending and re-dispatches it in a
fresh pool after a bounded backoff; items still pending after
``max_attempts`` rounds come back to the caller for quarantine into the
record failure plane.

Because record values are pure functions of (tree, config), a re-dispatch
reproduces exactly the bytes the lost attempt would have produced
(wall-clock timing fields aside) — recovery cannot change results, which
is what the fault-parity suite asserts.

A first round that ends with **zero** results is not a stuck instance but
a broken transport (dead initializer, vanished arena, unpicklable
payloads): :class:`TransportFailure` is raised instead of retrying, and
the backend takes its degradation-ladder edge
(shared-memory -> process -> serial).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, TypeVar

from .faults import (
    BACKOFF_CAP,
    DEFAULT_BACKOFF,
    DEFAULT_MAX_ATTEMPTS,
    FaultPlan,
    _default_watchdog,
)
from .health import current_health

__all__ = ["RetrySettings", "TransportFailure", "drain_pool", "retry_sleep"]

T = TypeVar("T")


class TransportFailure(RuntimeError):
    """The pool transport itself is broken (not one stuck instance)."""


@dataclass(frozen=True)
class RetrySettings:
    """The recovery tunables of one dispatch (plan overrides, else defaults)."""

    watchdog: float
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff: float = DEFAULT_BACKOFF

    @classmethod
    def from_plan(cls, plan: FaultPlan | None) -> "RetrySettings":
        if plan is None:
            return cls(watchdog=_default_watchdog())
        return cls(
            watchdog=plan.watchdog,
            max_attempts=plan.max_attempts,
            backoff=plan.backoff,
        )


def retry_sleep(backoff: float, attempt: int) -> None:
    """Bounded exponential backoff before retry round ``attempt`` (>= 1)."""
    if backoff > 0:
        time.sleep(min(backoff * (2 ** (attempt - 1)), BACKOFF_CAP))


def drain_pool(
    make_pool: Callable[[], Any],
    worker: Callable[..., Any],
    payload_for: Callable[[T, int], Any],
    items: Iterable[T],
    settings: RetrySettings,
    handle: Callable[[Any], T],
) -> list[T]:
    """Dispatch ``items`` over fresh pools until done or out of retries.

    ``make_pool()`` builds a configured :class:`multiprocessing.pool.Pool`
    (a fresh one per round — a tripped round's pool is terminated, killing
    hung workers with it); ``payload_for(item, attempt)`` builds the task
    payload, carrying the attempt counter so workers make the same
    deterministic fault decisions the parent previews; ``handle(outcome)``
    consumes one worker result and returns the item it completed.

    Returns the items that never completed (the caller quarantines them).
    Worker exceptions propagate — only the *transport* failure modes
    (lost results, watchdog trips) are retried here; a worker that raises
    is a bug surfacing, not an instance to re-dispatch.
    """
    health = current_health()
    pending: dict[T, int] = dict.fromkeys(items, 0)
    total_received = 0
    for round_no in range(settings.max_attempts):
        if not pending:
            break
        if round_no:
            health.retries += len(pending)
            retry_sleep(settings.backoff, round_no)
        stuck = False
        with make_pool() as pool:
            payloads = [payload_for(item, attempt) for item, attempt in pending.items()]
            results = pool.imap_unordered(worker, payloads, chunksize=1)
            remaining = len(payloads)
            while remaining:
                try:
                    outcome = results.next(timeout=settings.watchdog)
                except multiprocessing.TimeoutError:
                    stuck = True
                    break
                except StopIteration:  # pragma: no cover - defensive
                    break
                remaining -= 1
                total_received += 1
                pending.pop(handle(outcome), None)
        # Exiting the ``with`` terminates the pool: lost results cannot
        # arrive late and hung workers do not outlive their round.
        if stuck:
            health.timeouts += 1
            if round_no == 0 and total_received == 0:
                raise TransportFailure(
                    "no worker produced a result within the "
                    f"{settings.watchdog:g}s watchdog window"
                )
        for item in pending:
            pending[item] += 1
    return list(pending)
