"""Per-run fault-tolerance accounting: the :class:`RunHealth` report.

One process-wide :class:`RunHealth` instance accumulates everything the
resilience layer does during a run — faults injected by the active
:class:`~repro.resilience.faults.FaultPlan`, dispatch retries, watchdog
timeouts, graceful degradations (which rung of the ladder was taken, and
how often), quarantined instances and quarantined cache entries.  The
suite resets it at the start of a run (:func:`reset_run_health`), surfaces
the summary line in ``summary.md``/stdout and writes the full dict to a
``run-health.json`` artifact.

Counters are *parent-process* accounting: pool workers keep their own
(invisible) instance, so the backends record worker-side events on the
parent's ledger — worker crash/hang injections are previewed at dispatch
time (the fault decision is a pure function of (seed, kind, key, attempt),
so the parent knows exactly what each worker will do), and worker-side
quarantine records are counted when their failure reasons come back
through the merge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["RunHealth", "current_health", "reset_run_health"]


@dataclass
class RunHealth:
    """Counters of everything the resilience layer did during one run."""

    #: Faults fired by the active plan, by kind (``worker-crash``, ``hang``,
    #: ``os-transient``, ``cache-corrupt``, ``native-build``, ``shm-lost``,
    #: ``lane-engine``).
    injected: dict[str, int] = field(default_factory=dict)
    #: Instances (or tree groups) re-dispatched after a lost/failed attempt.
    retries: int = 0
    #: Watchdog windows that expired with results still pending.
    timeouts: int = 0
    #: Degradation-ladder edges taken, e.g. ``"shared-memory->process"``,
    #: ``"process->serial"``, ``"batched->serial"``, ``"native->python"``,
    #: ``"cache->uncached"``.
    degradations: dict[str, int] = field(default_factory=dict)
    #: Instances that exhausted their retry budget and were recorded into
    #: the failure plane instead of completing.
    quarantined_instances: int = 0
    #: Corrupt cache files renamed aside (``*.quarantined``) and recomputed.
    cache_quarantines: int = 0
    #: Instances that finished a run neither completed nor quarantined.
    #: The instance-keyed merge raises on any gap, so this stays zero in
    #: every run that returns — it is the invariant the chaos CI asserts.
    lost_instances: int = 0

    def record_injected(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def record_degradation(self, edge: str) -> None:
        self.degradations[edge] = self.degradations.get(edge, 0) + 1

    def any_activity(self) -> bool:
        """True when any counter moved (worth a line in the CLI output)."""
        return bool(
            self.injected
            or self.retries
            or self.timeouts
            or self.degradations
            or self.quarantined_instances
            or self.cache_quarantines
            or self.lost_instances
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "injected": dict(sorted(self.injected.items())),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "degradations": dict(sorted(self.degradations.items())),
            "quarantined_instances": self.quarantined_instances,
            "cache_quarantines": self.cache_quarantines,
            "lost_instances": self.lost_instances,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2) + "\n"

    def summary(self) -> str:
        """One-line report for summary.md / stdout."""
        return (
            f"{sum(self.injected.values())} faults injected, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{sum(self.degradations.values())} degradations, "
            f"{self.quarantined_instances} instances quarantined, "
            f"{self.cache_quarantines} cache quarantines, "
            f"{self.lost_instances} lost"
        )


_HEALTH = RunHealth()


def current_health() -> RunHealth:
    """The process-wide health ledger (parent-process accounting)."""
    return _HEALTH


def reset_run_health() -> RunHealth:
    """Zero every counter (the suite calls this at the start of a run)."""
    global _HEALTH
    _HEALTH = RunHealth()
    return _HEALTH
