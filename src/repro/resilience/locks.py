"""Advisory cross-process file locks for the persistent caches.

The cache files themselves publish through :mod:`repro.resilience.atomic`
(temp + fsync + atomic rename), which makes every individual write crash
safe — but atomicity of one write is not atomicity of a *read-modify-write*.
Two processes appending rows to the same
:class:`~repro.experiments.records.ResultCache` both read the store, both
merge their fresh rows into what they read, and both replace the files:
each replace is atomic, yet the last writer's snapshot predates the first
writer's publish, so the first writer's rows silently vanish.

:class:`FileLock` closes that window: an ``fcntl.flock`` exclusive lock on
a sidecar ``*.lock`` file held across the whole read-merge-write.  flock
locks are advisory (both writers must take them — every writer in this
package does), are released by the kernel when the holder dies (a
``SIGKILL`` mid-critical-section cannot wedge the cache; the atomic writes
keep the files themselves intact), and nest freely across *distinct* open
descriptors, which is exactly the cross-process semantics wanted here.

On platforms without :mod:`fcntl` (Windows) the lock degrades to a no-op:
single-process use — the only mode exercised there — needs no lock, and
the atomic-write path still guarantees readers never see torn files.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType

try:  # pragma: no cover - import guard exercised only off-Linux
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]


class FileLock:
    """Exclusive advisory lock on ``path``, as a context manager.

    Blocking: ``__enter__`` waits until the lock is granted.  Reentrant use
    of one instance is a bug (guarded with an assertion); use one instance
    per acquisition site instead.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    def __enter__(self) -> "FileLock":
        assert self._fd is None, "FileLock is not reentrant"
        if fcntl is None:  # pragma: no cover - Windows degrades to no-op
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except BaseException:  # pragma: no cover - interrupted acquisition
            os.close(fd)
            raise
        self._fd = fd
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
