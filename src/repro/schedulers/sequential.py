"""Sequential execution of an ordering on a single processor.

This is the degenerate schedule the paper uses as the memory-side anchor:
executing the memory-minimising postorder sequentially uses the least
possible postorder memory but the worst possible makespan (the total work).
It is implemented on top of the same result/validation machinery as the
parallel heuristics so it can be dropped into the experiment sweeps.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from ..core.task_tree import TaskTree
from ..orders import Ordering
from ..orders.peak_memory import sequential_peak_memory
from .base import ScheduleResult, Scheduler

__all__ = ["SequentialScheduler"]


class SequentialScheduler(Scheduler):
    """Execute the activation order sequentially on one processor.

    The schedule is feasible whenever the sequential peak memory of the
    activation order fits in ``M``; otherwise the result reports failure
    (no partial schedule is attempted).
    """

    name = "Sequential"

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace=None,
    ) -> ScheduleResult:
        _ = workspace  # the closed-form schedule has no per-run scratch
        peak = sequential_peak_memory(tree, ao, check=False)
        n = tree.n
        start = np.full(n, np.nan)
        finish = np.full(n, np.nan)
        processor = np.full(n, -1, dtype=np.int64)
        completed = peak <= memory_limit * (1 + 1e-12)
        failure = None
        makespan = math.inf
        if completed:
            clock = 0.0
            for node in ao.sequence:
                node = int(node)
                start[node] = clock
                clock += float(tree.ptime[node])
                finish[node] = clock
                processor[node] = 0
            makespan = clock
        else:
            failure = (
                f"sequential peak memory {peak:.6g} exceeds the bound {memory_limit:.6g}"
            )
        return ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=completed,
            makespan=makespan,
            start_times=start,
            finish_times=finish,
            processor=processor,
            peak_memory=peak if completed else math.nan,
            scheduling_seconds=0.0,
            num_events=n if completed else 0,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=failure,
        )
