"""Booked-memory accounting shared by the activation/booking heuristics.

The heuristics of the paper never track the *actual* resident memory during
the simulation; they reason about **booked** memory (``MBooked`` in the
pseudo-code): memory reserved ahead of time so that an activated task is
always guaranteed to be able to run.  :class:`MemoryLedger` centralises that
counter with defensive checks (never negative, never above the bound unless
explicitly allowed) and records the peak booked value for diagnostics.
"""

from __future__ import annotations

__all__ = ["MemoryLedger"]


class MemoryLedger:
    """Tracks the total booked memory against a fixed bound.

    Parameters
    ----------
    limit:
        The memory bound ``M``.
    tolerance:
        Relative tolerance used in the ``fits``/overflow checks to absorb
        floating-point rounding in long chains of additions.
    """

    __slots__ = ("limit", "_booked", "_peak", "_tolerance")

    def __init__(self, limit: float, *, tolerance: float = 1e-9) -> None:
        if limit <= 0:
            raise ValueError("memory limit must be positive")
        self.limit = float(limit)
        self._tolerance = float(tolerance) * max(1.0, float(limit))
        self._booked = 0.0
        self._peak = 0.0

    @property
    def booked(self) -> float:
        """Currently booked memory (``MBooked``)."""
        return self._booked

    @property
    def peak_booked(self) -> float:
        """Largest booked amount observed so far."""
        return self._peak

    @property
    def available(self) -> float:
        """Memory that can still be booked."""
        return self.limit - self._booked

    def fits(self, amount: float) -> bool:
        """True when ``amount`` additional bytes can be booked within the bound."""
        return self._booked + amount <= self.limit + self._tolerance

    def book(self, amount: float, *, enforce: bool = True) -> None:
        """Book ``amount`` bytes.

        ``enforce=True`` (default) raises if the bound would be exceeded —
        heuristics are expected to check :meth:`fits` first, so an overflow
        here is a bug, not an infeasible instance.
        """
        if amount < 0:
            raise ValueError("cannot book a negative amount; use release()")
        if enforce and not self.fits(amount):
            raise RuntimeError(
                f"booking {amount:.6g} would exceed the memory bound "
                f"({self._booked:.6g} booked, limit {self.limit:.6g})"
            )
        self._booked += amount
        if self._booked > self._peak:
            self._peak = self._booked

    def release(self, amount: float) -> None:
        """Release ``amount`` booked bytes."""
        if amount < 0:
            raise ValueError("cannot release a negative amount; use book()")
        self._booked -= amount
        if self._booked < -self._tolerance:
            raise RuntimeError(
                f"released more memory than was booked (booked={self._booked:.6g})"
            )
        if self._booked < 0.0:
            self._booked = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryLedger(booked={self._booked:.6g}, limit={self.limit:.6g})"
