"""Event-driven simulation engine shared by the dynamic heuristics.

All three heuristics of the paper (Activation, MemBookingRedTree and
MemBooking) follow the same outer loop (Algorithms 1 and 2): wait for an
event (``t = 0`` or a task completion), update the heuristic's bookkeeping,
activate new tasks if memory allows, then greedily assign activated & ready
tasks to idle processors following the execution order ``EO``.

:class:`EventDrivenScheduler` implements that outer loop once — event queue,
processor pool, schedule recording, deadlock detection, decision-time
measurement — and delegates the heuristic-specific parts to four hooks:

``_setup()``
    initialise the bookkeeping (called once, before the ``t = 0`` event);
``_on_task_finished(node)``
    a task just completed: release / re-dispatch its memory;
``_activate()``
    activate candidate tasks while memory allows (``UpdateCAND-ACT`` /
    the activation loop of Algorithm 1);
``_pop_ready_task()``
    return the highest-EO-priority task that is activated and whose children
    have all completed, or ``None`` when no such task exists.  Heuristics
    that keep their ready pool in a :class:`~repro.schedulers.base.ReadyQueue`
    simply assign it to :attr:`EventDrivenScheduler.ready_queue` during
    ``_setup()`` and inherit the default implementation; the engine also uses
    the queue's O(1) emptiness check to skip the timed pop entirely when
    nothing is ready, so idle events do not inflate the measured scheduling
    time (Figures 5, 6 and 13) with pure timer overhead.

The engine measures the cumulative wall-clock time spent inside those hooks;
this is the "scheduling time" of Figures 5, 6 and 13 (order pre-computation
excluded, as in the paper).

Deadlock handling: if at some event no task is running and the hooks cannot
produce a ready task while unprocessed tasks remain, the heuristic cannot
complete the tree under this memory bound.  The engine then returns a result
with ``completed=False`` instead of raising, because "this instance cannot be
scheduled" is a legitimate experimental outcome (Section 7.4 reports exactly
that for MemBookingRedTree).
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Mapping

import numpy as np

from ..core.task_tree import TaskTree
from ..orders import Ordering
from .base import UNSCHEDULED, ReadyQueue, ScheduleResult, Scheduler
from .validation import memory_profile

__all__ = ["EventDrivenScheduler"]


class EventDrivenScheduler(Scheduler):
    """Template-method implementation of the paper's dynamic schedulers."""

    #: EO-rank-keyed pool of tasks that may start right now.  Subclasses set
    #: it in ``_setup()``; the engine uses its O(1) emptiness test to avoid
    #: timing no-op pops, and the default ``_pop_ready_task`` pops from it.
    ready_queue: ReadyQueue | None = None

    # ------------------------------------------------------------------ #
    # hooks to be provided by subclasses
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _on_task_finished(self, node: int) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _activate(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _pop_ready_task(self) -> int | None:
        """Pop the best ready task from :attr:`ready_queue` (default hook)."""
        queue = self.ready_queue
        if queue is None:
            # Fail loud, as the abstract hook did before the default existed:
            # a subclass must either register a queue or override this hook.
            raise NotImplementedError(
                f"{type(self).__name__}._setup() must assign self.ready_queue "
                "or the class must override _pop_ready_task()"
            )
        return queue.pop()

    def _on_task_started(self, node: int) -> None:
        """Optional hook called when a task is placed on a processor."""

    def _extra_results(self) -> dict[str, Any]:
        """Optional per-heuristic diagnostics merged into ``ScheduleResult.extras``."""
        return {}

    def _invariant_state(self) -> dict[str, Any]:
        """State snapshot passed to the invariant hook after every event."""
        return {}

    # ------------------------------------------------------------------ #
    # engine state (initialised in _run, available to the hooks)
    # ------------------------------------------------------------------ #
    tree: TaskTree
    num_processors: int
    memory_limit: float
    ao: Ordering
    eo: Ordering

    def _reset_engine_state(self) -> None:
        """Drop the per-run engine references once a simulation is over.

        Scheduler objects are routinely reused across instances (the sweep
        runner builds one per record, but the CLI, the ablations and user
        code call ``schedule`` repeatedly on one object).  Every run fully
        re-initialises its bookkeeping in ``_setup``, so reuse was already
        *correct*; clearing the references also stops a finished scheduler
        from keeping the last tree, its orders and the ready queue alive —
        which matters because the experiment harness memoises per-tree data
        behind weak references and relies on trees becoming collectable.
        """
        self.tree = None  # type: ignore[assignment]
        self.ao = None  # type: ignore[assignment]
        self.eo = None  # type: ignore[assignment]
        self.ready_queue = None

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> ScheduleResult:
        try:
            return self._run_simulation(
                tree, num_processors, memory_limit, ao, eo, invariant_hook=invariant_hook
            )
        finally:
            # Clear the per-run references even when a hook raises, so a
            # long-lived scheduler object never pins the last tree.
            self._reset_engine_state()

    def _run_simulation(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> ScheduleResult:
        self.tree = tree
        self.num_processors = num_processors
        self.memory_limit = memory_limit
        self.ao = ao
        self.eo = eo

        n = tree.n
        start_times = np.full(n, np.nan)
        finish_times = np.full(n, np.nan)
        processor = np.full(n, UNSCHEDULED, dtype=np.int64)

        free_processors = list(range(num_processors - 1, -1, -1))  # pop() gives proc 0 first
        running = 0
        finished_count = 0
        clock = 0.0
        num_events = 0
        decision_seconds = 0.0
        failure: str | None = None

        # Completion events: (finish_time, node, processor)
        event_queue: list[tuple[float, int, int]] = []

        perf_counter = time.perf_counter  # hot loop: avoid attribute lookups
        ptime = tree.ptime

        self.ready_queue = None  # reset any queue left over from a previous run
        tic = perf_counter()
        self._setup()
        decision_seconds += perf_counter() - tic

        def dispatch_ready() -> None:
            """Assign activated & available tasks to idle processors (EO order)."""
            nonlocal running, decision_seconds
            ready = self.ready_queue
            while free_processors:
                # Fast path: when the heuristic exposes its ready pool and the
                # pool is empty there is no decision to take, so charge
                # nothing.  Without this guard every idle event paid a timed
                # ``None`` pop whose measured duration is mostly perf_counter
                # overhead, inflating ``scheduling_seconds`` on large sweeps.
                if ready is not None and not ready:
                    break
                # One timed region covers the pop and the start hook: the
                # engine bookkeeping in between is not a heuristic decision,
                # and fewer perf_counter pairs mean less timer noise.
                tic = perf_counter()
                node = self._pop_ready_task()
                if node is not None:
                    self._on_task_started(node)
                decision_seconds += perf_counter() - tic
                if node is None:
                    break
                proc = free_processors.pop()
                start_times[node] = clock
                finish = clock + float(ptime[node])
                finish_times[node] = finish
                processor[node] = proc
                running += 1
                heapq.heappush(event_queue, (finish, node, proc))

        # --- t = 0 event ---------------------------------------------------
        tic = perf_counter()
        self._activate()
        decision_seconds += perf_counter() - tic
        num_events += 1
        dispatch_ready()
        if invariant_hook is not None:
            invariant_hook(self._invariant_state())

        if running == 0 and finished_count < n:
            failure = (
                "no task can be started at t=0: the memory bound is too small "
                "for the first activations"
            )

        # --- main loop ------------------------------------------------------
        while failure is None and event_queue:
            clock = event_queue[0][0]
            # Process every completion at this instant before re-activating, as
            # in Algorithm 2 ("foreach just finished node j").
            while event_queue and event_queue[0][0] == clock:
                _, node, proc = heapq.heappop(event_queue)
                running -= 1
                finished_count += 1
                free_processors.append(proc)
                num_events += 1
                tic = perf_counter()
                self._on_task_finished(node)
                decision_seconds += perf_counter() - tic
            tic = perf_counter()
            self._activate()
            decision_seconds += perf_counter() - tic
            dispatch_ready()
            if invariant_hook is not None:
                invariant_hook(self._invariant_state())
            if running == 0 and finished_count < n:
                failure = (
                    f"deadlock at t={clock:.6g}: {n - finished_count} tasks remain but "
                    "none is activated and available under the memory bound"
                )

        completed = finished_count == n
        makespan = clock if completed else math.inf
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=completed,
            makespan=makespan,
            start_times=start_times,
            finish_times=finish_times,
            processor=processor,
            peak_memory=math.nan,
            scheduling_seconds=decision_seconds,
            num_events=num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=failure,
            extras=self._extra_results(),
        )
        result.peak_memory = memory_profile(tree, result).peak
        return result
