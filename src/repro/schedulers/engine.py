"""Array-native event-driven simulation engine for the dynamic heuristics.

All three heuristics of the paper (Activation, MemBookingRedTree and
MemBooking) follow the same outer loop (Algorithms 1 and 2): wait for an
event (``t = 0`` or a task completion), update the heuristic's bookkeeping,
activate new tasks if memory allows, then greedily assign activated & ready
tasks to idle processors following the execution order ``EO``.

:class:`EventDrivenScheduler` implements that outer loop once.  Since the
array-engine rewrite the hot path is organised around **flat per-node state**
rather than per-node Python objects:

* the event queue holds primitive ``(finish_time, node)`` pairs (ties break
  by node index, exactly as the historical ``(time, node, proc)`` entries
  did — node indices are unique); the processor of a completing task is read
  from a flat per-node list;
* per-task results (start/finish times, processor assignment) accumulate in
  plain Python lists and are materialised as NumPy arrays once, at the end
  of the run;
* all completions at one instant are handed to the heuristic as **one
  batch** (:meth:`EventDrivenScheduler._on_tasks_finished`; the default
  implementation loops over the historical per-node
  :meth:`~EventDrivenScheduler._on_task_finished` hook, so subclasses keep
  working unchanged);
* decision-time measurement is **batched per event instant**: a single
  ``perf_counter`` pair brackets the completion hooks, the activation scan
  and the dispatch decisions of one instant, instead of two timer calls per
  hook invocation.  On large sweeps the historical per-hook pairs spent a
  measurable share of the "scheduling time" of Figures 5, 6 and 13 inside
  ``perf_counter`` itself;
* the static per-tree planes every run re-derived (children CSR, AO/EO
  ranks, activation requests along the AO, per-node release volumes) are
  computed once per (tree, AO, EO) in a :class:`SimWorkspace` and shared by
  every run on that tree — the experiment harness builds one per
  :class:`~repro.experiments.runner.InstanceContext`, so the 60+ simulations
  a sweep runs on one tree pay for the conversion exactly once.

The heuristic-specific parts remain four hooks:

``_setup()``
    initialise the bookkeeping (called once, before the ``t = 0`` event);
``_on_tasks_finished(nodes)`` / ``_on_task_finished(node)``
    tasks just completed: release / re-dispatch their memory;
``_activate()``
    activate candidate tasks while memory allows (``UpdateCAND-ACT`` /
    the activation loop of Algorithm 1);
``_pop_ready_task()``
    return the highest-EO-priority task that is activated and whose children
    have all completed, or ``None`` when no such task exists.  Heuristics
    that keep their ready pool in a :class:`~repro.schedulers.base.ReadyQueue`
    simply assign it to :attr:`EventDrivenScheduler.ready_queue` during
    ``_setup()`` and inherit the default implementation; the engine also uses
    the queue's O(1) emptiness check to skip idle pops entirely.

Schedule results are **bit-identical** to the pre-array engine preserved in
:mod:`repro.schedulers.reference` (event order, tie-breaking, deadlock
semantics and floating-point bookkeeping — pinned by
``tests/test_array_engine_parity.py``); only the wall-clock
``scheduling_seconds`` measurements differ.

Deadlock handling: if at some event no task is running and the hooks cannot
produce a ready task while unprocessed tasks remain, the heuristic cannot
complete the tree under this memory bound.  The engine then returns a result
with ``completed=False`` instead of raising, because "this instance cannot be
scheduled" is a legitimate experimental outcome (Section 7.4 reports exactly
that for MemBookingRedTree).
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..analysis.registry import hot_kernel
from ..core.task_tree import NO_PARENT, TaskTree
from ..orders import Ordering
from .base import UNSCHEDULED, ReadyQueue, ScheduleResult, Scheduler
from .validation import memory_profile

__all__ = ["EventDrivenScheduler", "SimWorkspace"]


class SimWorkspace:
    """Static per-(tree, AO, EO) simulation planes, computed once, reused per run.

    The array kernels of the heuristics take per-node decisions with scalar
    reads and vectorised scans; both want the tree data in flat, cheap-to-
    index form.  A workspace precomputes, once per (tree, activation order,
    execution order):

    * plain-list mirrors of the node planes (``parent``, ``ptime``, ``fout``,
      ``mem_needed``) — CPython list indexing is several times faster than
      NumPy scalar indexing on the one-node-at-a-time walks;
    * the children CSR plane (:attr:`child_offsets` / :attr:`child_nodes`)
      straight from :attr:`repro.core.task_tree.TaskTree.children_csr`;
    * AO/EO rank lists and the AO sequence;
    * the Activation-family planes, packed into **one contiguous float64
      scratch block** (one allocation per tree): the booking request of every
      node *in AO position order* (``nexec + fout`` along the activation
      sequence — the vectorised prefix scan of ``UpdateCAND-ACT`` cumsums
      this row directly) and the per-node release volume on completion
      (``nexec + sum of children fout``).

    Workspaces are plain value objects: building one is O(n), holds no
    mutable simulation state (per-run state lives in the scheduler), and is
    only ever *read* by runs.  The engine validates that a workspace matches
    the (tree, AO, EO) of the run and silently builds a fresh one otherwise,
    so passing a stale workspace cannot corrupt a schedule.  All node arrays
    are derived from the tree's own (possibly arena-backed) buffers, so
    shared-memory workers build their workspaces from the zero-copy planes
    they inherited.
    """

    __slots__ = (
        "tree",
        "ao",
        "eo",
        "n",
        "parent_list",
        "ptime_list",
        "fout_list",
        "mem_needed_list",
        "num_children_list",
        "child_offsets",
        "child_nodes",
        "leaves_list",
        "ao_sequence_list",
        "ao_rank_list",
        "eo_rank_list",
        "_block",
        "request_ao",
        "request_ao_list",
        "release_list",
        "_native_planes",
    )

    def __init__(self, tree: TaskTree, ao: Ordering, eo: Ordering) -> None:
        self.tree = tree
        self.ao = ao
        self.eo = eo
        n = self.n = tree.n

        self.parent_list: list[int] = tree.parent.tolist()
        self.ptime_list: list[float] = tree.ptime.tolist()
        self.fout_list: list[float] = tree.fout.tolist()
        self.mem_needed_list: list[float] = tree.mem_needed.tolist()

        offsets, nodes = tree.children_csr
        self.child_offsets: list[int] = offsets.tolist()
        self.child_nodes: list[int] = nodes.tolist()
        self.num_children_list: list[int] = np.diff(offsets).tolist()
        self.leaves_list: list[int] = tree.leaves().tolist()

        self.ao_sequence_list: list[int] = ao.sequence.tolist()
        self.ao_rank_list: list[int] = ao.rank.tolist()
        self.eo_rank_list: list[int] = (
            self.ao_rank_list if eo is ao else eo.rank.tolist()
        )

        # One contiguous scratch block for the Activation-family float
        # planes; row views keep the block alive and cache-friendly.
        block = self._block = np.empty((2, n), dtype=np.float64)
        request_ao = block[0]
        release = block[1]
        # Booking request of the node activated at each AO position
        # (n_i + f_i, Algorithm 1), ready for the vectorised prefix scan.
        np.add(tree.nexec, tree.fout, out=release)  # reuse row as temp
        request_ao[:] = release[ao.sequence]
        # Release volume on completion: n_i plus the inputs consumed
        # (children outputs, booked by the children's own activations).
        children_fout = np.zeros(n, dtype=np.float64)
        has_parent = tree.parent != NO_PARENT
        np.add.at(children_fout, tree.parent[has_parent], tree.fout[has_parent])
        np.add(tree.nexec, children_fout, out=release)
        self.request_ao = request_ao
        self.request_ao_list: list[float] = request_ao.tolist()
        self.release_list: list[float] = release.tolist()
        self._native_planes = None

    def native_planes(self):
        """Contiguous int64/float64 views for the compiled kernels (cached).

        Built lazily from the workspace lists on the first native run of
        this (tree, AO, EO) and reused by every subsequent run — the same
        share-per-workspace discipline as the Python planes.
        """
        planes = self._native_planes
        if planes is None:
            from ..native.api import NativePlanes  # layering: engine is imported first

            planes = NativePlanes(
                n=self.n,
                parent=np.asarray(self.parent_list, dtype=np.int64),
                ptime=np.asarray(self.ptime_list, dtype=np.float64),
                fout=np.asarray(self.fout_list, dtype=np.float64),
                mem_needed=np.asarray(self.mem_needed_list, dtype=np.float64),
                num_children=np.asarray(self.num_children_list, dtype=np.int64),
                child_offsets=np.asarray(self.child_offsets, dtype=np.int64),
                child_nodes=np.asarray(self.child_nodes, dtype=np.int64),
                leaves=np.asarray(self.leaves_list, dtype=np.int64),
                ao_sequence=np.asarray(self.ao_sequence_list, dtype=np.int64),
                ao_rank=np.asarray(self.ao_rank_list, dtype=np.int64),
                eo_rank=np.asarray(self.eo_rank_list, dtype=np.int64),
                request_ao=np.ascontiguousarray(self.request_ao, dtype=np.float64),
                release=np.asarray(self.release_list, dtype=np.float64),
            )
            self._native_planes = planes
        return planes

    def matches(self, tree: TaskTree, ao: Ordering, eo: Ordering) -> bool:
        """True when this workspace was built for exactly this run's inputs."""
        return self.tree is tree and self.ao is ao and self.eo is eo

    @classmethod
    def from_planes(
        cls,
        tree: TaskTree,
        ao: Ordering,
        eo: Ordering,
        *,
        child_offsets: np.ndarray,
        child_nodes: np.ndarray,
        request_ao: np.ndarray,
        release: np.ndarray,
        ao_rank: "np.ndarray | None" = None,
        eo_rank: "np.ndarray | None" = None,
    ) -> "SimWorkspace":
        """Rebuild a workspace from precomputed (arena-resident) planes.

        The derived planes — the children CSR and the Activation
        request/release block — are adopted instead of recomputed, which is
        what lets shared-memory workers and batch lanes inherit them
        zero-copy from a :class:`~repro.core.tree_store.TreeStore` arena
        carrying workspace plane columns (see :mod:`repro.batch.planes`).
        The planes must have been produced by a workspace built for the same
        (tree, AO, EO); values are adopted verbatim, so the result is
        indistinguishable from ``SimWorkspace(tree, ao, eo)``.
        """
        ws = cls.__new__(cls)
        ws.tree = tree
        ws.ao = ao
        ws.eo = eo
        ws.n = tree.n
        ws.parent_list = tree.parent.tolist()
        ws.ptime_list = tree.ptime.tolist()
        ws.fout_list = tree.fout.tolist()
        ws.mem_needed_list = tree.mem_needed.tolist()
        offsets = np.asarray(child_offsets, dtype=np.int64)
        ws.child_offsets = offsets.tolist()
        ws.child_nodes = np.asarray(child_nodes, dtype=np.int64).tolist()
        ws.num_children_list = np.diff(offsets).tolist()
        ws.leaves_list = tree.leaves().tolist()
        ws.ao_sequence_list = ao.sequence.tolist()
        # Rank planes, when stored, are adopted like the other columns (the
        # orders could re-derive them, but the arena already paid for them).
        ws.ao_rank_list = (
            ao.rank.tolist()
            if ao_rank is None
            else np.asarray(ao_rank, dtype=np.int64).tolist()
        )
        if eo is ao:
            ws.eo_rank_list = ws.ao_rank_list
        elif eo_rank is None:
            ws.eo_rank_list = eo.rank.tolist()
        else:
            ws.eo_rank_list = np.asarray(eo_rank, dtype=np.int64).tolist()
        ws._block = None
        request = np.asarray(request_ao, dtype=np.float64)
        ws.request_ao = request
        ws.request_ao_list = request.tolist()
        ws.release_list = np.asarray(release, dtype=np.float64).tolist()
        ws._native_planes = None
        return ws


class EventDrivenScheduler(Scheduler):
    """Template-method implementation of the paper's dynamic schedulers."""

    #: EO-rank-keyed pool of tasks that may start right now.  Subclasses set
    #: it in ``_setup()``; the engine uses its O(1) emptiness test to avoid
    #: idle pops, and the default ``_pop_ready_task`` pops from it.
    ready_queue: ReadyQueue | None = None

    #: Name of this heuristic's compiled twin in :mod:`repro.native`
    #: (``"activation"`` / ``"membooking"``), or ``None`` when the scalar
    #: Python kernels are the only implementation.  The native stepper is
    #: bit-identical by contract (pinned by the three-way fuzz), so classes
    #: that set it never see a behavioural difference — only speed.
    native_kernel: str | None = None

    #: Per-scheduler native override: ``True`` requires the compiled
    #: kernels (raise if unavailable), ``False`` forces pure Python,
    #: ``None`` defers to the ``REPRO_NATIVE`` environment switch.  The
    #: sweep runner copies ``SweepConfig.native`` here; the CLI sets it
    #: from ``--native`` / ``--no-native``.
    native: bool | None = None

    #: The per-event hooks the compiled stepper replaces wholesale.  The
    #: C twin cannot call back into Python per event, so a subclass that
    #: overrides any of them (relative to the class that declared its
    #: ``native_kernel``) opts out of the native fast path automatically
    #: and runs through the Python kernels — overridden behaviour is never
    #: silently bypassed.  A subclass that re-declares ``native_kernel``
    #: itself re-asserts the contract for its own hook set.
    _NATIVE_REPLACED_HOOKS: tuple[str, ...] = (
        "_setup",
        "_activate",
        "_pop_ready_task",
        "_on_task_started",
        "_on_task_finished",
        "_on_tasks_finished",
    )

    #: Fast-path ready pool: a plain ``heapq`` list of ``(EO rank, node)``
    #: pairs.  An array kernel that never removes arbitrary entries assigns
    #: ``self.ready_heap = []`` in ``_setup()`` (instead of a
    #: :class:`~repro.schedulers.base.ReadyQueue`) and pushes pairs
    #: directly; the engine then pops the heap itself — no wrapper calls, no
    #: liveness set.  Ranks are permutations, so extraction order is
    #: identical to the queue's.  When set, it takes precedence over
    #: :attr:`ready_queue` and the ``_pop_ready_task`` hook.
    ready_heap: list[tuple[int, int]] | None = None

    # ------------------------------------------------------------------ #
    # hooks to be provided by subclasses
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _on_task_finished(self, node: int) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _on_tasks_finished(self, nodes: Sequence[int]) -> None:
        """Batch hook: every task completing at the current instant.

        The engine always delivers completions through this hook, one call
        per event instant, in ascending node order (the historical per-node
        delivery order).  The default forwards to ``_on_task_finished`` so
        per-node subclasses keep working; array kernels override the batch
        directly.
        """
        on_finished = self._on_task_finished
        for node in nodes:
            on_finished(node)

    def _activate(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _pop_ready_task(self) -> int | None:
        """Pop the best ready task from :attr:`ready_queue` (default hook)."""
        queue = self.ready_queue
        if queue is None:
            # Fail loud, as the abstract hook did before the default existed:
            # a subclass must either register a queue or override this hook.
            raise NotImplementedError(
                f"{type(self).__name__}._setup() must assign self.ready_queue "
                "or the class must override _pop_ready_task()"
            )
        return queue.pop()

    def _on_task_started(self, node: int) -> None:
        """Optional hook called when a task is placed on a processor."""

    def _extra_results(self) -> dict[str, Any]:
        """Optional per-heuristic diagnostics merged into ``ScheduleResult.extras``."""
        return {}

    def _invariant_state(self) -> dict[str, Any]:
        """State snapshot passed to the invariant hook after every event."""
        return {}

    # ------------------------------------------------------------------ #
    # engine state (initialised in _run, available to the hooks)
    # ------------------------------------------------------------------ #
    tree: TaskTree
    num_processors: int
    memory_limit: float
    ao: Ordering
    eo: Ordering
    #: Static planes of the current run (set by the engine before ``_setup``).
    workspace: SimWorkspace | None = None

    def _reset_engine_state(self) -> None:
        """Drop the per-run engine references once a simulation is over.

        Scheduler objects are routinely reused across instances (the sweep
        runner builds one per record, but the CLI, the ablations and user
        code call ``schedule`` repeatedly on one object).  Every run fully
        re-initialises its bookkeeping in ``_setup``, so reuse was already
        *correct*; clearing the references also stops a finished scheduler
        from keeping the last tree, its orders and the ready queue alive —
        which matters because the experiment harness memoises per-tree data
        behind weak references and relies on trees being collectable.
        """
        self.tree = None  # type: ignore[assignment]
        self.ao = None  # type: ignore[assignment]
        self.eo = None  # type: ignore[assignment]
        self.ready_queue = None
        self.ready_heap = None
        self.workspace = None

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace: SimWorkspace | None = None,
    ) -> ScheduleResult:
        try:
            # Native fast path: the compiled stepper cannot call back into
            # Python per event, so it only replaces runs that need no
            # invariant hook and whose engine hooks are the stock ones;
            # everything else (and AUTO mode without a compiler) falls
            # through to the Python kernels.
            if invariant_hook is None and self._native_hooks_intact():
                result = self._run_native(
                    tree, num_processors, memory_limit, ao, eo, workspace=workspace
                )
                if result is not None:
                    return result
            return self._run_simulation(
                tree,
                num_processors,
                memory_limit,
                ao,
                eo,
                invariant_hook=invariant_hook,
                workspace=workspace,
            )
        finally:
            # Clear the per-run references even when a hook raises, so a
            # long-lived scheduler object never pins the last tree.
            self._reset_engine_state()

    def _native_hooks_intact(self) -> bool:
        """True when this instance may take the compiled fast path.

        The native kernel is keyed to the class that declared
        ``native_kernel``: every hook in :attr:`_NATIVE_REPLACED_HOOKS`
        must still be the implementation that class sees, otherwise a
        subclass's customised hook (extra bookkeeping, instrumentation,
        deliberate faults in tests) would be silently skipped per event.
        """
        cls = type(self)
        for owner in cls.__mro__:
            if "native_kernel" in vars(owner):
                break
        else:  # pragma: no cover - the engine base declares the default
            return False
        if owner.native_kernel is None:
            return False
        for name in self._NATIVE_REPLACED_HOOKS:
            if getattr(cls, name, None) is not getattr(owner, name, None):
                return False
        return True

    def _run_native(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        workspace: SimWorkspace | None = None,
    ) -> ScheduleResult | None:
        """Run the whole simulation through the compiled C stepper.

        Returns ``None`` when native kernels are off or unavailable (the
        caller falls back to :meth:`_run_simulation`); raises
        :class:`repro.native.NativeUnavailableError` when they were
        explicitly required.  The returned schedule is byte-identical to
        the Python kernels' — same arrays, same extras, same failure
        strings — with only ``scheduling_seconds`` free to differ.
        """
        from .. import native as native_mod

        kernels = native_mod.native_kernels(self.native)
        if kernels is None:
            return None
        if workspace is None or not workspace.matches(tree, ao, eo):
            workspace = SimWorkspace(tree, ao, eo)
        self.workspace = workspace
        planes = workspace.native_planes()
        tic = time.perf_counter()
        outcome = native_mod.simulate(
            kernels,
            self.native_kernel,  # type: ignore[arg-type]  # guarded by caller
            planes,
            num_processors,
            memory_limit,
            dispatch_to_candidates=getattr(self, "dispatch_to_candidates", True),
        )
        seconds = time.perf_counter() - tic
        n = tree.n
        completed = outcome.finished == n
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=completed,
            makespan=outcome.clock if completed else math.inf,
            start_times=outcome.start,
            finish_times=outcome.finish,
            processor=outcome.processor,
            peak_memory=math.nan,
            scheduling_seconds=seconds,
            num_events=outcome.num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=outcome.failure,
            extras=outcome.extras,
        )
        result.peak_memory = memory_profile(tree, result).peak
        return result

    @hot_kernel(note="scalar event loop (Algorithm 2 skeleton)")
    def _run_simulation(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace: SimWorkspace | None = None,
    ) -> ScheduleResult:
        self.tree = tree
        self.num_processors = num_processors
        self.memory_limit = memory_limit
        self.ao = ao
        self.eo = eo
        if workspace is None or not workspace.matches(tree, ao, eo):
            workspace = SimWorkspace(tree, ao, eo)
        self.workspace = workspace

        n = tree.n
        nan = math.nan
        # Flat per-task result state; materialised as arrays once, at the end.
        start_times: list[float] = [nan] * n
        finish_times: list[float] = [nan] * n
        processor: list[int] = [UNSCHEDULED] * n
        proc_of = processor  # completing tasks read their processor back here

        free_processors = list(range(num_processors - 1, -1, -1))  # pop() gives proc 0 first
        running = 0
        finished_count = 0
        clock = 0.0
        num_events = 0
        decision_seconds = 0.0
        failure: str | None = None

        # Completion events as primitive (finish_time, node) pairs: node
        # indices are unique, so ties at one instant break by node index —
        # the same order the historical (time, node, proc) entries produced.
        event_queue: list[tuple[float, int]] = []

        heappush = heapq.heappush
        heappop = heapq.heappop
        perf_counter = time.perf_counter  # hot loop: avoid attribute lookups
        ptime = workspace.ptime_list

        self.ready_queue = None  # reset any pool left over from a previous run
        self.ready_heap = None
        tic = perf_counter()
        self._setup()
        decision_seconds += perf_counter() - tic

        # Hook resolution, once per run: skip the no-op start hook entirely
        # when a subclass did not override it, and pop the fast-path ready
        # heap directly when the kernel registered one.
        cls = type(self)
        on_started = (
            None
            if cls._on_task_started is EventDrivenScheduler._on_task_started
            else self._on_task_started
        )
        on_finished_batch = self._on_tasks_finished
        activate = self._activate
        ready_heap = self.ready_heap

        if ready_heap is not None:

            # kernel-ok: closure (event-instant scalars via nonlocal)
            def dispatch_ready() -> None:
                """Assign activated & available tasks to idle processors (EO order).

                Fast path: the kernel's ready pool is a plain (rank, node)
                heap the engine pops itself.  Runs inside the caller's timed
                region (one perf_counter pair per event instant).
                """
                nonlocal running
                while free_processors and ready_heap:
                    node = heappop(ready_heap)[1]
                    if on_started is not None:
                        on_started(node)
                    proc = free_processors.pop()
                    start_times[node] = clock
                    finish = clock + ptime[node]
                    finish_times[node] = finish
                    proc_of[node] = proc
                    running += 1
                    heappush(event_queue, (finish, node))

        else:

            # kernel-ok: closure (event-instant scalars via nonlocal)
            def dispatch_ready() -> None:
                """Hook-based dispatch (ReadyQueue / ``_pop_ready_task``)."""
                nonlocal running
                ready = self.ready_queue
                pop_ready = self._pop_ready_task
                while free_processors:
                    # When the heuristic exposes its ready pool and the pool
                    # is empty there is no decision to take.
                    if ready is not None and not ready:
                        break
                    node = pop_ready()
                    if node is None:
                        break
                    if on_started is not None:
                        on_started(node)
                    proc = free_processors.pop()
                    start_times[node] = clock
                    finish = clock + ptime[node]
                    finish_times[node] = finish
                    proc_of[node] = proc
                    running += 1
                    heappush(event_queue, (finish, node))

        # --- t = 0 event ---------------------------------------------------
        tic = perf_counter()
        activate()
        dispatch_ready()
        decision_seconds += perf_counter() - tic
        num_events += 1
        if invariant_hook is not None:
            invariant_hook(self._invariant_state())

        if running == 0 and finished_count < n:
            failure = (
                "no task can be started at t=0: the memory bound is too small "
                "for the first activations"
            )

        # --- main loop ------------------------------------------------------
        finished_now: list[int] = []
        while failure is None and event_queue:
            clock = event_queue[0][0]
            # Process every completion at this instant before re-activating,
            # as in Algorithm 2 ("foreach just finished node j").
            finished_now.clear()
            append_finished = finished_now.append
            while event_queue and event_queue[0][0] == clock:
                append_finished(heappop(event_queue)[1])
            completed_now = len(finished_now)
            running -= completed_now
            finished_count += completed_now
            num_events += completed_now
            for node in finished_now:
                free_processors.append(proc_of[node])
            tic = perf_counter()
            on_finished_batch(finished_now)
            activate()
            dispatch_ready()
            decision_seconds += perf_counter() - tic
            if invariant_hook is not None:
                invariant_hook(self._invariant_state())
            if running == 0 and finished_count < n:
                failure = (
                    f"deadlock at t={clock:.6g}: {n - finished_count} tasks remain but "
                    "none is activated and available under the memory bound"
                )

        completed = finished_count == n
        makespan = clock if completed else math.inf
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=completed,
            makespan=makespan,
            start_times=np.asarray(start_times, dtype=np.float64),
            finish_times=np.asarray(finish_times, dtype=np.float64),
            processor=np.asarray(processor, dtype=np.int64),
            peak_memory=math.nan,
            scheduling_seconds=decision_seconds,
            num_events=num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=failure,
            extras=self._extra_results(),
        )
        result.peak_memory = memory_profile(tree, result).peak
        return result
