"""Common scheduler interface and result container.

Every scheduling heuristic of the paper is exposed as a :class:`Scheduler`
subclass whose :meth:`Scheduler.schedule` method simulates the parallel
execution of a task tree on ``p`` processors sharing ``memory_limit`` bytes
and returns a :class:`ScheduleResult` describing the outcome — start/finish
times, processor assignment, makespan, actual peak memory and the wall-clock
time spent taking scheduling decisions (the quantity plotted in Figures 5, 6
and 13 of the paper).

A heuristic that cannot make progress under the given memory bound (which
does happen for ``MemBookingRedTree`` under tight memory, Section 7.4) does
not raise: it returns a result with ``completed=False`` and a
``failure_reason`` so experiment sweeps can count failures exactly like the
paper does.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..core.task_tree import TaskTree
from ..orders import Ordering, minimum_memory_postorder

__all__ = ["ReadyQueue", "ScheduleResult", "Scheduler", "SchedulingError", "UNSCHEDULED"]

#: Sentinel processor id for tasks that never ran (failed schedules).
UNSCHEDULED: int = -1


class ReadyQueue:
    """Heap-backed queue of ready tasks keyed by an order's rank array.

    Every dynamic heuristic keeps a pool of tasks that may start right now
    and repeatedly extracts the one with the highest priority of the
    execution order ``EO`` (smallest rank).  The seed implementations used a
    mix of ad-hoc structures for this — ``IndexedHeap`` with hand-computed
    priorities in ``Activation``/``MemBooking``, an O(n) ``min`` scan over a
    plain set in ``MemBookingReference`` — so the hot decision path of large
    sweeps paid a linear scan per started task.  ``ReadyQueue`` centralises
    the pattern: it stores the rank array once and provides amortised
    O(log n) ``add``/``pop`` on the C-implemented :mod:`heapq`, with
    ``remove`` handled by lazy deletion (stale heap entries are skipped when
    they surface).  Entries are ``(rank, node)`` pairs, so extraction is
    deterministic: ranks are permutations, ties cannot occur between
    distinct nodes, and a re-added node is indistinguishable from its stale
    entry — schedules stay exactly reproducible.

    ``pop`` and ``peek`` return ``None`` on an empty queue, matching the
    engine's ``_pop_ready_task`` contract.

    ``rank`` may be a NumPy rank array or a plain Python list of ranks; the
    queue indexes it on every ``add``, so hot callers (the array kernels)
    pass the precomputed rank *list* of their
    :class:`~repro.schedulers.engine.SimWorkspace` — CPython list indexing
    avoids the NumPy scalar-extraction overhead on the per-task hot path.
    """

    __slots__ = ("_heap", "_live", "_rank")

    def __init__(self, rank: "np.ndarray | list[int]", items: Iterable[int] = ()) -> None:
        self._rank: list[int] = rank if isinstance(rank, list) else np.asarray(rank).tolist()
        self._heap: list[tuple[int, int]] = []
        self._live: set[int] = set()
        for item in items:
            self.add(int(item))

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, node: int) -> bool:
        return node in self._live

    def add(self, node: int) -> None:
        """Insert ``node`` with the priority of its rank (raise if present)."""
        if node in self._live:
            raise ValueError(f"item {node!r} already in heap")
        self._live.add(node)
        heapq.heappush(self._heap, (self._rank[node], node))

    def pop(self) -> int | None:
        """Remove and return the best-ranked node, or ``None`` when empty."""
        live = self._live
        if not live:
            return None
        heap = self._heap
        while True:
            node = heapq.heappop(heap)[1]
            if node in live:
                live.remove(node)
                return node

    def peek(self) -> int | None:
        """Return the best-ranked node without removing it (``None`` if empty)."""
        live = self._live
        if not live:
            return None
        heap = self._heap
        while heap[0][1] not in live:  # drop stale entries of removed nodes
            heapq.heappop(heap)
        return heap[0][1]

    def remove(self, node: int) -> None:
        """Remove an arbitrary ``node`` (raise ``KeyError`` when absent).

        Lazy: the heap entry stays behind and is skipped when it surfaces.
        """
        self._live.remove(node)

    def discard(self, node: int) -> None:
        """Remove ``node`` when present, do nothing otherwise."""
        self._live.discard(node)


class SchedulingError(RuntimeError):
    """Raised for invalid scheduling requests (bad processor count, ...).

    Note that an *infeasible* instance (memory too small) is not an error:
    the heuristics report it through :attr:`ScheduleResult.completed`.
    """


@dataclass
class ScheduleResult:
    """Outcome of simulating a heuristic on one instance.

    Attributes
    ----------
    scheduler:
        Name of the heuristic (``"Activation"``, ``"MemBooking"``, ...).
    tree_size:
        Number of tasks of the instance.
    num_processors, memory_limit:
        Platform parameters of the simulation.
    completed:
        ``True`` when every task was executed within the memory bound.
    failure_reason:
        Human-readable explanation when ``completed`` is ``False``.
    makespan:
        Total completion time (``math.inf`` when the schedule failed).
    start_times, finish_times:
        Per-task times (``nan`` for tasks that never ran).
    processor:
        Per-task processor index (:data:`UNSCHEDULED` for tasks that never ran).
    peak_memory:
        Actual peak resident memory of the produced schedule (outputs alive
        plus execution data of running tasks), *not* the heuristic's internal
        booked memory.  This is the quantity reported in Figures 4 and 12.
    scheduling_seconds:
        Wall-clock time spent inside the heuristic's decision code
        (activation, booking, task selection), excluding the order
        pre-computation, as in the paper's timing figures.
    num_events:
        Number of simulation events processed (task completions + start).
    activation_order, execution_order:
        Names of the AO / EO used.
    extras:
        Free-form per-heuristic diagnostics (booked-memory peak, number of
        fictitious nodes, ...).
    """

    scheduler: str
    tree_size: int
    num_processors: int
    memory_limit: float
    completed: bool
    makespan: float
    start_times: np.ndarray
    finish_times: np.ndarray
    processor: np.ndarray
    peak_memory: float
    scheduling_seconds: float
    num_events: int
    activation_order: str = ""
    execution_order: str = ""
    failure_reason: str | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def normalized_memory(self) -> float:
        """Peak memory divided by the memory bound (fraction of memory used)."""
        if self.memory_limit <= 0:
            return math.nan
        return self.peak_memory / self.memory_limit

    def speedup_over(self, other: "ScheduleResult") -> float:
        """Makespan ratio ``other / self`` (how much faster this schedule is)."""
        if not (self.completed and other.completed) or self.makespan <= 0:
            return math.nan
        return other.makespan / self.makespan

    def summary(self) -> dict[str, Any]:
        """Flat dictionary used by the experiment reporting layer."""
        return {
            "scheduler": self.scheduler,
            "n": self.tree_size,
            "p": self.num_processors,
            "memory_limit": self.memory_limit,
            "completed": self.completed,
            "makespan": self.makespan,
            "peak_memory": self.peak_memory,
            "scheduling_seconds": self.scheduling_seconds,
            "num_events": self.num_events,
            "activation_order": self.activation_order,
            "execution_order": self.execution_order,
        }


class Scheduler(ABC):
    """Base class of all scheduling heuristics.

    Subclasses implement :meth:`_run` (usually through the event-driven
    engine of :mod:`repro.schedulers.engine`); :meth:`schedule` performs the
    argument validation and default-order handling shared by every heuristic.
    """

    #: Human readable name used in reports and result objects.
    name: str = "scheduler"

    def default_orders(self, tree: TaskTree) -> tuple[Ordering, Ordering]:
        """Default (AO, EO): the memory-minimising postorder for both.

        This matches the experimental setup of Section 7.2 ("the previous
        postorder was used as input for both the activation order AO and the
        execution order EO").
        """
        order = minimum_memory_postorder(tree)
        return order, order

    def schedule(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        *,
        ao: Ordering | None = None,
        eo: Ordering | None = None,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace: Any = None,
    ) -> ScheduleResult:
        """Simulate the heuristic on ``tree``.

        Parameters
        ----------
        tree:
            The task tree instance.
        num_processors:
            Number of identical processors ``p >= 1``.
        memory_limit:
            Shared memory size ``M`` (must be positive).
        ao, eo:
            Activation and execution orders; both default to the
            memory-minimising postorder.  ``ao`` must be a topological order.
        invariant_hook:
            Optional callback invoked by engine-based heuristics after every
            event with a dictionary of internal state; used by the test-suite
            to assert the bookkeeping invariants (Lemmas 2–5) at every step.
        workspace:
            Optional :class:`~repro.schedulers.engine.SimWorkspace` with the
            static planes of (tree, ao, eo), reused across repeated runs on
            one tree (the sweep harness passes its per-instance workspace).
            A workspace built for different inputs is ignored and replaced,
            so a stale one can cost time but never correctness.
        """
        if num_processors < 1:
            raise SchedulingError("num_processors must be at least 1")
        if not math.isfinite(memory_limit) or memory_limit <= 0:
            raise SchedulingError("memory_limit must be a positive finite number")
        if ao is None or eo is None:
            default_ao, default_eo = self.default_orders(tree)
            ao = ao if ao is not None else default_ao
            eo = eo if eo is not None else default_eo
        if ao.n != tree.n or eo.n != tree.n:
            raise SchedulingError("orders must cover exactly the nodes of the tree")
        if not ao.is_topological(tree):
            raise SchedulingError("the activation order must be a topological order")
        return self._run(
            tree,
            int(num_processors),
            float(memory_limit),
            ao,
            eo,
            invariant_hook=invariant_hook,
            workspace=workspace,
        )

    @abstractmethod
    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace: Any = None,
    ) -> ScheduleResult:
        """Heuristic-specific simulation (implemented by subclasses)."""
        raise NotImplementedError
