"""The simple Activation heuristic of Agullo et al. (Algorithm 1, Section 3.1).

The heuristic books, for every *activated* task ``i``, the memory ``n_i +
f_i`` it will eventually need on top of its inputs.  Tasks are activated in
the activation order ``AO`` as long as the bookings fit in ``M``; a task may
execute once it is activated and all of its children have completed.  When a
task finishes, its execution data and its inputs (the outputs of its
children, booked by the children's own activations) are released.

This strategy is safe — it never books less than what a task needs — but it
is very conservative: along a chain it books the execution data of every
task of the chain simultaneously even though they can never run
concurrently, which starves other branches of memory and therefore of
parallelism.  Quantifying that loss (and recovering it with MemBooking) is
the core of the paper.

Implementation: array-native.  The per-node state lives in flat vectors
(activation flags, children-remaining counters) indexed by node id; the
booking requests along the AO are a precomputed
:class:`~repro.schedulers.engine.SimWorkspace` plane, and the activation
loop is a **vectorised prefix scan**: a chunked exact ``cumsum`` over the
remaining AO suffix finds every activation the current budget admits in one
NumPy kernel instead of one ledger transaction per node.  The scan
reproduces the sequential ledger arithmetic bit for bit (``cumsum`` is the
same left-fold of IEEE additions the one-at-a-time bookings performed), so
schedules are identical to
:class:`repro.schedulers.reference.ReferenceActivationScheduler` — the
parity suite asserts it.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, MutableSequence, Sequence

import numpy as np

from ..analysis.registry import hot_kernel
from .engine import EventDrivenScheduler

__all__ = ["ActivationScheduler", "run_activation_scan"]

#: Activations taken one at a time before switching to the vector scan.
#: Most ``_activate`` calls admit zero or a couple of nodes — a NumPy kernel
#: for those costs more than it saves — while the large bursts (t = 0, big
#: frees) run through the cumsum scan.
_SCALAR_BURST = 16

#: First vector-scan chunk; doubled while a chunk activates fully, so a
#: burst of k activations costs O(k) scanned entries, not O(n).
_SCAN_CHUNK = 64


@hot_kernel(note="UpdateCAND-ACT transition, shared scalar/lane")
def run_activation_scan(
    pos: int,
    total: int,
    booked: float,
    peak: float,
    threshold: float,
    req_list: Sequence[float],
    req_ao: np.ndarray,
    ao_seq: Sequence[int],
    activated: "MutableSequence[int] | np.ndarray",
    ch_not_fin: "Sequence[int] | np.ndarray",
    eo_rank: Sequence[int],
    ready: list[tuple[int, int]],
) -> tuple[int, float, float]:
    """The ``UpdateCAND-ACT`` transition of Algorithm 1, as a pure function.

    Shared by the scalar :class:`ActivationScheduler` and the batched lane
    kernel of :mod:`repro.batch.lanes`, so the two implementations cannot
    drift: the exact ledger fold (scalar burst first, then the chunked
    exact-``cumsum`` prefix scan) lives here once.  The per-node containers
    are duck-typed — the scalar kernel passes a ``bytearray``/``list`` pair,
    the lane kernel passes rows of its ``[B, n]`` NumPy planes — and the
    arithmetic is pure-Python floats either way, so schedules are identical.

    Returns the advanced ``(next position, booked, peak booked)``; activation
    flags are set and newly available tasks pushed onto ``ready`` in place.
    """
    # One-at-a-time burst first (the typical call admits a handful of
    # nodes): exactly the sequential ledger fold.
    burst_end = min(total, pos + _SCALAR_BURST)
    while pos < burst_end:
        grown = booked + req_list[pos]
        if grown > threshold:
            return pos, booked, peak
        booked = grown
        if booked > peak:
            peak = booked
        node = ao_seq[pos]
        activated[node] = 1
        if ch_not_fin[node] == 0:
            heappush(ready, (eo_rank[node], node))
        pos += 1

    # Long activation burst: switch to the vectorised prefix scan over
    # the remaining AO suffix, in doubling chunks.
    if pos < total:
        chunk = _SCAN_CHUNK
        while pos < total:
            end = min(pos + chunk, total)
            seg = req_ao[pos:end]
            # Exact prefix fold: cum[k] is the booked total after the
            # k-th activation of this chunk, the same chain of additions
            # the sequential ledger performed.
            # kernel-ok: loop-alloc (doubling chunk buffer of the exact scan)
            cum = np.empty(seg.size + 1, dtype=np.float64)
            cum[0] = booked
            cum[1:] = seg
            np.cumsum(cum, out=cum)
            over = np.nonzero(cum[1:] > threshold)[0]
            take = int(over[0]) if over.size else seg.size
            if take:
                high = float(cum[1 : take + 1].max())
                if high > peak:
                    peak = high
                booked = float(cum[take])
                for node in ao_seq[pos : pos + take]:
                    activated[node] = 1
                    if ch_not_fin[node] == 0:
                        heappush(ready, (eo_rank[node], node))
                pos += take
            if take < seg.size:
                break
            chunk <<= 1

    return pos, booked, peak


class ActivationScheduler(EventDrivenScheduler):
    """Algorithm 1 of the paper (the baseline activation policy)."""

    name = "Activation"
    #: Compiled twin (repro.native): the full event loop with this
    #: heuristic's activation scan and release ledger.
    native_kernel = "activation"

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        ws = self.workspace
        assert ws is not None  # the engine installs it before _setup
        limit = self.memory_limit
        # Inlined MemoryLedger: same bound, tolerance and clamp semantics,
        # kept in local floats instead of method calls on the hot path.
        self._limit = limit
        self._tol = 1e-9 * max(1.0, limit)
        self._threshold = limit + self._tol
        self._booked = 0.0
        self._peak_booked = 0.0
        # Position of the next node of AO to try to activate.
        self._next_activation = 0
        self._total = ws.n
        # Flat per-node state vectors (indexed by node id).
        self._activated = bytearray(ws.n)
        self._ch_not_fin = ws.num_children_list.copy()
        # Static planes shared by every run on this (tree, AO, EO).
        self._parent_list = ws.parent_list
        self._release_list = ws.release_list
        self._req_ao = ws.request_ao
        self._req_ao_list = ws.request_ao_list
        self._ao_seq_list = ws.ao_sequence_list
        self._eo_rank_list = ws.eo_rank_list
        # Ready tasks (activated + all children finished), keyed by EO rank:
        # a plain (rank, node) heap the engine pops directly (fast path).
        self.ready_heap = []

    @hot_kernel
    def _activate(self) -> None:
        pos = self._next_activation
        total = self._total
        if pos >= total:
            return
        booked = self._booked
        threshold = self._threshold
        req_list = self._req_ao_list
        # Scalar fast path: the first candidate not fitting is by far the
        # common case mid-run; don't pay a function call to find that out.
        if booked + req_list[pos] > threshold:
            return
        pos, booked, peak = run_activation_scan(
            pos,
            total,
            booked,
            self._peak_booked,
            threshold,
            req_list,
            self._req_ao,
            self._ao_seq_list,
            self._activated,
            self._ch_not_fin,
            self._eo_rank_list,
            self.ready_heap,
        )
        self._next_activation = pos
        self._booked = booked
        self._peak_booked = peak

    @hot_kernel
    def _on_tasks_finished(self, nodes: Sequence[int]) -> None:
        # Free the execution data of each completed node and the inputs it
        # consumed (the outputs of its children, booked when the children
        # were activated).  The node's own output stays booked for the
        # parent.  Releases clamp at zero per node, exactly like the ledger.
        booked = self._booked
        neg_tol = -self._tol
        release = self._release_list
        parent = self._parent_list
        ch_not_fin = self._ch_not_fin
        activated = self._activated
        eo_rank = self._eo_rank_list
        ready = self.ready_heap
        for node in nodes:
            booked -= release[node]
            if booked < 0.0:
                if booked < neg_tol:
                    raise RuntimeError(
                        f"released more memory than was booked (booked={booked:.6g})"
                    )
                booked = 0.0
            p = parent[node]
            if p >= 0:
                ch_not_fin[p] -= 1
                if ch_not_fin[p] == 0 and activated[p]:
                    heappush(ready, (eo_rank[p], p))
        self._booked = booked

    def _on_task_finished(self, node: int) -> None:
        self._on_tasks_finished((node,))

    def _extra_results(self) -> dict[str, Any]:
        return {
            "peak_booked_memory": self._peak_booked,
            "activated": self._next_activation,
        }

    def _invariant_state(self) -> dict[str, Any]:
        return {
            "booked": self._booked,
            "limit": self._limit,
            "activated_prefix": self._next_activation,
        }
