"""The simple Activation heuristic of Agullo et al. (Algorithm 1, Section 3.1).

The heuristic books, for every *activated* task ``i``, the memory ``n_i +
f_i`` it will eventually need on top of its inputs.  Tasks are activated in
the activation order ``AO`` as long as the bookings fit in ``M``; a task may
execute once it is activated and all of its children have completed.  When a
task finishes, its execution data and its inputs (the outputs of its
children, booked by the children's own activations) are released.

This strategy is safe — it never books less than what a task needs — but it
is very conservative: along a chain it books the execution data of every
task of the chain simultaneously even though they can never run
concurrently, which starves other branches of memory and therefore of
parallelism.  Quantifying that loss (and recovering it with MemBooking) is
the core of the paper.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.task_tree import NO_PARENT
from .base import ReadyQueue
from .engine import EventDrivenScheduler
from .memory import MemoryLedger

__all__ = ["ActivationScheduler"]


class ActivationScheduler(EventDrivenScheduler):
    """Algorithm 1 of the paper (the baseline activation policy)."""

    name = "Activation"

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        tree = self.tree
        n = tree.n
        self._ledger = MemoryLedger(self.memory_limit)
        # Position of the next node of AO to try to activate.
        self._next_activation = 0
        self._activated = [False] * n
        # Number of children not yet finished, to detect availability in O(1).
        self._children_not_finished = [tree.num_children(i) for i in range(n)]
        self._finished = [False] * n
        # Per-node booking request and total input volume (children outputs),
        # precomputed so the activation/release hot loops stay scalar.
        self._request = tree.nexec + tree.fout
        self._children_fout = np.zeros(n, dtype=np.float64)
        has_parent = tree.parent != NO_PARENT
        np.add.at(self._children_fout, tree.parent[has_parent], tree.fout[has_parent])
        # Ready tasks (activated + all children finished), keyed by EO rank.
        # Registering the queue with the engine enables its empty-queue fast
        # path and the default ``_pop_ready_task``.
        self.ready_queue = ReadyQueue(self.eo.rank)

    def _activate(self) -> None:
        tree = self.tree
        ao = self.ao.sequence
        ledger = self._ledger
        while self._next_activation < tree.n:
            node = int(ao[self._next_activation])
            request = float(self._request[node])
            if not ledger.fits(request):
                break
            ledger.book(request)
            self._activated[node] = True
            self._next_activation += 1
            if self._children_not_finished[node] == 0:
                self.ready_queue.add(node)

    def _on_task_finished(self, node: int) -> None:
        tree = self.tree
        self._finished[node] = True
        # Free the execution data of ``node`` and the inputs it consumed
        # (the outputs of its children, booked when the children were
        # activated).  The output of ``node`` itself stays booked for the
        # parent.
        released = float(tree.nexec[node]) + float(self._children_fout[node])
        self._ledger.release(released)

        parent = int(tree.parent[node])
        if parent != NO_PARENT:
            self._children_not_finished[parent] -= 1
            if self._children_not_finished[parent] == 0 and self._activated[parent]:
                self.ready_queue.add(parent)

    def _extra_results(self) -> dict[str, Any]:
        return {
            "peak_booked_memory": self._ledger.peak_booked,
            "activated": self._next_activation,
        }

    def _invariant_state(self) -> dict[str, Any]:
        return {
            "booked": self._ledger.booked,
            "limit": self._ledger.limit,
            "activated_prefix": self._next_activation,
        }
