"""Post-hoc analysis of produced schedules: memory profile and feasibility.

The heuristics reason about *booked* memory; what the paper reports (and what
actually matters for correctness) is the **resident** memory of the schedule
they produce:

* the output ``f_i`` of task ``i`` is allocated when ``i`` starts and freed
  when its parent finishes (never freed for the root),
* the execution data ``n_i`` and the inputs of ``i`` are only needed while
  ``i`` runs (the inputs are the children outputs, already counted above).

:func:`memory_profile` reconstructs that piecewise-constant profile from the
start/finish times of a schedule, and :func:`validate_schedule` checks every
feasibility condition of the model:

1. every task runs exactly once, for exactly its processing time;
2. precedence: a task starts only after all of its children finished;
3. at most ``p`` tasks overlap at any instant;
4. no two tasks overlap on the same processor;
5. the resident memory never exceeds the bound ``M``.

These checks are used pervasively by the test-suite and are cheap enough
(``O(n log n)``) to run inside the experiment harness as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree
from .base import UNSCHEDULED, ScheduleResult

__all__ = ["MemoryProfile", "memory_profile", "validate_schedule", "ValidationReport"]


@dataclass(frozen=True)
class MemoryProfile:
    """Piecewise-constant resident-memory profile of a schedule.

    ``times`` holds the breakpoints (sorted, unique) and ``memory[k]`` is the
    resident memory on the interval ``[times[k], times[k+1])``.
    """

    times: np.ndarray
    memory: np.ndarray

    @property
    def peak(self) -> float:
        """Maximum resident memory over the whole execution."""
        return float(self.memory.max()) if self.memory.size else 0.0

    def at(self, t: float) -> float:
        """Resident memory at time ``t`` (right-continuous)."""
        index = int(np.searchsorted(self.times, t, side="right")) - 1
        if index < 0:
            return 0.0
        return float(self.memory[index])

    def average(self) -> float:
        """Time-averaged resident memory over the schedule's span."""
        if self.times.size < 2:
            return float(self.memory[0]) if self.memory.size else 0.0
        durations = np.diff(self.times)
        total = float(durations.sum())
        if total <= 0:
            return float(self.memory.max())
        return float(np.dot(self.memory[:-1], durations) / total)


def memory_profile(tree: TaskTree, result: ScheduleResult) -> MemoryProfile:
    """Reconstruct the resident-memory profile of a (possibly partial) schedule.

    Only tasks that actually ran (finite start time) contribute.  Outputs of
    tasks whose parent never ran stay resident until the end of the horizon,
    which is the correct behaviour for failed/partial schedules.
    """
    start = result.start_times
    finish = result.finish_times
    ran = np.isfinite(start)
    if not ran.any():
        return MemoryProfile(times=np.asarray([0.0]), memory=np.asarray([0.0]))

    horizon = float(np.nanmax(finish[ran]))
    events: list[tuple[float, float]] = []
    parent = tree.parent
    for node in range(tree.n):
        if not ran[node]:
            continue
        s, f = float(start[node]), float(finish[node])
        # Execution data and input consumption are counted through nexec only:
        # the children outputs are already resident (allocated at the child's
        # start) so adding them here would double count.
        if tree.nexec[node] > 0:
            events.append((s, float(tree.nexec[node])))
            events.append((f, -float(tree.nexec[node])))
        # Output: allocated at start, freed when the parent finishes.
        p = int(parent[node])
        release_time = None
        if p != NO_PARENT and ran[p]:
            release_time = float(finish[p])
        if tree.fout[node] > 0:
            events.append((s, float(tree.fout[node])))
            if release_time is not None:
                events.append((release_time, -float(tree.fout[node])))
            # Otherwise the output stays resident until the horizon.

    if not events:
        return MemoryProfile(times=np.asarray([0.0, horizon]), memory=np.asarray([0.0, 0.0]))

    events.sort(key=lambda item: item[0])
    times: list[float] = [0.0]
    memory: list[float] = [0.0]
    current = 0.0
    index = 0
    while index < len(events):
        t = events[index][0]
        delta = 0.0
        while index < len(events) and events[index][0] == t:
            delta += events[index][1]
            index += 1
        current += delta
        if t == times[-1]:
            memory[-1] = current
        else:
            times.append(t)
            memory.append(current)
    if times[-1] < horizon:
        times.append(horizon)
        memory.append(current)
    return MemoryProfile(times=np.asarray(times), memory=np.asarray(memory))


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_schedule`."""

    valid: bool
    errors: tuple[str, ...]
    peak_memory: float

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` with every violation when invalid."""
        if not self.valid:
            raise AssertionError("invalid schedule:\n" + "\n".join(self.errors))


def validate_schedule(
    tree: TaskTree,
    result: ScheduleResult,
    *,
    tolerance: float = 1e-6,
) -> ValidationReport:
    """Check a completed schedule against every constraint of the model.

    For a schedule with ``completed=False`` the function only verifies the
    consistency of the part that did run (durations, precedence among the
    executed tasks, processor and memory constraints up to the failure
    point).
    """
    errors: list[str] = []
    start = result.start_times
    finish = result.finish_times
    proc = result.processor
    n = tree.n
    scale = max(1.0, float(np.nanmax(finish)) if np.isfinite(finish).any() else 1.0)
    tol = tolerance * scale

    ran = np.isfinite(start) & np.isfinite(finish)
    if result.completed and not ran.all():
        errors.append("schedule claims completion but some tasks never ran")

    # 1. durations
    for node in np.flatnonzero(ran):
        expected = float(tree.ptime[node])
        actual = float(finish[node] - start[node])
        if abs(actual - expected) > tol:
            errors.append(
                f"task {node} ran for {actual:.6g} instead of {expected:.6g}"
            )
        if start[node] < -tol:
            errors.append(f"task {node} starts before time 0")
        if ran[node] and proc[node] == UNSCHEDULED:
            errors.append(f"task {node} ran but has no processor assigned")

    # 2. precedence
    for child, parent in tree.edges():
        if ran[parent]:
            if not ran[child]:
                errors.append(f"task {parent} ran before its child {child} was executed")
            elif start[parent] < finish[child] - tol:
                errors.append(
                    f"task {parent} started at {start[parent]:.6g} before child {child} "
                    f"finished at {finish[child]:.6g}"
                )

    # 3. processor count: sweep over start/finish events.
    events: list[tuple[float, int]] = []
    for node in np.flatnonzero(ran):
        if tree.ptime[node] <= 0:
            continue  # zero-duration tasks occupy no processor time
        events.append((float(start[node]), +1))
        events.append((float(finish[node]), -1))
    events.sort(key=lambda item: (item[0], item[1]))
    running = 0
    for _, delta in events:
        running += delta
        if running > result.num_processors:
            errors.append(
                f"more than p={result.num_processors} tasks run simultaneously"
            )
            break

    # 4. no overlap on a single processor
    by_proc: dict[int, list[tuple[float, float, int]]] = {}
    for node in np.flatnonzero(ran):
        if tree.ptime[node] <= 0:
            continue
        by_proc.setdefault(int(proc[node]), []).append(
            (float(start[node]), float(finish[node]), node)
        )
    for processor, intervals in by_proc.items():
        if processor == UNSCHEDULED:
            continue
        intervals.sort()
        for (s1, f1, n1), (s2, f2, n2) in zip(intervals, intervals[1:]):
            if s2 < f1 - tol:
                errors.append(
                    f"tasks {n1} and {n2} overlap on processor {processor}"
                )

    # 5. memory bound
    profile = memory_profile(tree, result)
    if profile.peak > result.memory_limit * (1 + tolerance) + tol:
        errors.append(
            f"resident memory peaks at {profile.peak:.6g} above the bound "
            f"{result.memory_limit:.6g}"
        )

    return ValidationReport(valid=not errors, errors=tuple(errors), peak_memory=profile.peak)
