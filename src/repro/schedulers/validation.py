"""Post-hoc analysis of produced schedules: memory profile and feasibility.

The heuristics reason about *booked* memory; what the paper reports (and what
actually matters for correctness) is the **resident** memory of the schedule
they produce:

* the output ``f_i`` of task ``i`` is allocated when ``i`` starts and freed
  when its parent finishes (never freed for the root),
* the execution data ``n_i`` and the inputs of ``i`` are only needed while
  ``i`` runs (the inputs are the children outputs, already counted above).

:func:`memory_profile` reconstructs that piecewise-constant profile from the
start/finish times of a schedule, and :func:`validate_schedule` checks every
feasibility condition of the model:

1. every task runs exactly once, for exactly its processing time;
2. precedence: a task starts only after all of its children finished;
3. at most ``p`` tasks overlap at any instant;
4. no two tasks overlap on the same processor;
5. the resident memory never exceeds the bound ``M``.

These checks are used pervasively by the test-suite and are cheap enough
(``O(n log n)``) to run inside the experiment harness as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree
from .base import UNSCHEDULED, ScheduleResult

__all__ = ["MemoryProfile", "memory_profile", "validate_schedule", "ValidationReport"]


@dataclass(frozen=True)
class MemoryProfile:
    """Piecewise-constant resident-memory profile of a schedule.

    ``times`` holds the breakpoints (sorted, unique) and ``memory[k]`` is the
    resident memory on the interval ``[times[k], times[k+1])``.
    """

    times: np.ndarray
    memory: np.ndarray

    @property
    def peak(self) -> float:
        """Maximum resident memory over the whole execution."""
        return float(self.memory.max()) if self.memory.size else 0.0

    def at(self, t: float) -> float:
        """Resident memory at time ``t`` (right-continuous)."""
        index = int(np.searchsorted(self.times, t, side="right")) - 1
        if index < 0:
            return 0.0
        return float(self.memory[index])

    def average(self) -> float:
        """Time-averaged resident memory over the schedule's span."""
        if self.times.size < 2:
            return float(self.memory[0]) if self.memory.size else 0.0
        durations = np.diff(self.times)
        total = float(durations.sum())
        if total <= 0:
            return float(self.memory.max())
        return float(np.dot(self.memory[:-1], durations) / total)


def memory_profile(tree: TaskTree, result: ScheduleResult) -> MemoryProfile:
    """Reconstruct the resident-memory profile of a (possibly partial) schedule.

    Only tasks that actually ran (finite start time) contribute.  Outputs of
    tasks whose parent never ran stay resident until the end of the horizon,
    which is the correct behaviour for failed/partial schedules.

    The reconstruction is fully vectorised (allocation/release events are
    aggregated with :func:`numpy.unique` and a cumulative sum) because it
    runs once per simulated schedule — on the hot path of every sweep.
    """
    start = result.start_times
    finish = result.finish_times
    ran = np.isfinite(start)
    if not ran.any():
        return MemoryProfile(times=np.asarray([0.0]), memory=np.asarray([0.0]))

    horizon = float(np.nanmax(finish[ran]))
    parent = tree.parent
    nexec = tree.nexec
    fout = tree.fout

    # Execution data and input consumption are counted through nexec only:
    # the children outputs are already resident (allocated at the child's
    # start) so adding them here would double count.
    exec_mask = ran & (nexec > 0)
    # Output: allocated at start, freed when the parent finishes; when the
    # parent never ran the output stays resident until the horizon.
    out_mask = ran & (fout > 0)
    parent_ran = np.zeros(tree.n, dtype=bool)
    has_parent = parent != NO_PARENT
    parent_ran[has_parent] = ran[parent[has_parent]]
    release_mask = out_mask & parent_ran

    times = np.concatenate(
        [
            start[exec_mask],
            finish[exec_mask],
            start[out_mask],
            finish[parent[release_mask]],
        ]
    )
    deltas = np.concatenate(
        [
            nexec[exec_mask],
            -nexec[exec_mask],
            fout[out_mask],
            -fout[release_mask],
        ]
    ).astype(np.float64)

    if times.size == 0:
        return MemoryProfile(times=np.asarray([0.0, horizon]), memory=np.asarray([0.0, 0.0]))

    # The profile always starts at t=0 with zero resident memory; a zero
    # sentinel event merges with any real events happening exactly at 0.
    times = np.concatenate([[0.0], times])
    deltas = np.concatenate([[0.0], deltas])
    unique_times, inverse = np.unique(times, return_inverse=True)
    summed = np.zeros(unique_times.size, dtype=np.float64)
    np.add.at(summed, inverse, deltas)
    memory = np.cumsum(summed)
    if unique_times[-1] < horizon:
        unique_times = np.concatenate([unique_times, [horizon]])
        memory = np.concatenate([memory, memory[-1:]])
    return MemoryProfile(times=unique_times, memory=memory)


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_schedule`."""

    valid: bool
    errors: tuple[str, ...]
    peak_memory: float

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` with every violation when invalid."""
        if not self.valid:
            raise AssertionError("invalid schedule:\n" + "\n".join(self.errors))


def validate_schedule(
    tree: TaskTree,
    result: ScheduleResult,
    *,
    tolerance: float = 1e-6,
) -> ValidationReport:
    """Check a completed schedule against every constraint of the model.

    For a schedule with ``completed=False`` the function only verifies the
    consistency of the part that did run (durations, precedence among the
    executed tasks, processor and memory constraints up to the failure
    point).
    """
    errors: list[str] = []
    start = result.start_times
    finish = result.finish_times
    proc = result.processor
    n = tree.n
    scale = max(1.0, float(np.nanmax(finish)) if np.isfinite(finish).any() else 1.0)
    tol = tolerance * scale

    ran = np.isfinite(start) & np.isfinite(finish)
    if result.completed and not ran.all():
        errors.append("schedule claims completion but some tasks never ran")

    # Every check below is vectorised: the validator runs on every schedule
    # of a sweep (SweepConfig.validate defaults to True), so per-node Python
    # loops would dominate the experiment wall-clock on large trees.  Python
    # iteration only happens over the (normally empty) violation sets.

    # 1. durations
    ran_nodes = np.flatnonzero(ran)
    actual = finish[ran_nodes] - start[ran_nodes]
    expected = tree.ptime[ran_nodes]
    wrong_duration = np.abs(actual - expected) > tol
    for node, act, exp in zip(
        ran_nodes[wrong_duration], actual[wrong_duration], expected[wrong_duration]
    ):
        errors.append(f"task {node} ran for {act:.6g} instead of {exp:.6g}")
    for node in ran_nodes[start[ran_nodes] < -tol]:
        errors.append(f"task {node} starts before time 0")
    for node in ran_nodes[proc[ran_nodes] == UNSCHEDULED]:
        errors.append(f"task {node} ran but has no processor assigned")

    # 2. precedence (edges run child -> parent)
    children = np.flatnonzero(tree.parent != NO_PARENT)
    parents = tree.parent[children]
    parent_ran = ran[parents]
    for child in children[parent_ran & ~ran[children]]:
        errors.append(
            f"task {tree.parent[child]} ran before its child {child} was executed"
        )
    both = parent_ran & ran[children]
    late = both & (start[parents] < finish[children] - tol)
    for child, parent in zip(children[late], parents[late]):
        errors.append(
            f"task {parent} started at {start[parent]:.6g} before child {child} "
            f"finished at {finish[child]:.6g}"
        )

    # 3. processor count: sweep over start/finish events (finish events sort
    # before start events at the same instant, as in an event-driven runtime).
    busy = ran & (tree.ptime > 0)  # zero-duration tasks occupy no processor time
    busy_nodes = np.flatnonzero(busy)
    if busy_nodes.size:
        event_times = np.concatenate([start[busy_nodes], finish[busy_nodes]])
        event_deltas = np.concatenate(
            [np.ones(busy_nodes.size), -np.ones(busy_nodes.size)]
        )
        order = np.lexsort((event_deltas, event_times))
        running_count = np.cumsum(event_deltas[order])
        if running_count.max() > result.num_processors:
            errors.append(
                f"more than p={result.num_processors} tasks run simultaneously"
            )

    # 4. no overlap on a single processor: sort by (processor, start) and
    # compare each interval with its successor on the same processor.
    assigned = busy & (proc != UNSCHEDULED)
    nodes = np.flatnonzero(assigned)
    if nodes.size > 1:
        order = np.lexsort((finish[nodes], start[nodes], proc[nodes]))
        nodes = nodes[order]
        same_proc = proc[nodes[:-1]] == proc[nodes[1:]]
        overlap = same_proc & (start[nodes[1:]] < finish[nodes[:-1]] - tol)
        for n1, n2 in zip(nodes[:-1][overlap], nodes[1:][overlap]):
            errors.append(
                f"tasks {n1} and {n2} overlap on processor {proc[n1]}"
            )

    # 5. memory bound
    profile = memory_profile(tree, result)
    if profile.peak > result.memory_limit * (1 + tolerance) + tol:
        errors.append(
            f"resident memory peaks at {profile.peak:.6g} above the bound "
            f"{result.memory_limit:.6g}"
        )

    return ValidationReport(valid=not errors, errors=tuple(errors), peak_memory=profile.peak)
