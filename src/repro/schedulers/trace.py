"""Schedule inspection: Gantt-style rendering, utilisation and trace export.

The simulator returns flat arrays (start/finish/processor per task); this
module turns them into things a human or a plotting pipeline can use:

* :func:`schedule_events` — the chronological list of (time, event, task,
  processor) tuples of a schedule;
* :func:`processor_utilisation` — busy time per processor and overall
  efficiency (the fraction of ``p x makespan`` actually spent computing);
* :func:`render_gantt` — a plain-text Gantt chart (one row per processor),
  handy to eyeball small schedules in examples and bug reports;
* :func:`schedule_to_records` — one dictionary per task, ready for
  :func:`repro.experiments.reporting.write_records_csv` or a DataFrame.

Everything operates on a :class:`~repro.schedulers.base.ScheduleResult` and
the corresponding :class:`~repro.core.task_tree.TaskTree`, so it works with
any heuristic of the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.task_tree import TaskTree
from .base import UNSCHEDULED, ScheduleResult

__all__ = [
    "schedule_events",
    "processor_utilisation",
    "UtilisationReport",
    "render_gantt",
    "schedule_to_records",
]


def schedule_events(result: ScheduleResult) -> list[tuple[float, str, int, int]]:
    """Chronological ``(time, "start"|"finish", task, processor)`` events.

    Ties are ordered finish-before-start (so that resource reuse at the same
    instant reads naturally) and then by task index.
    """
    events: list[tuple[float, str, int, int]] = []
    for task in range(result.start_times.size):
        start = result.start_times[task]
        finish = result.finish_times[task]
        if not np.isfinite(start):
            continue
        proc = int(result.processor[task])
        events.append((float(start), "start", task, proc))
        events.append((float(finish), "finish", task, proc))
    order = {"finish": 0, "start": 1}
    events.sort(key=lambda e: (e[0], order[e[1]], e[2]))
    return events


@dataclass(frozen=True)
class UtilisationReport:
    """Per-processor busy time and overall efficiency of a schedule."""

    makespan: float
    busy_time: tuple[float, ...]
    num_processors: int

    @property
    def total_busy(self) -> float:
        """Total computing time across every processor."""
        return float(sum(self.busy_time))

    @property
    def efficiency(self) -> float:
        """``total busy / (p * makespan)`` — 1.0 means perfectly packed."""
        if self.makespan <= 0 or self.num_processors <= 0:
            return float("nan")
        return self.total_busy / (self.num_processors * self.makespan)

    def as_dict(self) -> dict[str, Any]:
        return {
            "makespan": self.makespan,
            "num_processors": self.num_processors,
            "total_busy": self.total_busy,
            "efficiency": self.efficiency,
            "busy_time": list(self.busy_time),
        }


def processor_utilisation(result: ScheduleResult) -> UtilisationReport:
    """Compute the busy time of every processor and the overall efficiency."""
    busy = [0.0] * result.num_processors
    for task in range(result.start_times.size):
        start = result.start_times[task]
        if not np.isfinite(start):
            continue
        proc = int(result.processor[task])
        if proc == UNSCHEDULED:
            continue
        busy[proc] += float(result.finish_times[task] - start)
    makespan = result.makespan if np.isfinite(result.makespan) else float("nan")
    return UtilisationReport(
        makespan=float(makespan),
        busy_time=tuple(busy),
        num_processors=result.num_processors,
    )


def render_gantt(
    tree: TaskTree,
    result: ScheduleResult,
    *,
    width: int = 80,
    show_labels: bool = True,
) -> str:
    """Render a plain-text Gantt chart of a (completed or partial) schedule.

    Each processor is one row; time is discretised into ``width`` columns.
    A column shows the task index (modulo 10) of the task occupying the
    processor at that instant, or ``.`` when the processor is idle.  Zero
    duration tasks are not drawn (they occupy no visible time).
    """
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    finite = np.isfinite(result.finish_times)
    horizon = float(np.nanmax(result.finish_times[finite])) if finite.any() else 0.0
    if horizon <= 0:
        return "(empty schedule)"
    lines = []
    scale = horizon / width
    for proc in range(result.num_processors):
        row = ["."] * width
        for task in range(tree.n):
            if int(result.processor[task]) != proc or not np.isfinite(result.start_times[task]):
                continue
            start = result.start_times[task]
            finish = result.finish_times[task]
            first = int(start / scale)
            last = max(first, int(np.ceil(finish / scale)) - 1)
            for column in range(first, min(last + 1, width)):
                row[column] = str(task % 10)
        lines.append(f"P{proc:<3d} |" + "".join(row) + "|")
    if show_labels:
        header = f"time 0 {'-' * (width - 12)} {horizon:.4g}"
        lines.insert(0, header)
        util = processor_utilisation(result)
        lines.append(
            f"makespan {result.makespan:.6g}   efficiency {util.efficiency:.1%}   "
            f"peak memory {result.peak_memory:.6g}"
        )
    return "\n".join(lines)


def schedule_to_records(tree: TaskTree, result: ScheduleResult) -> list[dict[str, Any]]:
    """One dictionary per executed task (for CSV export / DataFrames)."""
    records: list[dict[str, Any]] = []
    for task in range(tree.n):
        start = result.start_times[task]
        if not np.isfinite(start):
            continue
        records.append(
            {
                "task": task,
                "processor": int(result.processor[task]),
                "start": float(start),
                "finish": float(result.finish_times[task]),
                "duration": float(tree.ptime[task]),
                "fout": float(tree.fout[task]),
                "nexec": float(tree.nexec[task]),
                "mem_needed": float(tree.mem_needed[task]),
                "parent": int(tree.parent[task]),
            }
        )
    records.sort(key=lambda r: (r["start"], r["task"]))
    return records
