"""Memory-oblivious list scheduling (reference point, not a paper heuristic).

A classical list scheduler: whenever a processor is idle, start the
highest-priority task (according to ``EO``) whose children have all
completed, ignoring the memory bound entirely.  Its makespan is a natural
reference for "how fast could we go if memory were unlimited", and its peak
resident memory shows how much memory an unconstrained execution would need
— useful background for the memory-pressure experiments and for sanity
checks (no memory-constrained heuristic can beat it).
"""

from __future__ import annotations

from typing import Any

from ..core.task_tree import NO_PARENT
from .base import ReadyQueue
from .engine import EventDrivenScheduler

__all__ = ["ListScheduler"]


class ListScheduler(EventDrivenScheduler):
    """Priority list scheduling without any memory constraint."""

    name = "ListNoMemory"

    def _setup(self) -> None:
        tree = self.tree
        self._children_not_finished = [tree.num_children(i) for i in range(tree.n)]
        self.ready_queue = ReadyQueue(self.eo.rank, tree.leaves())

    def _activate(self) -> None:
        # Nothing to do: every task is implicitly activated.
        return

    def _on_task_finished(self, node: int) -> None:
        parent = int(self.tree.parent[node])
        if parent != NO_PARENT:
            self._children_not_finished[parent] -= 1
            if self._children_not_finished[parent] == 0:
                self.ready_queue.add(parent)

    def _extra_results(self) -> dict[str, Any]:
        return {"memory_oblivious": True}
