"""Frozen pre-array-engine reference implementations (parity + benchmark pins).

The array-native rewrite of :mod:`repro.schedulers.engine` and of the three
dynamic heuristics promises **bit-identical schedules**: same event order,
same tie-breaking, same deadlock semantics, same floating-point bookkeeping
— only the wall-clock ``scheduling_seconds`` measurements may differ.  That
promise needs something to be identical *to*, so this module preserves the
previous generation verbatim:

* :class:`ReferenceEventDrivenScheduler` — the object-at-a-time engine loop
  (per-hook ``perf_counter`` pairs, ``(finish, node, proc)`` event entries,
  one timed pop per dispatched task);
* :class:`ReferenceActivationScheduler` — Algorithm 1 with per-node Python
  lists and a :class:`~repro.schedulers.memory.MemoryLedger`;
* :class:`ReferenceMemBookingScheduler` — the Appendix B heap/counter
  implementation over NumPy state vectors with per-node scalar indexing;
* :class:`ReferenceMemBookingRedTreeScheduler` — the reduction-tree baseline
  recomputing the transformation on every run.

The parity suite (``tests/test_array_engine_parity.py``) asserts that the
production schedulers reproduce these schedules exactly, and the engine
benchmark (``benchmarks/test_engine_speed.py``) measures the speedup of the
array kernels against these classes on the same machine and inputs.

Do not "improve" this module: its value is that it does not change.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Callable, Mapping

import numpy as np

from ..core.task_tree import NO_PARENT, TaskTree
from ..core.tree_transform import to_reduction_tree
from ..orders import Ordering
from .base import UNSCHEDULED, ReadyQueue, ScheduleResult, Scheduler
from .membooking_redtree import extend_order_to_reduction
from .memory import MemoryLedger
from .validation import memory_profile

__all__ = [
    "ReferenceEventDrivenScheduler",
    "ReferenceActivationScheduler",
    "ReferenceMemBookingScheduler",
    "ReferenceMemBookingRedTreeScheduler",
    "REFERENCE_FACTORIES",
]


class ReferenceEventDrivenScheduler(Scheduler):
    """The pre-rewrite template-method engine, preserved verbatim."""

    ready_queue: ReadyQueue | None = None

    # ------------------------------------------------------------------ #
    # hooks to be provided by subclasses
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _on_task_finished(self, node: int) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _activate(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    def _pop_ready_task(self) -> int | None:
        queue = self.ready_queue
        if queue is None:
            raise NotImplementedError(
                f"{type(self).__name__}._setup() must assign self.ready_queue "
                "or the class must override _pop_ready_task()"
            )
        return queue.pop()

    def _on_task_started(self, node: int) -> None:
        """Optional hook called when a task is placed on a processor."""

    def _extra_results(self) -> dict[str, Any]:
        return {}

    def _invariant_state(self) -> dict[str, Any]:
        return {}

    # ------------------------------------------------------------------ #
    # engine state
    # ------------------------------------------------------------------ #
    tree: TaskTree
    num_processors: int
    memory_limit: float
    ao: Ordering
    eo: Ordering

    def _reset_engine_state(self) -> None:
        self.tree = None  # type: ignore[assignment]
        self.ao = None  # type: ignore[assignment]
        self.eo = None  # type: ignore[assignment]
        self.ready_queue = None

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace=None,
    ) -> ScheduleResult:
        _ = workspace  # the reference engine predates the workspace plane
        try:
            return self._run_simulation(
                tree, num_processors, memory_limit, ao, eo, invariant_hook=invariant_hook
            )
        finally:
            self._reset_engine_state()

    def _run_simulation(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> ScheduleResult:
        self.tree = tree
        self.num_processors = num_processors
        self.memory_limit = memory_limit
        self.ao = ao
        self.eo = eo

        n = tree.n
        start_times = np.full(n, np.nan)
        finish_times = np.full(n, np.nan)
        processor = np.full(n, UNSCHEDULED, dtype=np.int64)

        free_processors = list(range(num_processors - 1, -1, -1))  # pop() gives proc 0 first
        running = 0
        finished_count = 0
        clock = 0.0
        num_events = 0
        decision_seconds = 0.0
        failure: str | None = None

        # Completion events: (finish_time, node, processor)
        event_queue: list[tuple[float, int, int]] = []

        perf_counter = time.perf_counter
        ptime = tree.ptime

        self.ready_queue = None
        tic = perf_counter()
        self._setup()
        decision_seconds += perf_counter() - tic

        def dispatch_ready() -> None:
            nonlocal running, decision_seconds
            ready = self.ready_queue
            while free_processors:
                if ready is not None and not ready:
                    break
                tic = perf_counter()
                node = self._pop_ready_task()
                if node is not None:
                    self._on_task_started(node)
                decision_seconds += perf_counter() - tic
                if node is None:
                    break
                proc = free_processors.pop()
                start_times[node] = clock
                finish = clock + float(ptime[node])
                finish_times[node] = finish
                processor[node] = proc
                running += 1
                heapq.heappush(event_queue, (finish, node, proc))

        # --- t = 0 event ---------------------------------------------------
        tic = perf_counter()
        self._activate()
        decision_seconds += perf_counter() - tic
        num_events += 1
        dispatch_ready()
        if invariant_hook is not None:
            invariant_hook(self._invariant_state())

        if running == 0 and finished_count < n:
            failure = (
                "no task can be started at t=0: the memory bound is too small "
                "for the first activations"
            )

        # --- main loop ------------------------------------------------------
        while failure is None and event_queue:
            clock = event_queue[0][0]
            while event_queue and event_queue[0][0] == clock:
                _, node, proc = heapq.heappop(event_queue)
                running -= 1
                finished_count += 1
                free_processors.append(proc)
                num_events += 1
                tic = perf_counter()
                self._on_task_finished(node)
                decision_seconds += perf_counter() - tic
            tic = perf_counter()
            self._activate()
            decision_seconds += perf_counter() - tic
            dispatch_ready()
            if invariant_hook is not None:
                invariant_hook(self._invariant_state())
            if running == 0 and finished_count < n:
                failure = (
                    f"deadlock at t={clock:.6g}: {n - finished_count} tasks remain but "
                    "none is activated and available under the memory bound"
                )

        completed = finished_count == n
        makespan = clock if completed else math.inf
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=completed,
            makespan=makespan,
            start_times=start_times,
            finish_times=finish_times,
            processor=processor,
            peak_memory=math.nan,
            scheduling_seconds=decision_seconds,
            num_events=num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=failure,
            extras=self._extra_results(),
        )
        result.peak_memory = memory_profile(tree, result).peak
        return result


class ReferenceActivationScheduler(ReferenceEventDrivenScheduler):
    """Algorithm 1 with per-node Python lists (the pre-array implementation)."""

    name = "Activation"

    def _setup(self) -> None:
        tree = self.tree
        n = tree.n
        self._ledger = MemoryLedger(self.memory_limit)
        self._next_activation = 0
        self._activated = [False] * n
        self._children_not_finished = [tree.num_children(i) for i in range(n)]
        self._finished = [False] * n
        self._request = tree.nexec + tree.fout
        self._children_fout = np.zeros(n, dtype=np.float64)
        has_parent = tree.parent != NO_PARENT
        np.add.at(self._children_fout, tree.parent[has_parent], tree.fout[has_parent])
        self.ready_queue = ReadyQueue(self.eo.rank)

    def _activate(self) -> None:
        tree = self.tree
        ao = self.ao.sequence
        ledger = self._ledger
        while self._next_activation < tree.n:
            node = int(ao[self._next_activation])
            request = float(self._request[node])
            if not ledger.fits(request):
                break
            ledger.book(request)
            self._activated[node] = True
            self._next_activation += 1
            if self._children_not_finished[node] == 0:
                self.ready_queue.add(node)

    def _on_task_finished(self, node: int) -> None:
        tree = self.tree
        self._finished[node] = True
        released = float(tree.nexec[node]) + float(self._children_fout[node])
        self._ledger.release(released)

        parent = int(tree.parent[node])
        if parent != NO_PARENT:
            self._children_not_finished[parent] -= 1
            if self._children_not_finished[parent] == 0 and self._activated[parent]:
                self.ready_queue.add(parent)

    def _extra_results(self) -> dict[str, Any]:
        return {
            "peak_booked_memory": self._ledger.peak_booked,
            "activated": self._next_activation,
        }

    def _invariant_state(self) -> dict[str, Any]:
        return {
            "booked": self._ledger.booked,
            "limit": self._ledger.limit,
            "activated_prefix": self._next_activation,
        }


# Node states, duplicated here so the frozen module stands alone.
_UN, _CAND, _ACT, _RUN, _FN = 0, 1, 2, 3, 4
_UNSET = -1.0


class ReferenceMemBookingScheduler(ReferenceEventDrivenScheduler):
    """Appendix B MemBooking over NumPy state vectors with scalar indexing."""

    name = "MemBooking"

    dispatch_to_candidates: bool = True

    def __init__(self, *, dispatch_to_candidates: bool | None = None) -> None:
        if dispatch_to_candidates is not None:
            self.dispatch_to_candidates = bool(dispatch_to_candidates)

    def _setup(self) -> None:
        tree = self.tree
        n = tree.n
        self._ledger = MemoryLedger(self.memory_limit)
        self._mem_needed = tree.mem_needed
        self._booked = np.zeros(n, dtype=np.float64)
        self._bbs = np.full(n, _UNSET, dtype=np.float64)
        self._state = np.full(n, _UN, dtype=np.int8)
        self._ch_not_act = np.asarray([tree.num_children(i) for i in range(n)], dtype=np.int64)
        self._ch_not_fin = self._ch_not_act.copy()
        self._cand = ReadyQueue(self.ao.rank)
        self.ready_queue = ReadyQueue(self.eo.rank)
        for leaf in tree.leaves():
            self._make_candidate(int(leaf))

    def _make_candidate(self, node: int) -> None:
        self._state[node] = _CAND
        self._cand.add(node)

    def _dispatch_memory(self, j: int) -> None:
        tree = self.tree
        booked = self._booked
        bbs = self._bbs
        parent = tree.parent
        fout = tree.fout
        mem_needed = self._mem_needed

        amount = float(booked[j])
        booked[j] = 0.0
        self._ledger.release(amount)
        bbs[j] = 0.0

        i = int(parent[j])
        if i == NO_PARENT:
            return
        fj = float(fout[j])
        booked[i] += fj
        self._ledger.book(fj, enforce=False)
        amount -= fj

        while i != NO_PARENT and amount > 1e-12 and self._dispatch_reaches(i):
            contribution = min(
                amount, max(0.0, float(mem_needed[i]) - (float(bbs[i]) - amount))
            )
            if contribution > 0.0:
                booked[i] += contribution
                self._ledger.book(contribution, enforce=False)
            bbs[i] -= amount - contribution
            amount -= contribution
            i = int(parent[i])

    def _dispatch_reaches(self, node: int) -> bool:
        if self.dispatch_to_candidates:
            return self._bbs[node] != _UNSET
        return self._state[node] in (_ACT, _RUN)

    def _activate(self) -> None:
        tree = self.tree
        booked = self._booked
        bbs = self._bbs
        ledger = self._ledger
        mem_needed = self._mem_needed
        parent = tree.parent

        while True:
            node = self._cand.peek()
            if node is None:
                break
            if self.dispatch_to_candidates:
                if bbs[node] == _UNSET:
                    bbs[node] = booked[node] + sum(float(bbs[c]) for c in tree.children(node))
                subtree_booked = float(bbs[node])
            else:
                subtree_booked = float(booked[node]) + sum(
                    float(bbs[c]) for c in tree.children(node)
                )
            missing = max(0.0, float(mem_needed[node]) - subtree_booked)
            if not ledger.fits(missing):
                break
            ledger.book(missing)
            booked[node] += missing
            bbs[node] = booked[node] + sum(float(bbs[c]) for c in tree.children(node))
            self._cand.remove(node)
            self._state[node] = _ACT
            if self._ch_not_fin[node] == 0:
                self.ready_queue.add(node)
            p = int(parent[node])
            if p != NO_PARENT:
                self._ch_not_act[p] -= 1
                if self._ch_not_act[p] == 0:
                    self._state[p] = _CAND
                    self._make_candidate(p)

    def _on_task_started(self, node: int) -> None:
        self._state[node] = _RUN

    def _on_task_finished(self, node: int) -> None:
        tree = self.tree
        self._state[node] = _FN
        self._dispatch_memory(node)
        p = int(tree.parent[node])
        if p != NO_PARENT:
            self._ch_not_fin[p] -= 1
            if self._ch_not_fin[p] == 0 and self._state[p] == _ACT:
                self.ready_queue.add(p)

    def _extra_results(self) -> dict[str, Any]:
        return {"peak_booked_memory": self._ledger.peak_booked}

    def _invariant_state(self) -> dict[str, Any]:
        return {
            "booked": self._booked.copy(),
            "booked_by_subtree": self._bbs.copy(),
            "state": self._state.copy(),
            "mbooked": self._ledger.booked,
            "limit": self._ledger.limit,
            "mem_needed": self._mem_needed,
            "tree": self.tree,
        }


class ReferenceMemBookingRedTreeScheduler(ReferenceActivationScheduler):
    """Reduction-tree baseline recomputing the transformation per run."""

    name = "MemBookingRedTree"

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace=None,
    ) -> ScheduleResult:
        _ = workspace
        reduction = to_reduction_tree(tree)
        reduced_ao = extend_order_to_reduction(tree, reduction, ao)
        reduced_eo = extend_order_to_reduction(tree, reduction, eo)

        inner = ReferenceEventDrivenScheduler._run(
            self,
            reduction.tree,
            num_processors,
            memory_limit,
            reduced_ao,
            reduced_eo,
            invariant_hook=invariant_hook,
        )

        n = tree.n
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=inner.completed,
            makespan=inner.makespan if inner.completed else math.inf,
            start_times=inner.start_times[:n].copy(),
            finish_times=inner.finish_times[:n].copy(),
            processor=inner.processor[:n].copy(),
            peak_memory=math.nan,
            scheduling_seconds=inner.scheduling_seconds,
            num_events=inner.num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=inner.failure_reason,
            extras={
                **inner.extras,
                "num_fictitious_nodes": reduction.num_fictitious,
                "fictitious_output_volume": reduction.added_output,
                "transformed_tree_size": reduction.tree.n,
            },
        )
        result.peak_memory = memory_profile(tree, result).peak
        return result


#: The frozen heuristics under their production names, for drop-in
#: before/after comparisons (parity tests, engine benchmark).
REFERENCE_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "Activation": ReferenceActivationScheduler,
    "MemBooking": ReferenceMemBookingScheduler,
    "MemBookingRedTree": ReferenceMemBookingRedTreeScheduler,
}
