"""MemBooking: the dynamic memory-booking heuristic of the paper (Section 4).

MemBooking activates tasks following the activation order ``AO`` like the
simple Activation policy, but activating a task ``i`` does **not** book the
full ``n_i + f_i``: it only books what the subtree of ``i`` cannot provide
later by itself (``MissingMem_i``), because the memory used by descendants of
``i`` will be recycled when they complete.  Conversely, when a task ``j``
finishes, the memory it was using is re-dispatched As-Late-As-Possible along
its ancestor chain: an ancestor ``a`` only receives the part of ``j``'s
memory that the rest of ``a``'s subtree will not be able to provide
(``C_{j,a}``), the rest being returned to the global pool.

Two per-node quantities drive the bookkeeping (Section 4):

``Booked[i]``
    memory currently booked *for* node ``i`` (its contribution to ``MBooked``);
``BookedBySubtree[i]``
    memory currently booked by the whole subtree rooted at ``i``; a node is
    effectively activated once ``BookedBySubtree[i] >= MemNeeded_i``.

Theorem 1: if the sequential execution of ``AO`` fits in ``M``, MemBooking
processes the whole tree within ``M``, for any number of processors and any
execution order ``EO``.

Implementation: array-native.  All per-node bookkeeping lives in flat
vectors indexed by node id (``Booked``/``BookedBySubtree`` planes, a state
byte-vector, children counters); subtree sums walk the tree's CSR children
plane and the ancestor dispatch walk reads flat parent/fout planes from the
run's :class:`~repro.schedulers.engine.SimWorkspace`.  The global ``MBooked``
ledger is inlined into local floats with the exact arithmetic (fold order,
tolerance, clamps) of the historical
:class:`~repro.schedulers.memory.MemoryLedger`, so the schedules are
bit-identical to :class:`repro.schedulers.reference.ReferenceMemBookingScheduler`
(asserted by the parity suite).

Two classes are provided:

:class:`MemBookingScheduler`
    the optimised version of Appendix B / Section 5.1 — ``CAND`` is a lazy
    heap over AO ranks (stale entries are recognised by the state vector),
    ``BookedBySubtree`` is initialised lazily, children counters
    (``ChNotAct``, ``ChNotFin``) provide O(1) state transitions — giving the
    ``O(n (H + log n))`` bound of Theorem 2;
:class:`MemBookingReferenceScheduler`
    a direct transcription of Algorithms 2–4 whose ``CAND`` structure is a
    plain set scanned linearly (the ready pool shares the heap-based
    ``ReadyQueue`` of the optimised version).  It performs exactly the same
    bookings and produces exactly the same schedule; the test-suite uses it
    to validate the optimised data structures.

Note on Algorithm 3 vs Algorithm 6 arithmetic: the reference pseudo-code
(Algorithm 3, line 5) adds ``f_j`` to ``BookedBySubtree[parent(j)]`` while
the complete optimised version (Algorithm 6, line 11) does not.  Only the
latter preserves the invariant of Lemma 3(3)
(``BookedBySubtree[i] = Booked[i] + sum of children BookedBySubtree``), so
both classes follow the Algorithm 6 arithmetic; the invariant is asserted in
the property tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Sequence

import numpy as np

from ..analysis.registry import hot_kernel, plane_mutator
from .base import ReadyQueue
from .engine import EventDrivenScheduler

__all__ = [
    "MemBookingScheduler",
    "MemBookingReferenceScheduler",
    "dispatch_memory",
    "run_membooking_activation",
    "UN",
    "CAND",
    "ACT",
    "RUN",
    "FN",
]

# Node states (Section 4): Unprocessed, Candidate, Activated, Running, Finished.
UN, CAND, ACT, RUN, FN = 0, 1, 2, 3, 4

#: BookedBySubtree sentinel for "not yet computed" (lazy initialisation).
_UNSET = -1.0


@hot_kernel(note="DispatchMemory (Alg. 3/6), shared scalar/lane")
def dispatch_memory(
    j: int,
    booked: list[float],
    bbs: list[float],
    state: bytearray,
    parent: Sequence[int],
    fout: Sequence[float],
    mem_needed: Sequence[float],
    mbooked: float,
    tol: float,
    peak: float,
    dispatch_to_candidates: bool,
) -> tuple[float, float]:
    """``DispatchMemory`` (Algorithm 3 / Algorithm 6 lines 4-17) as a pure function.

    Shared by the scalar :class:`_MemBookingCore` and the batched lane kernel
    of :mod:`repro.batch.lanes` so both run the exact same ALAP dispatch
    arithmetic (fold order, tolerance, clamps).  ``booked`` / ``bbs`` /
    ``state`` are mutated in place; the updated global ledger
    ``(mbooked, peak)`` is returned.
    """
    amount = booked[j]
    booked[j] = 0.0
    # MBooked release with the ledger's clamp semantics.
    mbooked = mbooked - amount
    if mbooked < 0.0:
        if mbooked < -tol:
            raise RuntimeError(
                f"released more memory than was booked (booked={mbooked:.6g})"
            )
        mbooked = 0.0
    bbs[j] = 0.0

    i = parent[j]
    if i < 0:
        return mbooked, peak
    fj = fout[j]
    booked[i] += fj
    mbooked += fj  # unenforced book (the freed amount covers it)
    if mbooked > peak:
        peak = mbooked
    amount -= fj

    # Dispatch the remaining freed memory As-Late-As-Possible along the
    # ancestors: an ancestor only keeps what its subtree cannot provide
    # by itself (the contribution C_{j,i}).
    if dispatch_to_candidates:
        while i >= 0 and amount > 1e-12 and bbs[i] != _UNSET:
            contribution = min(amount, max(0.0, mem_needed[i] - (bbs[i] - amount)))
            if contribution > 0.0:
                booked[i] += contribution
                mbooked += contribution
                if mbooked > peak:
                    peak = mbooked
            bbs[i] -= amount - contribution
            amount -= contribution
            i = parent[i]
    else:
        while i >= 0 and amount > 1e-12 and state[i] in (ACT, RUN):
            contribution = min(amount, max(0.0, mem_needed[i] - (bbs[i] - amount)))
            if contribution > 0.0:
                booked[i] += contribution
                mbooked += contribution
                if mbooked > peak:
                    peak = mbooked
            bbs[i] -= amount - contribution
            amount -= contribution
            i = parent[i]
    return mbooked, peak


@hot_kernel(note="UpdateCAND-ACT (Alg. 4/6), shared scalar/lane")
def run_membooking_activation(
    peek_candidate,
    remove_candidate,
    make_candidate,
    mark_available,
    booked: list[float],
    bbs: list[float],
    state: bytearray,
    parent: Sequence[int],
    mem_needed: Sequence[float],
    offsets: Sequence[int],
    child_nodes: Sequence[int],
    ch_not_act: list[int],
    ch_not_fin: list[int],
    mbooked: float,
    threshold: float,
    peak: float,
    dispatch_to_candidates: bool,
) -> tuple[float, float, int, bool]:
    """``UpdateCAND-ACT`` (Algorithm 4 / Algorithm 6 lines 18-30) as a pure function.

    The candidate-structure specifics stay behind the four callables
    (``peek`` / ``remove`` / ``make_candidate`` / ``mark_available``), which
    is how the optimised heap structure, the reference linear scan and the
    batched lane kernel all drive one transition definition.  Returns the
    updated ``(mbooked, peak, activations, blocked_need)``:
    ``activations`` counts the nodes moved into ACT by this call and
    ``blocked_need`` is ``0.0`` when every candidate fit, else the ledger
    level (``MBooked`` plus the missing booking) the blocking candidate
    would have required — truthy exactly when the loop stopped on the
    budget.  The lane engine uses the pair to detect fully-activated and
    never-memory-bound lanes and to certify blocked-replay clones.
    """
    activations = 0
    blocked_need = 0.0
    while True:
        node = peek_candidate()
        if node is None:
            break
        if dispatch_to_candidates:
            # Lazy initialisation (Section 5.1): compute BookedBySubtree
            # once; it is then kept up to date by the dispatch walks.
            if bbs[node] == _UNSET:
                total = 0.0
                for c in child_nodes[offsets[node] : offsets[node + 1]]:
                    total += bbs[c]
                bbs[node] = booked[node] + total
            subtree_booked = bbs[node]
        else:
            # Literal Algorithm 4: recompute the subtree booking at every
            # attempt (the dispatch walks do not maintain it for
            # candidates in this variant).
            total = 0.0
            for c in child_nodes[offsets[node] : offsets[node + 1]]:
                total += bbs[c]
            subtree_booked = booked[node] + total
        missing = max(0.0, mem_needed[node] - subtree_booked)
        if mbooked + missing > threshold:
            blocked_need = mbooked + missing
            break  # wait for more memory; activation keeps following AO
        mbooked += missing
        if mbooked > peak:
            peak = mbooked
        booked[node] += missing
        total = 0.0
        for c in child_nodes[offsets[node] : offsets[node + 1]]:
            total += bbs[c]
        bbs[node] = booked[node] + total
        remove_candidate(node)
        state[node] = ACT
        activations += 1
        if ch_not_fin[node] == 0:
            mark_available(node)
        p = parent[node]
        if p >= 0:
            ch_not_act[p] -= 1
            if ch_not_act[p] == 0:
                state[p] = CAND
                make_candidate(p)
    return mbooked, peak, activations, blocked_need


class _MemBookingCore(EventDrivenScheduler):
    """Bookkeeping shared by the optimised and reference implementations."""

    name = "MemBooking"

    #: When True, extend the dispatch walk to candidate ancestors whose
    #: ``BookedBySubtree`` has already been computed (the Section 5.1
    #: optimisation); both implementations enable it so they stay identical.
    #: Setting it to False reverts to the literal Algorithm 3 condition
    #: (ancestors in ACT/RUN only) — exposed for the ablation benchmarks.
    dispatch_to_candidates: bool = True

    def __init__(self, *, dispatch_to_candidates: bool | None = None) -> None:
        if dispatch_to_candidates is not None:
            self.dispatch_to_candidates = bool(dispatch_to_candidates)

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        ws = self.workspace
        assert ws is not None  # the engine installs it before _setup
        n = ws.n
        limit = self.memory_limit
        # Inlined MemoryLedger (MBooked): identical bound, tolerance, peak
        # tracking and clamp-at-zero semantics, in local floats.
        self._limit = limit
        self._tol = 1e-9 * max(1.0, limit)
        self._threshold = limit + self._tol
        self._mbooked = 0.0
        self._peak_booked = 0.0
        # Flat per-node state planes.
        self._booked: list[float] = [0.0] * n
        self._bbs: list[float] = [_UNSET] * n
        self._state = bytearray(n)  # UN everywhere
        self._ch_not_act = ws.num_children_list.copy()
        self._ch_not_fin = ws.num_children_list.copy()
        # Static planes of the workspace (read-only).
        self._parent_list = ws.parent_list
        self._fout_list = ws.fout_list
        self._mem_needed_list = ws.mem_needed_list
        self._child_offsets = ws.child_offsets
        self._child_nodes = ws.child_nodes
        self._ao_rank_list = ws.ao_rank_list
        self._setup_structures()
        for leaf in ws.leaves_list:
            self._make_candidate(leaf)

    # Structure-specific hooks -------------------------------------------------
    def _setup_structures(self) -> None:
        raise NotImplementedError

    def _make_candidate(self, node: int) -> None:
        """Move ``node`` (currently UN or a fresh leaf) into CAND."""
        raise NotImplementedError

    def _peek_candidate(self) -> int | None:
        """Node of CAND with the highest AO priority (smallest rank), or None."""
        raise NotImplementedError

    def _remove_candidate(self, node: int) -> None:
        raise NotImplementedError

    def _mark_available(self, node: int) -> None:
        """Record that ``node`` is activated and all its children are finished."""
        self.ready_queue.add(node)

    # ------------------------------------------------------------------ #
    # DispatchMemory (Algorithm 3 / Algorithm 6 lines 4-17)
    # ------------------------------------------------------------------ #
    @hot_kernel
    def _dispatch_memory(self, j: int) -> None:
        self._mbooked, self._peak_booked = dispatch_memory(
            j,
            self._booked,
            self._bbs,
            self._state,
            self._parent_list,
            self._fout_list,
            self._mem_needed_list,
            self._mbooked,
            self._tol,
            self._peak_booked,
            self.dispatch_to_candidates,
        )

    # ------------------------------------------------------------------ #
    # UpdateCAND-ACT (Algorithm 4 / Algorithm 6 lines 18-30)
    # ------------------------------------------------------------------ #
    @hot_kernel
    def _activate(self) -> None:
        self._mbooked, self._peak_booked, _, _ = run_membooking_activation(
            self._peek_candidate,
            self._remove_candidate,
            self._make_candidate,
            self._mark_available,
            self._booked,
            self._bbs,
            self._state,
            self._parent_list,
            self._mem_needed_list,
            self._child_offsets,
            self._child_nodes,
            self._ch_not_act,
            self._ch_not_fin,
            self._mbooked,
            self._threshold,
            self._peak_booked,
            self.dispatch_to_candidates,
        )

    # ------------------------------------------------------------------ #
    # engine events
    # ------------------------------------------------------------------ #
    @hot_kernel
    def _on_task_started(self, node: int) -> None:
        self._state[node] = RUN

    @hot_kernel
    def _on_tasks_finished(self, nodes: Sequence[int]) -> None:
        state = self._state
        parent = self._parent_list
        ch_not_fin = self._ch_not_fin
        dispatch = self._dispatch_memory
        mark_available = self._mark_available
        for node in nodes:
            state[node] = FN
            dispatch(node)
            p = parent[node]
            if p >= 0:
                ch_not_fin[p] -= 1
                if ch_not_fin[p] == 0 and state[p] == ACT:
                    mark_available(p)

    def _on_task_finished(self, node: int) -> None:
        self._on_tasks_finished((node,))

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def _extra_results(self) -> dict[str, Any]:
        return {"peak_booked_memory": self._peak_booked}

    def _invariant_state(self) -> dict[str, Any]:
        return {
            "booked": np.asarray(self._booked, dtype=np.float64),
            "booked_by_subtree": np.asarray(self._bbs, dtype=np.float64),
            "state": np.frombuffer(bytes(self._state), dtype=np.int8),
            "mbooked": self._mbooked,
            "limit": self._limit,
            "mem_needed": self.tree.mem_needed,
            "tree": self.tree,
        }


class MemBookingScheduler(_MemBookingCore):
    """Optimised MemBooking (Appendix B): heap-based CAND / ACTf structures.

    Scheduling cost is ``O(n (H + log n))`` in total (Theorem 2): every node
    is pushed/popped at most once on each heap, dispatch walks are bounded by
    the node depth, and all state transitions use O(1) counters.  ``CAND``
    is a plain AO-rank heap with lazy deletion: an entry whose node is no
    longer in state CAND is stale and skipped when it surfaces (a node
    enters CAND at most once, so stale entries can never shadow live ones).
    """

    name = "MemBooking"
    #: Compiled twin (repro.native): the full event loop with the lazy-heap
    #: CAND structure, booking walks and ALAP dispatch.  The reference
    #: implementation below stays pure Python on purpose — it is the oracle.
    native_kernel = "membooking"

    def _setup_structures(self) -> None:
        self._cand_heap: list[tuple[int, int]] = []
        self._eo_rank_list = self.workspace.eo_rank_list
        # ACTf: a plain (EO rank, node) heap the engine pops directly.
        self.ready_heap = []

    @hot_kernel
    def _mark_available(self, node: int) -> None:
        heapq.heappush(self.ready_heap, (self._eo_rank_list[node], node))

    @hot_kernel
    def _make_candidate(self, node: int) -> None:
        self._state[node] = CAND
        heapq.heappush(self._cand_heap, (self._ao_rank_list[node], node))

    @hot_kernel
    def _peek_candidate(self) -> int | None:
        heap = self._cand_heap
        state = self._state
        while heap:
            node = heap[0][1]
            if state[node] == CAND:
                return node
            heapq.heappop(heap)  # stale entry of an already-activated node
        return None

    def _remove_candidate(self, node: int) -> None:
        # Lazy: the caller flips the node's state out of CAND right after,
        # which is exactly what invalidates the heap entry.
        pass


class MemBookingReferenceScheduler(_MemBookingCore):
    """Reference MemBooking (Algorithms 2–4) with a naive ``CAND`` structure.

    ``CAND`` is a plain Python set scanned linearly at every activation
    attempt, as in the literal pseudo-code.  The pool of available activated
    tasks used to be a plain set as well, with an O(n) ``min`` scan per
    started task; that scan dominated the decision path on large sweeps, so
    it now shares the heap-based :class:`~repro.schedulers.base.ReadyQueue`
    with the optimised implementation (EO ranks are permutations, so the
    extracted task — the unique rank minimiser — is unchanged).  The bookings
    are identical to :class:`MemBookingScheduler` — only the asymptotic cost
    of the candidate scan differs — so both classes must produce exactly the
    same schedule; the test-suite checks this on every random instance it
    draws.
    """

    name = "MemBookingReference"

    def _setup_structures(self) -> None:
        self._cand_set: set[int] = set()
        self.ready_queue = ReadyQueue(self.workspace.eo_rank_list)

    @plane_mutator(note="naive reference CAND structure (set-based)")
    def _make_candidate(self, node: int) -> None:
        self._state[node] = CAND
        self._cand_set.add(node)

    def _peek_candidate(self) -> int | None:
        if not self._cand_set:
            return None
        return min(self._cand_set, key=self._ao_rank_list.__getitem__)

    def _remove_candidate(self, node: int) -> None:
        self._cand_set.discard(node)
