"""MemBooking: the dynamic memory-booking heuristic of the paper (Section 4).

MemBooking activates tasks following the activation order ``AO`` like the
simple Activation policy, but activating a task ``i`` does **not** book the
full ``n_i + f_i``: it only books what the subtree of ``i`` cannot provide
later by itself (``MissingMem_i``), because the memory used by descendants of
``i`` will be recycled when they complete.  Conversely, when a task ``j``
finishes, the memory it was using is re-dispatched As-Late-As-Possible along
its ancestor chain: an ancestor ``a`` only receives the part of ``j``'s
memory that the rest of ``a``'s subtree will not be able to provide
(``C_{j,a}``), the rest being returned to the global pool.

Two per-node quantities drive the bookkeeping (Section 4):

``Booked[i]``
    memory currently booked *for* node ``i`` (its contribution to ``MBooked``);
``BookedBySubtree[i]``
    memory currently booked by the whole subtree rooted at ``i``; a node is
    effectively activated once ``BookedBySubtree[i] >= MemNeeded_i``.

Theorem 1: if the sequential execution of ``AO`` fits in ``M``, MemBooking
processes the whole tree within ``M``, for any number of processors and any
execution order ``EO``.

Two implementations are provided:

:class:`MemBookingScheduler`
    the optimised version of Appendix B / Section 5.1 — ``CAND`` and
    ``ACTf`` are heaps, ``BookedBySubtree`` is initialised lazily, children
    counters (``ChNotAct``, ``ChNotFin``) provide O(1) state transitions —
    giving the ``O(n (H + log n))`` bound of Theorem 2;
:class:`MemBookingReferenceScheduler`
    a direct transcription of Algorithms 2–4 whose ``CAND`` structure is a
    plain set scanned linearly (the ready pool shares the heap-based
    ``ReadyQueue`` of the optimised version).  It performs exactly the same
    bookings and produces exactly the same schedule; the test-suite uses it
    to validate the optimised data structures.

Note on Algorithm 3 vs Algorithm 6 arithmetic: the reference pseudo-code
(Algorithm 3, line 5) adds ``f_j`` to ``BookedBySubtree[parent(j)]`` while
the complete optimised version (Algorithm 6, line 11) does not.  Only the
latter preserves the invariant of Lemma 3(3)
(``BookedBySubtree[i] = Booked[i] + sum of children BookedBySubtree``), so
both classes follow the Algorithm 6 arithmetic; the invariant is asserted in
the property tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.task_tree import NO_PARENT
from .base import ReadyQueue
from .engine import EventDrivenScheduler
from .memory import MemoryLedger

__all__ = [
    "MemBookingScheduler",
    "MemBookingReferenceScheduler",
    "UN",
    "CAND",
    "ACT",
    "RUN",
    "FN",
]

# Node states (Section 4): Unprocessed, Candidate, Activated, Running, Finished.
UN, CAND, ACT, RUN, FN = 0, 1, 2, 3, 4

#: BookedBySubtree sentinel for "not yet computed" (lazy initialisation).
_UNSET = -1.0


class _MemBookingCore(EventDrivenScheduler):
    """Bookkeeping shared by the optimised and reference implementations."""

    name = "MemBooking"

    #: When True, extend the dispatch walk to candidate ancestors whose
    #: ``BookedBySubtree`` has already been computed (the Section 5.1
    #: optimisation); both implementations enable it so they stay identical.
    #: Setting it to False reverts to the literal Algorithm 3 condition
    #: (ancestors in ACT/RUN only) — exposed for the ablation benchmarks.
    dispatch_to_candidates: bool = True

    def __init__(self, *, dispatch_to_candidates: bool | None = None) -> None:
        if dispatch_to_candidates is not None:
            self.dispatch_to_candidates = bool(dispatch_to_candidates)

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        tree = self.tree
        n = tree.n
        self._ledger = MemoryLedger(self.memory_limit)
        self._mem_needed = tree.mem_needed
        self._booked = np.zeros(n, dtype=np.float64)
        self._bbs = np.full(n, _UNSET, dtype=np.float64)
        self._state = np.full(n, UN, dtype=np.int8)
        self._ch_not_act = np.asarray([tree.num_children(i) for i in range(n)], dtype=np.int64)
        self._ch_not_fin = self._ch_not_act.copy()
        self._setup_structures()
        for leaf in tree.leaves():
            self._make_candidate(int(leaf))

    # Structure-specific hooks -------------------------------------------------
    def _setup_structures(self) -> None:
        raise NotImplementedError

    def _make_candidate(self, node: int) -> None:
        """Move ``node`` (currently UN or a fresh leaf) into CAND."""
        raise NotImplementedError

    def _peek_candidate(self) -> int | None:
        """Node of CAND with the highest AO priority (smallest rank), or None."""
        raise NotImplementedError

    def _remove_candidate(self, node: int) -> None:
        raise NotImplementedError

    def _mark_available(self, node: int) -> None:
        """Record that ``node`` is activated and all its children are finished."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # DispatchMemory (Algorithm 3 / Algorithm 6 lines 4-17)
    # ------------------------------------------------------------------ #
    def _dispatch_memory(self, j: int) -> None:
        tree = self.tree
        booked = self._booked
        bbs = self._bbs
        parent = tree.parent
        fout = tree.fout
        mem_needed = self._mem_needed

        amount = float(booked[j])
        booked[j] = 0.0
        self._ledger.release(amount)
        bbs[j] = 0.0

        i = int(parent[j])
        if i == NO_PARENT:
            return
        fj = float(fout[j])
        booked[i] += fj
        self._ledger.book(fj, enforce=False)
        amount -= fj

        # Dispatch the remaining freed memory As-Late-As-Possible along the
        # ancestors: an ancestor only keeps what its subtree cannot provide
        # by itself (the contribution C_{j,i}).
        while i != NO_PARENT and amount > 1e-12 and self._dispatch_reaches(i):
            contribution = min(
                amount, max(0.0, float(mem_needed[i]) - (float(bbs[i]) - amount))
            )
            if contribution > 0.0:
                booked[i] += contribution
                self._ledger.book(contribution, enforce=False)
            bbs[i] -= amount - contribution
            amount -= contribution
            i = int(parent[i])

    def _dispatch_reaches(self, node: int) -> bool:
        """Loop condition of the dispatch walk for ancestor ``node``."""
        if self.dispatch_to_candidates:
            return self._bbs[node] != _UNSET
        return self._state[node] in (ACT, RUN)

    # ------------------------------------------------------------------ #
    # UpdateCAND-ACT (Algorithm 4 / Algorithm 6 lines 18-30)
    # ------------------------------------------------------------------ #
    def _activate(self) -> None:
        tree = self.tree
        booked = self._booked
        bbs = self._bbs
        ledger = self._ledger
        mem_needed = self._mem_needed
        parent = tree.parent

        while True:
            node = self._peek_candidate()
            if node is None:
                break
            if self.dispatch_to_candidates:
                # Lazy initialisation (Section 5.1): compute BookedBySubtree
                # once; it is then kept up to date by the dispatch walks.
                if bbs[node] == _UNSET:
                    bbs[node] = booked[node] + sum(float(bbs[c]) for c in tree.children(node))
                subtree_booked = float(bbs[node])
            else:
                # Literal Algorithm 4: recompute the subtree booking at every
                # attempt (the dispatch walks do not maintain it for
                # candidates in this variant).
                subtree_booked = float(booked[node]) + sum(
                    float(bbs[c]) for c in tree.children(node)
                )
            missing = max(0.0, float(mem_needed[node]) - subtree_booked)
            if not ledger.fits(missing):
                break  # wait for more memory; activation keeps following AO
            ledger.book(missing)
            booked[node] += missing
            bbs[node] = booked[node] + sum(float(bbs[c]) for c in tree.children(node))
            self._remove_candidate(node)
            self._state[node] = ACT
            if self._ch_not_fin[node] == 0:
                self._mark_available(node)
            p = int(parent[node])
            if p != NO_PARENT:
                self._ch_not_act[p] -= 1
                if self._ch_not_act[p] == 0:
                    self._state[p] = CAND
                    self._make_candidate(p)

    # ------------------------------------------------------------------ #
    # engine events
    # ------------------------------------------------------------------ #
    def _on_task_started(self, node: int) -> None:
        self._state[node] = RUN

    def _on_task_finished(self, node: int) -> None:
        tree = self.tree
        self._state[node] = FN
        self._dispatch_memory(node)
        p = int(tree.parent[node])
        if p != NO_PARENT:
            self._ch_not_fin[p] -= 1
            if self._ch_not_fin[p] == 0 and self._state[p] == ACT:
                self._mark_available(p)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def _extra_results(self) -> dict[str, Any]:
        return {"peak_booked_memory": self._ledger.peak_booked}

    def _invariant_state(self) -> dict[str, Any]:
        return {
            "booked": self._booked.copy(),
            "booked_by_subtree": self._bbs.copy(),
            "state": self._state.copy(),
            "mbooked": self._ledger.booked,
            "limit": self._ledger.limit,
            "mem_needed": self._mem_needed,
            "tree": self.tree,
        }


class MemBookingScheduler(_MemBookingCore):
    """Optimised MemBooking (Appendix B): heap-based CAND / ACTf structures.

    Scheduling cost is ``O(n (H + log n))`` in total (Theorem 2): every node
    is pushed/popped at most once on each heap, dispatch walks are bounded by
    the node depth, and all state transitions use O(1) counters.
    """

    name = "MemBooking"

    def _setup_structures(self) -> None:
        self._cand = ReadyQueue(self.ao.rank)
        # ACTf: the engine pops ready tasks straight from this queue.
        self.ready_queue = ReadyQueue(self.eo.rank)

    def _make_candidate(self, node: int) -> None:
        self._state[node] = CAND
        self._cand.add(node)

    def _peek_candidate(self) -> int | None:
        return self._cand.peek()

    def _remove_candidate(self, node: int) -> None:
        self._cand.remove(node)

    def _mark_available(self, node: int) -> None:
        self.ready_queue.add(node)


class MemBookingReferenceScheduler(_MemBookingCore):
    """Reference MemBooking (Algorithms 2–4) with a naive ``CAND`` structure.

    ``CAND`` is a plain Python set scanned linearly at every activation
    attempt, as in the literal pseudo-code.  The pool of available activated
    tasks used to be a plain set as well, with an O(n) ``min`` scan per
    started task; that scan dominated the decision path on large sweeps, so
    it now shares the heap-based :class:`~repro.schedulers.base.ReadyQueue`
    with the optimised implementation (EO ranks are permutations, so the
    extracted task — the unique rank minimiser — is unchanged).  The bookings
    are identical to :class:`MemBookingScheduler` — only the asymptotic cost
    of the candidate scan differs — so both classes must produce exactly the
    same schedule; the test-suite checks this on every random instance it
    draws.
    """

    name = "MemBookingReference"

    def _setup_structures(self) -> None:
        self._cand_set: set[int] = set()
        self.ready_queue = ReadyQueue(self.eo.rank)

    def _make_candidate(self, node: int) -> None:
        self._state[node] = CAND
        self._cand_set.add(node)

    def _peek_candidate(self) -> int | None:
        if not self._cand_set:
            return None
        rank = self.ao.rank
        return min(self._cand_set, key=lambda i: rank[i])

    def _remove_candidate(self, node: int) -> None:
        self._cand_set.discard(node)

    def _mark_available(self, node: int) -> None:
        self.ready_queue.add(node)
