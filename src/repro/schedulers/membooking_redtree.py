"""MemBookingRedTree: the reduction-tree booking baseline (Section 3.2).

The strategy of Eyraud-Dubois et al. [reference 7 of the paper] only applies
to *reduction trees* (no execution data, outputs no larger than inputs); its
key idea is that once memory has been booked for all the leaves of a subtree,
the whole subtree can be processed within that booking, so bookings can be
expressed entirely through (possibly fictitious) leaf descendants.

A general tree is first transformed into a reduction tree by adding
fictitious zero-duration leaves carrying the missing input volume
(:func:`repro.core.tree_transform.to_reduction_tree`); the booking policy is
then applied to the transformed tree.  As the paper points out, on general
trees the transformation inflates the memory footprint so much that the
refined booking loses its advantage: the strategy behaves essentially like
the plain Activation policy applied to the transformed tree — which is
exactly how this baseline is implemented — and under tight memory bounds it
frequently cannot schedule the tree at all (Section 7.4 reports failures on
one third of the synthetic trees below 1.4x the minimum memory).  Both
behaviours are reproduced by this implementation and asserted in the
benchmark suite.

The activation and execution orders supplied for the original tree are
extended to the transformed tree by inserting every fictitious leaf
immediately before the node it feeds, which preserves topological validity
and the relative order of the real tasks.

The transformation, the extended orders and the reduced tree's
:class:`~repro.schedulers.engine.SimWorkspace` are pure functions of
(tree, AO, EO), so they are **memoised per tree**: a sweep that simulates
the same tree under many (processors, memory factor) combinations pays for
the reduction once instead of once per run.  Entries hold strong references
to their orders (so an ``id``-based key can never alias a collected object)
and die with the tree.
"""

from __future__ import annotations

import math
import weakref
from typing import Any, Callable, Mapping

import numpy as np

from ..core.task_tree import TaskTree
from ..core.tree_transform import ReductionTreeResult, to_reduction_tree
from ..orders import Ordering
from .activation import ActivationScheduler
from .base import ScheduleResult
from .engine import EventDrivenScheduler, SimWorkspace
from .validation import memory_profile

__all__ = ["MemBookingRedTreeScheduler", "extend_order_to_reduction"]


def extend_order_to_reduction(
    tree: TaskTree, reduction: ReductionTreeResult, order: Ordering
) -> Ordering:
    """Extend an ordering of the original tree to the reduction tree.

    Every fictitious leaf is placed immediately before its (real) parent, so
    the sequence stays a topological order of the transformed tree whenever
    the input is a topological order of the original tree, and real tasks
    keep their relative priorities.
    """
    fictitious_of: dict[int, list[int]] = {}
    for offset, parent in enumerate(reduction.fictitious_parent):
        fictitious_of.setdefault(parent, []).append(reduction.original_n + offset)
    sequence: list[int] = []
    for node in order.sequence:
        node = int(node)
        sequence.extend(fictitious_of.get(node, ()))
        sequence.append(node)
    return Ordering(np.asarray(sequence, dtype=np.int64), name=order.name + "+red")


#: Per-tree memo of reduction contexts, keyed by tree identity (evicted by a
#: ``weakref.finalize`` when the tree is collected, before its id can be
#: reused).  The inner mapping is keyed by the identity of the (AO, EO) pair
#: and holds strong references to both orders, so an entry can never outlive
#: — and therefore never alias — the orders it was built from.  Bounded so a
#: long-lived tree scheduled under many ad-hoc order pairs cannot grow it
#: without limit.
_REDUCTION_MEMO: dict[int, dict[tuple[int, int], tuple]] = {}
_REDUCTION_MEMO_PER_TREE = 4


def _reduction_context(
    tree: TaskTree, ao: Ordering, eo: Ordering
) -> tuple[ReductionTreeResult, Ordering, Ordering, SimWorkspace]:
    per_tree = _REDUCTION_MEMO.get(id(tree))
    if per_tree is None:
        per_tree = _REDUCTION_MEMO[id(tree)] = {}
        weakref.finalize(tree, _REDUCTION_MEMO.pop, id(tree), None)
    key = (id(ao), id(eo))
    entry = per_tree.get(key)
    if entry is None:
        reduction = to_reduction_tree(tree)
        reduced_ao = extend_order_to_reduction(tree, reduction, ao)
        reduced_eo = (
            reduced_ao if eo is ao else extend_order_to_reduction(tree, reduction, eo)
        )
        workspace = SimWorkspace(reduction.tree, reduced_ao, reduced_eo)
        if len(per_tree) >= _REDUCTION_MEMO_PER_TREE:
            per_tree.pop(next(iter(per_tree)))
        # ao/eo are stored to pin their ids for the lifetime of the entry.
        entry = per_tree[key] = (ao, eo, reduction, reduced_ao, reduced_eo, workspace)
    return entry[2], entry[3], entry[4], entry[5]


class MemBookingRedTreeScheduler(ActivationScheduler):
    """Reduction-tree booking baseline (``MemBookingRedTree`` in the figures)."""

    name = "MemBookingRedTree"

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
        workspace: SimWorkspace | None = None,
    ) -> ScheduleResult:
        _ = workspace  # the inner run uses the memoised *reduced* workspace
        reduction, reduced_ao, reduced_eo, reduced_workspace = _reduction_context(
            tree, ao, eo
        )

        inner = EventDrivenScheduler._run(
            self,
            reduction.tree,
            num_processors,
            memory_limit,
            reduced_ao,
            reduced_eo,
            invariant_hook=invariant_hook,
            workspace=reduced_workspace,
        )

        # Translate the schedule back to the original node indices (fictitious
        # leaves are dropped; they have zero duration and no real work).
        n = tree.n
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=inner.completed,
            makespan=inner.makespan if inner.completed else math.inf,
            start_times=inner.start_times[:n].copy(),
            finish_times=inner.finish_times[:n].copy(),
            processor=inner.processor[:n].copy(),
            peak_memory=math.nan,
            scheduling_seconds=inner.scheduling_seconds,
            num_events=inner.num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=inner.failure_reason,
            extras={
                **inner.extras,
                "num_fictitious_nodes": reduction.num_fictitious,
                "fictitious_output_volume": reduction.added_output,
                "transformed_tree_size": reduction.tree.n,
            },
        )
        # Peak memory is reported for the *real* data only, which is what a
        # runtime would observe; the booked overhead of the fictitious inputs
        # shows up as a lower fraction of memory actually used (Figure 4).
        result.peak_memory = memory_profile(tree, result).peak
        return result
