"""MemBookingRedTree: the reduction-tree booking baseline (Section 3.2).

The strategy of Eyraud-Dubois et al. [reference 7 of the paper] only applies
to *reduction trees* (no execution data, outputs no larger than inputs); its
key idea is that once memory has been booked for all the leaves of a subtree,
the whole subtree can be processed within that booking, so bookings can be
expressed entirely through (possibly fictitious) leaf descendants.

A general tree is first transformed into a reduction tree by adding
fictitious zero-duration leaves carrying the missing input volume
(:func:`repro.core.tree_transform.to_reduction_tree`); the booking policy is
then applied to the transformed tree.  As the paper points out, on general
trees the transformation inflates the memory footprint so much that the
refined booking loses its advantage: the strategy behaves essentially like
the plain Activation policy applied to the transformed tree — which is
exactly how this baseline is implemented — and under tight memory bounds it
frequently cannot schedule the tree at all (Section 7.4 reports failures on
one third of the synthetic trees below 1.4x the minimum memory).  Both
behaviours are reproduced by this implementation and asserted in the
benchmark suite.

The activation and execution orders supplied for the original tree are
extended to the transformed tree by inserting every fictitious leaf
immediately before the node it feeds, which preserves topological validity
and the relative order of the real tasks.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from ..core.task_tree import TaskTree
from ..core.tree_transform import ReductionTreeResult, to_reduction_tree
from ..orders import Ordering
from .activation import ActivationScheduler
from .base import ScheduleResult
from .engine import EventDrivenScheduler
from .validation import memory_profile

__all__ = ["MemBookingRedTreeScheduler", "extend_order_to_reduction"]


def extend_order_to_reduction(
    tree: TaskTree, reduction: ReductionTreeResult, order: Ordering
) -> Ordering:
    """Extend an ordering of the original tree to the reduction tree.

    Every fictitious leaf is placed immediately before its (real) parent, so
    the sequence stays a topological order of the transformed tree whenever
    the input is a topological order of the original tree, and real tasks
    keep their relative priorities.
    """
    fictitious_of: dict[int, list[int]] = {}
    for offset, parent in enumerate(reduction.fictitious_parent):
        fictitious_of.setdefault(parent, []).append(reduction.original_n + offset)
    sequence: list[int] = []
    for node in order.sequence:
        node = int(node)
        sequence.extend(fictitious_of.get(node, ()))
        sequence.append(node)
    return Ordering(np.asarray(sequence, dtype=np.int64), name=order.name + "+red")


class MemBookingRedTreeScheduler(ActivationScheduler):
    """Reduction-tree booking baseline (``MemBookingRedTree`` in the figures)."""

    name = "MemBookingRedTree"

    def _run(
        self,
        tree: TaskTree,
        num_processors: int,
        memory_limit: float,
        ao: Ordering,
        eo: Ordering,
        *,
        invariant_hook: Callable[[Mapping[str, Any]], None] | None = None,
    ) -> ScheduleResult:
        reduction = to_reduction_tree(tree)
        reduced_ao = extend_order_to_reduction(tree, reduction, ao)
        reduced_eo = extend_order_to_reduction(tree, reduction, eo)

        inner = EventDrivenScheduler._run(
            self,
            reduction.tree,
            num_processors,
            memory_limit,
            reduced_ao,
            reduced_eo,
            invariant_hook=invariant_hook,
        )

        # Translate the schedule back to the original node indices (fictitious
        # leaves are dropped; they have zero duration and no real work).
        n = tree.n
        result = ScheduleResult(
            scheduler=self.name,
            tree_size=n,
            num_processors=num_processors,
            memory_limit=memory_limit,
            completed=inner.completed,
            makespan=inner.makespan if inner.completed else math.inf,
            start_times=inner.start_times[:n].copy(),
            finish_times=inner.finish_times[:n].copy(),
            processor=inner.processor[:n].copy(),
            peak_memory=math.nan,
            scheduling_seconds=inner.scheduling_seconds,
            num_events=inner.num_events,
            activation_order=ao.name,
            execution_order=eo.name,
            failure_reason=inner.failure_reason,
            extras={
                **inner.extras,
                "num_fictitious_nodes": reduction.num_fictitious,
                "fictitious_output_volume": reduction.added_output,
                "transformed_tree_size": reduction.tree.n,
            },
        )
        # Peak memory is reported for the *real* data only, which is what a
        # runtime would observe; the booked overhead of the fictitious inputs
        # shows up as a lower fraction of memory actually used (Figure 4).
        result.peak_memory = memory_profile(tree, result).peak
        return result
