"""Scheduling heuristics: the paper's three strategies plus reference points."""

from .activation import ActivationScheduler
from .base import UNSCHEDULED, ReadyQueue, ScheduleResult, Scheduler, SchedulingError
from .engine import EventDrivenScheduler, SimWorkspace
from .list_scheduler import ListScheduler
from .membooking import MemBookingReferenceScheduler, MemBookingScheduler
from .membooking_redtree import MemBookingRedTreeScheduler, extend_order_to_reduction
from .memory import MemoryLedger
from .sequential import SequentialScheduler
from .trace import (
    UtilisationReport,
    processor_utilisation,
    render_gantt,
    schedule_events,
    schedule_to_records,
)
from .validation import MemoryProfile, ValidationReport, memory_profile, validate_schedule

__all__ = [
    "ActivationScheduler",
    "ReadyQueue",
    "UNSCHEDULED",
    "ScheduleResult",
    "Scheduler",
    "SchedulingError",
    "EventDrivenScheduler",
    "SimWorkspace",
    "ListScheduler",
    "MemBookingReferenceScheduler",
    "MemBookingScheduler",
    "MemBookingRedTreeScheduler",
    "extend_order_to_reduction",
    "MemoryLedger",
    "SequentialScheduler",
    "UtilisationReport",
    "processor_utilisation",
    "render_gantt",
    "schedule_events",
    "schedule_to_records",
    "MemoryProfile",
    "ValidationReport",
    "memory_profile",
    "validate_schedule",
    "SCHEDULER_FACTORIES",
    "make_scheduler",
]


#: Registry used by the experiment harness and the CLI.
SCHEDULER_FACTORIES = {
    "Activation": ActivationScheduler,
    "MemBooking": MemBookingScheduler,
    "MemBookingReference": MemBookingReferenceScheduler,
    "MemBookingRedTree": MemBookingRedTreeScheduler,
    "ListNoMemory": ListScheduler,
    "Sequential": SequentialScheduler,
}


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by name (``"Activation"``, ``"MemBooking"``, ...)."""
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULER_FACTORIES)}"
        ) from None
    return factory()
