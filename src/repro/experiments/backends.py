"""Pluggable execution backends for the sweep engine.

:func:`repro.experiments.runner.run_sweep` delegates the *execution* of a
sweep — which process simulates which (tree, processors, memory factor,
heuristic) instance — to an :class:`ExecutionBackend`.  Backends live in a
:func:`register_backend` registry (so new strategies plug in without
touching the resolver); four are built in — the three below plus
:class:`repro.batch.BatchedBackend` (``"batched"``), which batches all the
instances of one tree into a lock-step lane engine in-process:

:class:`SerialBackend` (``"serial"``)
    Everything in-process, one instance after the other.  The canonical
    record order of the library; every other backend must reproduce it.
:class:`ProcessPoolBackend` (``"process"``)
    The PR-1 strategy: one :mod:`multiprocessing` task per tree, the whole
    tree pickled to the worker, every instance of that tree simulated there.
    Scales while there are more trees than workers, but ships the full node
    arrays of each tree through the pipe and cannot split one tree's
    instances across workers.
:class:`SharedMemoryBackend` (``"shared-memory"``)
    Packs the dataset into a :class:`~repro.core.tree_store.TreeStore`
    arena, publishes it once through :mod:`multiprocessing.shared_memory`,
    and dispatches at **instance** granularity: each work item is a
    ``(global index, tree index, scheduler, processors, factor)`` tuple of a
    few dozen bytes, and workers materialise zero-copy tree views from the
    arena.  A dataset of a few huge trees therefore saturates every worker,
    and per-task transfer cost is independent of tree size.

Since the plan layer (:mod:`repro.experiments.plan`), the unit a backend
executes is a :class:`~repro.experiments.plan.SweepPlan` — the instance
grid as columnar data.  :meth:`ExecutionBackend.run_plan` is the one
abstract method; the historical :meth:`ExecutionBackend.run` is a concrete
wrapper that materialises the full plan of a config first.  A *subset*
plan (the cache misses of a figure, see
:func:`~repro.experiments.plan.execute_plan_cached`) flows through exactly
the same code paths as a full sweep.

All backends funnel their results through the same deterministic
**instance-keyed merge**: every instance has a fixed row in the canonical
enumeration (:func:`~repro.experiments.plan.iter_instances` — trees outer,
then processors, memory factors, schedulers; re-exported here), and records
are placed by that row into a columnar
:class:`~repro.experiments.records.RecordTable` (:func:`merge_records` for
backends that ship dicts; the shared-memory backend's workers write their
rows straight into a preallocated shared-memory result table and ship back
only the row index).  Record *values* are pure functions of (tree, config)
— only the wall-clock ``scheduling_seconds`` measurements differ between
runs — so the merged output is identical whichever backend produced it.

Fault tolerance (:mod:`repro.resilience`)
-----------------------------------------
Both pool backends dispatch through the watchdog-timed recovery drain
(:func:`~repro.resilience.recovery.drain_pool`): a crashed worker's lost
task or a hung instance shows up as a watchdog window with no progress,
the round's pool is terminated and everything still pending is
re-dispatched in a fresh pool under a bounded retry budget — instances
that never complete are quarantined into the record failure plane rather
than failing the sweep.  Because record values are pure functions of
(tree, config), recovery reproduces exactly the bytes the lost attempt
would have produced, so the instance-keyed merge stays byte-identical to
a fault-free run whenever every instance eventually completes.  A broken
transport (dead initializer, vanished arena) degrades down the backend
ladder instead: shared-memory -> process -> serial.  Deterministic fault
*injection* (the seeded :class:`~repro.resilience.faults.FaultPlan`,
armed via ``REPRO_FAULTS`` / ``SweepConfig.fault_plan``) rides the same
hook points, so the recovery machinery is exercised by reproducible
faults rather than monkeypatching.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..core.task_tree import TaskTree
from ..core.tree_store import TreeStore
from ..resilience.faults import QUARANTINE_PREFIX, instance_fault_key, resolve_fault_plan
from ..resilience.health import current_health
from ..resilience.recovery import RetrySettings, TransportFailure, drain_pool
from .config import SweepConfig
from .plan import SweepPlan, iter_instances, runs_per_tree
from .records import RecordTable

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SharedMemoryBackend",
    "BACKEND_NAMES",
    "register_backend",
    "resolve_backend",
    "iter_instances",
    "runs_per_tree",
    "merge_records",
    "dispatch_payload_stats",
    "result_payload_stats",
]

#: Registered backend factories: ``name -> factory(jobs, config)``.  Filled
#: by :func:`register_backend`; the built-ins register at the bottom of this
#: module, so importing it always yields the full set.
_BACKEND_FACTORIES: dict[str, Any] = {}

#: Backend names accepted by ``SweepConfig.backend`` and the ``--backend``
#: CLI flags; ``"auto"`` resolves to serial or process depending on ``jobs``.
#: Rebuilt by :func:`register_backend` — read it late (or via this module)
#: rather than caching a from-import at startup.
BACKEND_NAMES: tuple[str, ...] = ("auto",)


def register_backend(
    name: str, factory: "Callable[[int, SweepConfig], ExecutionBackend]"
) -> None:
    """Register an execution backend under ``name``.

    ``factory(jobs, config)`` must return an :class:`ExecutionBackend`;
    ``jobs`` is the resolved worker-count request (which jobs-less backends
    simply ignore, like :class:`SerialBackend` always has) and ``config``
    the :class:`~repro.experiments.config.SweepConfig` being executed, so a
    backend can pick up its own knobs (the batched backend reads
    ``config.batch_size``).  Registration makes the name valid everywhere a
    backend is spelled: ``SweepConfig.backend``, ``run_sweep(backend=...)``
    and the ``--backend`` CLI flags.  ``"auto"`` is reserved (it is a
    resolution rule, not a backend) and duplicate names are rejected so two
    plugins cannot silently shadow each other.
    """
    global BACKEND_NAMES
    if name == "auto":
        raise ValueError('"auto" is a resolution rule, not a registrable backend')
    if name in _BACKEND_FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKEND_FACTORIES[name] = factory
    BACKEND_NAMES = ("auto", *sorted(_BACKEND_FACTORIES))


# --------------------------------------------------------------------------- #
# the instance-keyed merge
# --------------------------------------------------------------------------- #
# The canonical enumeration itself (``iter_instances`` / ``runs_per_tree``)
# lives in :mod:`repro.experiments.plan` — the plan layer owns the grid;
# both names stay importable from here for compatibility.


def _claim_index(seen: np.ndarray, index: int, total: int) -> None:
    """Mark instance ``index`` as produced; out-of-range/duplicates are errors."""
    if not 0 <= index < total:
        raise ValueError(f"record index {index} outside sweep of {total} instances")
    if seen[index]:
        raise ValueError(f"duplicate record for instance {index}")
    seen[index] = True


def _check_coverage(total: int, seen: np.ndarray) -> None:
    """Common duplicate/gap accounting of the instance-keyed merges."""
    missing = total - int(np.count_nonzero(seen))
    if missing:
        raise ValueError(f"sweep incomplete: {missing} of {total} instances missing")


def merge_records(
    total: int, keyed: Iterable[tuple[int, dict[str, Any]]]
) -> RecordTable:
    """Place ``(global index, record)`` pairs into a canonical-order table.

    This is the merge used by every backend that ships record dicts through
    the pipe: each record is written straight into its row of a columnar
    :class:`~repro.experiments.records.RecordTable` (O(1) per row, no
    intermediate list-of-dicts), so record order cannot depend on worker
    scheduling; duplicates and gaps are hard errors rather than silent
    corruption.
    """
    table = RecordTable.empty(total)
    seen = np.zeros(total, dtype=bool)
    for index, record in keyed:
        _claim_index(seen, index, total)
        table.set_row(index, record)
    _check_coverage(total, seen)
    return table


def _worker_count(jobs: int, cap: int) -> int:
    """Resolve a ``jobs`` setting (0 = one per CPU) against a unit cap.

    The single jobs-resolution policy of the sweep engine:
    :func:`repro.experiments.runner._resolve_jobs` delegates here too, so
    ``"auto"`` resolution and the explicit backends cannot drift apart.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
    effective = jobs if jobs else (os.cpu_count() or 1)
    return max(1, min(effective, cap))


# --------------------------------------------------------------------------- #
# the backend interface
# --------------------------------------------------------------------------- #
class ExecutionBackend(ABC):
    """Strategy for executing every instance of a sweep plan."""

    #: Registry name (also shown in CLI help and reports).
    name: str = "backend"

    def run(
        self, trees: Sequence[TaskTree], config: SweepConfig
    ) -> RecordTable:
        """Simulate every instance of ``config`` over ``trees``.

        Materialises the full :class:`~repro.experiments.plan.SweepPlan` of
        the config and defers to :meth:`run_plan` — the historical entry
        point, kept so ``run_sweep`` and pre-plan call sites are unchanged.
        """
        tree_list = list(trees)
        return self.run_plan(tree_list, SweepPlan.from_config(config, len(tree_list)))

    @abstractmethod
    def run_plan(
        self, trees: Sequence[TaskTree], plan: SweepPlan
    ) -> RecordTable:
        """Simulate every row of ``plan`` (``trees`` is the full dataset).

        Must return a :class:`~repro.experiments.records.RecordTable` with
        one row per plan row, in plan order, equal (timing fields aside) to
        :class:`SerialBackend`'s output on the same plan.
        """

    def dispatch_payloads(
        self, trees: Sequence[TaskTree], config: SweepConfig
    ) -> list[Any]:
        """The per-task objects this backend ships to workers.

        Used by :func:`dispatch_payload_stats` (and the transfer-cost
        benchmark) so the measured payloads are exactly the objects a
        full-plan ``run`` hands to the pool.  In-process backends ship
        nothing.
        """
        return []


class SerialBackend(ExecutionBackend):
    """Run every instance in-process (the canonical reference order)."""

    name = "serial"

    def run_plan(self, trees: Sequence[TaskTree], plan: SweepPlan) -> RecordTable:
        from .runner import prepare_instance, resilient_run_single

        config = plan.config
        faults = resolve_fault_plan(config.fault_plan)
        table = RecordTable.empty(len(plan))
        for tree_index, rows in plan.tree_groups():
            context = prepare_instance(trees[tree_index], tree_index, config)
            for row in rows:
                scheduler, num_processors, memory_factor = plan.combo(int(row))
                table.set_row(
                    int(row),
                    resilient_run_single(
                        context, scheduler, num_processors, memory_factor, config, faults
                    ),
                )
        return table


class ProcessPoolBackend(ExecutionBackend):
    """Per-tree chunking over a process pool (the PR-1 strategy).

    Each worker task pickles a whole tree plus the config; the tree's
    :class:`~repro.experiments.runner.InstanceContext` is built once in the
    worker and reused by all its instances.
    """

    name = "process"

    def __init__(self, jobs: int = 0) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
        self.jobs = int(jobs)

    def dispatch_payloads(
        self, trees: Sequence[TaskTree], config: SweepConfig
    ) -> "list[tuple[int, TaskTree, SweepConfig, None]]":
        # ``None`` in the combos slot = the full canonical per-tree set
        # (what a full-plan run dispatches; subset plans ship explicit
        # combo lists instead).
        return [(index, tree, config, None) for index, tree in enumerate(trees)]

    def run_plan(self, trees: Sequence[TaskTree], plan: SweepPlan) -> RecordTable:
        groups = plan.tree_groups()
        jobs = _worker_count(self.jobs, len(groups))
        if jobs <= 1 or len(groups) <= 1:
            return SerialBackend().run_plan(trees, plan)
        try:
            return self._run_pool(trees, plan, groups, jobs)
        except (TransportFailure, OSError):
            # The pool transport itself is broken (cannot fork, no results
            # ever arrived); the instances are untouched, so take the next
            # ladder rung and recompute everything in-process.
            current_health().record_degradation("process->serial")
            return SerialBackend().run_plan(trees, plan)

    def _run_pool(
        self,
        trees: Sequence[TaskTree],
        plan: SweepPlan,
        groups: "list[tuple[int, Any]]",
        jobs: int,
    ) -> RecordTable:
        from .runner import _run_tree_task, canonical_combos, prepare_instance, quarantine_record

        config = plan.config
        faults = resolve_fault_plan(config.fault_plan)
        settings = RetrySettings.from_plan(faults)
        full = plan.is_full
        rows_of = dict(groups)
        combos_of: dict[int, Any] = {
            tree_index: None if full else [plan.combo(int(row)) for row in rows]
            for tree_index, rows in groups
        }
        chunks: dict[int, list[dict[str, Any]]] = {}
        health = current_health()

        def payload_for(tree_index: int, attempt: int) -> tuple[Any, ...]:
            if faults is not None:
                faults.preview(("worker-crash", "hang"), f"tree:{tree_index}", attempt)
            return (tree_index, trees[tree_index], config, combos_of[tree_index], attempt)

        def handle(outcome: tuple[int, list[dict[str, Any]]]) -> int:
            tree_index, records = outcome
            if faults is not None:
                # Worker-side quarantines (transient budget exhausted) are
                # invisible on the worker's own ledger; count them here.
                for record in records:
                    reason = record.get("failure_reason")
                    if reason is not None and reason.startswith(QUARANTINE_PREFIX):
                        health.quarantined_instances += 1
            chunks[tree_index] = records
            return tree_index

        def make_pool() -> Any:
            # chunksize=1 (in the drain) keeps the scheduling granularity
            # at one tree so a few large trees cannot serialise behind each
            # other within one worker.
            return multiprocessing.get_context().Pool(processes=jobs)

        leftover = drain_pool(
            make_pool,
            _run_tree_task,
            payload_for,
            [tree_index for tree_index, _ in groups],
            settings,
            handle,
        )
        for tree_index in leftover:
            # Poison tree group: every dispatch attempt was lost.  Build its
            # records parent-side, quarantined into the failure plane.
            context = prepare_instance(trees[tree_index], tree_index, config)
            combos = combos_of[tree_index]
            if combos is None:
                combos = canonical_combos(config)
            reason = (
                f"{QUARANTINE_PREFIX}: dispatch lost after "
                f"{settings.max_attempts} attempts"
            )
            chunks[tree_index] = [
                quarantine_record(
                    context, scheduler, num_processors, memory_factor, config, reason
                )
                for scheduler, num_processors, memory_factor in combos
            ]
            health.quarantined_instances += len(chunks[tree_index])
        keyed = (
            (int(rows_of[tree_index][position]), record)
            for tree_index, _ in groups
            for position, record in enumerate(chunks[tree_index])
        )
        return merge_records(len(plan), keyed)


# --------------------------------------------------------------------------- #
# shared-memory backend
# --------------------------------------------------------------------------- #
#: Worker-process state installed by the pool initializer: the attached
#: tree arena, the attached shared-memory result table (workers write their
#: rows in place), the sweep config (shipped once, not per task) and a
#: per-worker cache of InstanceContexts so repeated instances of one tree
#: share the order/minimum-memory pre-computation exactly like the per-tree
#: chunking.
_SHM_WORKER: dict[str, Any] = {}

#: Per-worker LRU bound on cached InstanceContexts.  Instances are
#: dispatched in canonical (tree-major) order, so a worker touches one or
#: two trees at a time and a small cache almost never misses; the bound
#: keeps N workers from each accumulating the derived data (orders,
#: minimum-memory memo) of the *entire* dataset over a long sweep — the
#: per-worker duplication the zero-copy arena exists to avoid.
_SHM_CONTEXT_CACHE_SIZE = 8


def _shm_worker_init(arena_name: str, results_name: str, config: SweepConfig) -> None:
    _SHM_WORKER["store"] = TreeStore.attach(arena_name)
    _SHM_WORKER["results"] = RecordTable.attach(results_name)
    _SHM_WORKER["config"] = config
    _SHM_WORKER["faults"] = resolve_fault_plan(config.fault_plan)
    _SHM_WORKER["contexts"] = OrderedDict()


def _shm_run_instance(
    payload: "tuple[int, int, str, int, float] | tuple[int, int, str, int, float, int]",
) -> "int | tuple[int, str]":
    """Simulate one instance, write its row in shared memory, return its index.

    The record itself never crosses the pool pipe: the worker places it into
    row ``global_index`` of the shared result table (rows are disjoint, so no
    locking is needed) and the parent only receives the pickled ``int`` —
    the ``result_payload_stats`` benchmark quantifies the drop versus
    pickled dicts.  The one exception is the dictionary-encoded
    ``failure_reason`` column: workers cannot coordinate a shared growing
    codes table, so a *failed* instance returns ``(index, reason)`` and the
    parent assigns the canonical code (failures are the rare case, so the
    typical payload stays a lone integer).
    """
    from .runner import prepare_instance, resilient_run_single

    # The historical 5-tuple (the documented wire shape, measured by the
    # payload-size benchmark) is still accepted: it is attempt 0.
    global_index, tree_index, scheduler, num_processors, memory_factor = payload[:5]
    attempt = payload[5] if len(payload) > 5 else 0
    faults = _SHM_WORKER["faults"]
    if faults is not None:
        faults.worker_entry(
            instance_fault_key(tree_index, scheduler, num_processors, memory_factor),
            attempt,
        )
    contexts: OrderedDict[int, Any] = _SHM_WORKER["contexts"]
    context = contexts.get(tree_index)
    if context is None:
        config = _SHM_WORKER["config"]
        store = _SHM_WORKER["store"]
        tree = store.tree(tree_index)
        # Arenas published with the full workspace plane-column set hand the
        # worker its static planes (orders, children CSR, request/release
        # blocks, tree-pure scalars) zero-copy instead of recomputing them
        # here; arenas with other/partial plane sets fall back to deriving.
        planes = None
        if store.plane_names:
            from ..batch.planes import context_planes_present

            candidate = store.planes_for(tree_index)
            if context_planes_present(candidate):
                planes = candidate
        context = contexts[tree_index] = prepare_instance(
            tree, tree_index, config, planes
        )
        if len(contexts) > _SHM_CONTEXT_CACHE_SIZE:
            contexts.popitem(last=False)
    else:
        contexts.move_to_end(tree_index)
    record = resilient_run_single(
        context, scheduler, num_processors, memory_factor, _SHM_WORKER["config"], faults
    )
    _SHM_WORKER["results"].set_row(global_index, record)
    reason = record["failure_reason"]
    if reason is not None:
        return global_index, reason
    return global_index


class SharedMemoryBackend(ExecutionBackend):
    """Zero-copy arena transfer plus instance-granularity scheduling.

    The dataset crosses the process boundary exactly once, as a named
    shared-memory arena; each dispatched task is a tuple of indices and
    scalars.  Because the unit of work is a single (tree, processors,
    factor, heuristic) instance, a dataset with fewer trees than workers
    still spreads across the whole pool — the regime where per-tree
    chunking degenerates to serial execution.
    """

    name = "shared-memory"

    def __init__(self, jobs: int = 0, *, share_planes: bool = True) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
        self.jobs = int(jobs)
        #: When set (the default), the published arena carries the workspace
        #: plane columns of every tree
        #: (:func:`repro.batch.planes.workspace_planes`): workers adopt
        #: orders/workspaces/scalars zero-copy instead of recomputing them
        #: per process.  The parent pays at most one derivation pass up
        #: front — and none at all when the workload cache already seeded
        #: the per-tree plane memos — so N workers never re-derive the same
        #: static planes N times.  ``share_planes=False`` restores the
        #: plane-less version-1 arena transfer.
        self.share_planes = bool(share_planes)

    def dispatch_payloads(
        self, trees: Sequence[TaskTree], config: SweepConfig
    ) -> "list[tuple[int, int, str, int, float]]":
        return [
            (global_index, tree_index, scheduler, num_processors, memory_factor)
            for global_index, (tree_index, scheduler, num_processors, memory_factor) in enumerate(
                iter_instances(config, len(trees))
            )
        ]

    def run_plan(self, trees: Sequence[TaskTree], plan: SweepPlan) -> RecordTable:
        trees = list(trees)
        total = len(plan)
        if not trees or not total:
            return RecordTable.empty(total)
        jobs = _worker_count(self.jobs, total)
        if jobs <= 1:
            return SerialBackend().run_plan(trees, plan)
        try:
            return self._run_pool(trees, plan, jobs)
        except (TransportFailure, OSError):
            # The shared-memory transport is broken (lost segment, failed
            # attach, a pool that never produced a result); fall one rung
            # down the ladder — the per-tree pickling pool needs no arena.
            current_health().record_degradation("shared-memory->process")
            return ProcessPoolBackend(self.jobs).run_plan(trees, plan)

    def _run_pool(
        self, trees: Sequence[TaskTree], plan: SweepPlan, jobs: int
    ) -> RecordTable:
        from .runner import prepare_instance, quarantine_record

        config = plan.config
        total = len(plan)
        faults = resolve_fault_plan(config.fault_plan)
        settings = RetrySettings.from_plan(faults)
        health = current_health()
        # One instance per plan row: the row position doubles as the worker's
        # write index into the shared result table (for a full plan these
        # are exactly ``dispatch_payloads``'s tuples, plus the attempt slot).
        instances = list(plan.instances())

        def payload_for(row: int, attempt: int) -> tuple[Any, ...]:
            tree_index, scheduler, num_processors, memory_factor = instances[row]
            if faults is not None:
                faults.preview(
                    ("worker-crash", "hang"),
                    instance_fault_key(tree_index, scheduler, num_processors, memory_factor),
                    attempt,
                )
            return (row, tree_index, scheduler, num_processors, memory_factor, attempt)

        planes = None
        if self.share_planes:
            from ..batch.planes import workspace_planes

            planes = workspace_planes(trees, config)
        # Serialise straight into the segment: no intermediate arena copy.
        shm = TreeStore.pack_to_shared_memory(trees, planes=planes)
        result_shm = result_table = None
        try:
            if faults is not None:
                # A lost segment surfaces as an OSError on first attach; the
                # injection point models it before any worker spawns.
                faults.maybe_raise("shm-lost", "arena")
            # The result plane mirrors the input arena: one preallocated
            # shared-memory table, workers write disjoint rows in place and
            # ship back only the row index.
            result_shm, result_table = RecordTable.create_shared(total)
            seen = np.zeros(total, dtype=bool)
            failures: list[tuple[int, str]] = []

            def handle(outcome: "int | tuple[int, str]") -> int:
                if isinstance(outcome, tuple):
                    index, reason = outcome
                    failures.append((index, reason))
                    if faults is not None and reason.startswith(QUARANTINE_PREFIX):
                        # Worker-side quarantine: its own ledger is invisible
                        # to the parent, so account for it here.
                        health.quarantined_instances += 1
                else:
                    index = outcome
                _claim_index(seen, index, total)
                return index

            def make_pool() -> Any:
                # Unordered completion maximises load balance; rows land at
                # their canonical index regardless, so no reorder is needed.
                return multiprocessing.get_context().Pool(
                    processes=jobs,
                    initializer=_shm_worker_init,
                    initargs=(shm.name, result_shm.name, config),
                )

            leftover = drain_pool(
                make_pool,
                _shm_run_instance,
                payload_for,
                list(range(total)),
                settings,
                handle,
            )
            for row in leftover:
                # Poison instance: every dispatch attempt was lost.  Build
                # its record parent-side, quarantined into the failure plane.
                tree_index, scheduler, num_processors, memory_factor = instances[row]
                context = prepare_instance(trees[tree_index], tree_index, config)
                reason = (
                    f"{QUARANTINE_PREFIX}: dispatch lost after "
                    f"{settings.max_attempts} attempts"
                )
                record = quarantine_record(
                    context, scheduler, num_processors, memory_factor, config, reason
                )
                record["failure_reason"] = None
                result_table.set_row(row, record)
                failures.append((row, reason))
                _claim_index(seen, row, total)
                health.quarantined_instances += 1
            _check_coverage(total, seen)
            # Workers wrote provisional (worker-local) failure codes; assign
            # the canonical ones in row order so the merged table is
            # byte-identical to the serial backend's.
            for index, reason in sorted(failures):
                result_table.set_value(index, "failure_reason", reason)
            # One arena copy detaches the records from the segment lifetime.
            merged = result_table.copy()
        finally:
            if result_table is not None:
                result_table.close()
            if result_shm is not None:
                result_shm.close()
                result_shm.unlink()
            shm.close()
            shm.unlink()
        return merged


# --------------------------------------------------------------------------- #
# resolution and accounting
# --------------------------------------------------------------------------- #
def resolve_backend(
    spec: "str | ExecutionBackend | None",
    config: SweepConfig,
    num_trees: int,
    jobs: int | None = None,
) -> ExecutionBackend:
    """Turn a backend spec (name, instance or None) into a backend object.

    ``None`` defers to ``config.backend``; ``"auto"`` preserves the
    historical behaviour of ``run_sweep``: serial for an effective worker
    count of one, otherwise the per-tree process pool.  An explicit ``jobs``
    (the ``run_sweep`` keyword) wins over ``config.jobs`` — including over
    the worker count a pre-built backend *instance* was configured with, in
    which case a shallow copy of the instance carries the override.  A
    backend instance *without* a ``jobs`` attribute (e.g.
    :class:`SerialBackend`) cannot carry a multi-worker override: passing
    ``jobs > 1`` alongside such an instance raises a :class:`RuntimeWarning`
    instead of silently dropping the request (``jobs=1`` is accepted — a
    single worker is exactly what a jobs-less backend runs).  An invalid
    ``jobs`` is rejected on every path, serial included, exactly as the
    pre-backend ``run_sweep`` did.
    """
    if jobs is not None and int(jobs) < 0:
        raise ValueError("jobs must be >= 0 (0 means one worker per CPU)")
    if isinstance(spec, ExecutionBackend):
        if jobs is not None and not hasattr(spec, "jobs"):
            if int(jobs) != 1:
                warnings.warn(
                    f"explicit jobs={int(jobs)} override ignored: backend "
                    f"{spec.name!r} ({type(spec).__name__}) has no 'jobs' "
                    "setting and always runs a single worker",
                    RuntimeWarning,
                    stacklevel=3,
                )
        elif jobs is not None and spec.jobs != int(jobs):
            import copy

            override = copy.copy(spec)
            override.jobs = int(jobs)
            return override
        return spec
    name = spec if spec is not None else config.backend
    effective_jobs = config.jobs if jobs is None else int(jobs)
    if name == "auto":
        from .runner import _resolve_jobs

        resolved = _resolve_jobs(jobs, config, num_trees)
        return SerialBackend() if resolved <= 1 else ProcessPoolBackend(resolved)
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown backend {name!r}; available: {sorted(BACKEND_NAMES)}")
    return factory(effective_jobs, config)


def dispatch_payload_stats(
    backend: ExecutionBackend,
    trees: Sequence[TaskTree],
    config: SweepConfig,
) -> dict[str, float]:
    """Pickled sizes of the exact payloads ``backend`` would ship to workers.

    Returns ``num_payloads``, ``total_bytes``, ``mean_bytes`` and
    ``max_bytes``.  This is what the transfer-cost benchmark records: for the
    per-tree pool every payload embeds full node arrays, while the
    shared-memory backend ships index tuples (the arena crosses once,
    out of band).
    """
    payloads = backend.dispatch_payloads(trees, config)
    return _payload_sizes(payloads)


def result_payload_stats(records: "RecordTable | Sequence[dict[str, Any]]") -> dict[str, dict[str, float]]:
    """Per-result pipe payload sizes: pickled dicts versus row indices.

    For each produced record, the pre-RecordTable pipeline shipped the whole
    pickled dict back through the pool pipe; the shared-memory result plane
    ships only the pickled row index — or ``(index, failure_reason)`` for
    the rare failed instance, whose message the merge side must
    dictionary-encode (the record bytes live in the shared table, out of
    band).  Returns ``{"dict_records": stats, "row_indices": stats}`` with
    the same keys as :func:`dispatch_payload_stats` — what the result-plane
    benchmark asserts the >= 10x drop on.
    """
    dicts = list(records)
    outcomes = [
        (index, record["failure_reason"])
        if record.get("failure_reason") is not None
        else index
        for index, record in enumerate(dicts)
    ]
    return {
        "dict_records": _payload_sizes(dicts),
        "row_indices": _payload_sizes(outcomes),
    }


def _payload_sizes(payloads: Sequence[Any]) -> dict[str, float]:
    sizes = [len(pickle.dumps(p, protocol=pickle.HIGHEST_PROTOCOL)) for p in payloads]
    total = float(sum(sizes))
    return {
        "num_payloads": float(len(sizes)),
        "total_bytes": total,
        "mean_bytes": total / len(sizes) if sizes else 0.0,
        "max_bytes": float(max(sizes, default=0)),
    }


# --------------------------------------------------------------------------- #
# built-in backend registrations
# --------------------------------------------------------------------------- #
def _batched_factory(jobs: int, config: SweepConfig) -> ExecutionBackend:
    # Imported lazily: the batch subsystem sits above this module and pulls
    # in the scheduler kernels, which cold CLI paths should not pay for.
    from ..batch import BatchedBackend

    _ = jobs  # in-process, like SerialBackend
    return BatchedBackend(batch_size=getattr(config, "batch_size", 0))


register_backend("serial", lambda jobs, config: SerialBackend())
register_backend("process", lambda jobs, config: ProcessPoolBackend(jobs))
register_backend("shared-memory", lambda jobs, config: SharedMemoryBackend(jobs))
register_backend("batched", _batched_factory)
