"""Sweep plans: the instance grid as first-class columnar data.

Every experiment of the paper is the same shape — a cartesian
(tree, processors, memory factor, heuristic) grid simulated instance by
instance — yet until this module the grid only ever existed *implicitly*,
re-derived inside each execution backend from a
:class:`~repro.experiments.config.SweepConfig`.  A :class:`SweepPlan` makes
the enumeration explicit: one row per instance, stored as typed NumPy
columns (tree index, scheduler code, AO/EO codes, processor count, memory
factor), in the exact canonical order of :func:`iter_instances` — the row
position *is* the global merge index of the instance.

Having the grid as data buys three things:

* **backends consume plans** — every
  :class:`~repro.experiments.backends.ExecutionBackend` implements
  ``run_plan(trees, plan)``; the historical ``run(trees, config)`` is now a
  thin wrapper that builds the full plan first.  A *subset* plan (cache
  misses only, see below) runs through the identical machinery, so partial
  execution cannot drift from full execution;
* **plan transforms replace ad-hoc grouping** — the batched backend's lane
  grouping (:meth:`SweepPlan.lane_groups`) and the per-tree chunking of the
  process backends (:meth:`SweepPlan.tree_groups`) are methods on the data,
  not re-implementations of the enumeration order inside each backend;
* **instances get stable identities** — :meth:`SweepPlan.instance_keys`
  derives a content key per row from the tree's own bytes (structure,
  weights, durations) plus the value-relevant config fields, which is what
  the instance-level :class:`~repro.experiments.records.ResultCache` rows
  are keyed by.  Two figures sweeping overlapping grids over the same trees
  therefore share cached rows even when their dataset descriptors differ.

Record values are pure functions of (tree bytes, tree index, scheduler,
AO, EO, p, factor) — the wall-clock timing fields aside — so a content key
over exactly those inputs is sound: a cached row served for a key is
bit-identical to what a fresh simulation would produce.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..core.task_tree import TaskTree
from .config import SweepConfig
from .records import CACHE_SCHEMA_VERSION, RecordTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .records import RowCache

__all__ = [
    "SweepPlan",
    "iter_instances",
    "runs_per_tree",
    "tree_content_sha",
    "execute_plan",
    "execute_plan_cached",
]


# --------------------------------------------------------------------------- #
# canonical enumeration (the single owner of the instance order)
# --------------------------------------------------------------------------- #
def runs_per_tree(config: SweepConfig) -> int:
    """Number of simulation instances each tree contributes to a sweep."""
    return len(config.processors) * len(config.memory_factors) * len(config.schedulers)


def iter_instances(
    config: SweepConfig, num_trees: int
) -> Iterator[tuple[int, str, int, float]]:
    """Yield ``(tree_index, scheduler, processors, factor)`` in canonical order.

    The enumeration order *is* the record order of the serial sweep; the
    position of an instance in this iteration is its global merge index.
    :meth:`SweepPlan.from_config` materialises exactly this enumeration.
    """
    for tree_index in range(num_trees):
        for num_processors in config.processors:
            for memory_factor in config.memory_factors:
                for scheduler in config.schedulers:
                    yield tree_index, scheduler, num_processors, memory_factor


# --------------------------------------------------------------------------- #
# tree content identity
# --------------------------------------------------------------------------- #
#: Process-local memo of per-tree content digests keyed by object identity
#: (same id-keyed + ``weakref.finalize`` scheme as the runner's tree memo:
#: ``TaskTree.__hash__`` walks every node array, so a WeakKeyDictionary
#: would make each lookup O(n)).
_TREE_SHA_MEMO: dict[int, str] = {}


def tree_content_sha(tree: TaskTree) -> str:
    """Digest of the value-relevant bytes of a tree (structure + weights).

    Two trees with equal ``parent``/``fout``/``nexec``/``ptime`` arrays get
    equal digests whatever objects carry them — regenerating a dataset from
    the same seed yields the same digests, which is what lets cached
    instance rows survive across processes and sessions.
    """
    key = id(tree)
    sha = _TREE_SHA_MEMO.get(key)
    if sha is None:
        digest = hashlib.sha256()
        digest.update(np.int64(tree.n).tobytes())
        digest.update(np.ascontiguousarray(tree.parent).tobytes())
        digest.update(np.ascontiguousarray(tree.fout).tobytes())
        digest.update(np.ascontiguousarray(tree.nexec).tobytes())
        digest.update(np.ascontiguousarray(tree.ptime).tobytes())
        sha = _TREE_SHA_MEMO[key] = digest.hexdigest()
        weakref.finalize(tree, _TREE_SHA_MEMO.pop, key, None)
    return sha


# --------------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------------- #
class SweepPlan:
    """A fully-enumerated instance grid as columnar planes.

    One row per (tree, scheduler, processors, memory factor) instance, in
    canonical order.  ``global_index`` maps each row back to its position in
    the *full* enumeration of ``config`` — for a full plan it is simply
    ``0..n-1``; for a subset plan (:meth:`subset`) it records where each
    surviving row belongs.

    Construct with :meth:`from_config`; build subsets with :meth:`subset`.
    """

    __slots__ = (
        "config",
        "num_trees",
        "schedulers",
        "tree_index",
        "scheduler_code",
        "ao_code",
        "eo_code",
        "processors",
        "memory_factor",
        "global_index",
        "order_names",
    )

    def __init__(
        self,
        config: SweepConfig,
        num_trees: int,
        *,
        tree_index: np.ndarray,
        scheduler_code: np.ndarray,
        ao_code: np.ndarray,
        eo_code: np.ndarray,
        processors: np.ndarray,
        memory_factor: np.ndarray,
        global_index: np.ndarray,
    ) -> None:
        #: The sweep configuration the plan enumerates (value-relevant fields
        #: plus the execution knobs backends read: jobs/backend/batch_size/
        #: native travel with the plan unchanged).
        self.config = config
        self.num_trees = int(num_trees)
        #: Code table for ``scheduler_code`` (codes index this tuple).
        self.schedulers: tuple[str, ...] = tuple(config.schedulers)
        #: Code table for ``ao_code`` / ``eo_code``.
        self.order_names: tuple[str, ...] = tuple(
            dict.fromkeys((config.activation_order, config.execution_order))
        )
        self.tree_index = tree_index
        self.scheduler_code = scheduler_code
        self.ao_code = ao_code
        self.eo_code = eo_code
        self.processors = processors
        self.memory_factor = memory_factor
        self.global_index = global_index
        for column in (
            tree_index, scheduler_code, ao_code, eo_code,
            processors, memory_factor, global_index,
        ):
            column.flags.writeable = False

    @classmethod
    def from_config(cls, config: SweepConfig, num_trees: int) -> "SweepPlan":
        """Materialise the full canonical grid of ``config`` over ``num_trees``."""
        per_tree = runs_per_tree(config)
        total = num_trees * per_tree
        sched_code = {name: code for code, name in enumerate(config.schedulers)}
        combo_rows = [
            (sched_code[scheduler], num_processors, factor)
            for num_processors in config.processors
            for factor in config.memory_factors
            for scheduler in config.schedulers
        ]
        combo_sched = np.asarray([row[0] for row in combo_rows], dtype=np.int64)
        combo_procs = np.asarray([row[1] for row in combo_rows], dtype=np.int64)
        combo_factor = np.asarray([row[2] for row in combo_rows], dtype=np.float64)
        order_names = tuple(dict.fromkeys((config.activation_order, config.execution_order)))
        tree_index = np.repeat(np.arange(num_trees, dtype=np.int64), per_tree)
        scheduler_code = np.tile(combo_sched, num_trees)
        processors = np.tile(combo_procs, num_trees)
        memory_factor = np.tile(combo_factor, num_trees)
        ao_code = np.zeros(total, dtype=np.int64)
        eo_code = np.full(
            total, order_names.index(config.execution_order), dtype=np.int64
        )
        global_index = np.arange(total, dtype=np.int64)
        return cls(
            config,
            num_trees,
            tree_index=tree_index,
            scheduler_code=scheduler_code,
            ao_code=ao_code,
            eo_code=eo_code,
            processors=processors,
            memory_factor=memory_factor,
            global_index=global_index,
        )

    # ------------------------------------------------------------------ #
    # row access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.tree_index.shape[0])

    @property
    def is_full(self) -> bool:
        """True when the plan covers the whole grid of its config, in order."""
        return len(self) == self.num_trees * runs_per_tree(self.config)

    def combo(self, row: int) -> tuple[str, int, float]:
        """``(scheduler, processors, factor)`` of one plan row."""
        return (
            self.schedulers[int(self.scheduler_code[row])],
            int(self.processors[row]),
            float(self.memory_factor[row]),
        )

    def instances(self) -> Iterator[tuple[int, str, int, float]]:
        """Yield ``(tree_index, scheduler, processors, factor)`` per row.

        For a full plan this is exactly :func:`iter_instances`.
        """
        schedulers = self.schedulers
        for row in range(len(self)):
            yield (
                int(self.tree_index[row]),
                schedulers[int(self.scheduler_code[row])],
                int(self.processors[row]),
                float(self.memory_factor[row]),
            )

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def subset(self, positions: Sequence[int] | np.ndarray) -> "SweepPlan":
        """The plan restricted to ``positions`` (row indices of *this* plan).

        Rows keep canonical order (positions are sorted and deduplicated)
        and their ``global_index`` values, so a subset executed by any
        backend still merges deterministically.
        """
        rows = np.unique(np.asarray(positions, dtype=np.int64))
        if len(rows) and (rows[0] < 0 or rows[-1] >= len(self)):
            raise IndexError(f"plan positions out of range [0, {len(self)})")
        return SweepPlan(
            self.config,
            self.num_trees,
            tree_index=self.tree_index[rows].copy(),
            scheduler_code=self.scheduler_code[rows].copy(),
            ao_code=self.ao_code[rows].copy(),
            eo_code=self.eo_code[rows].copy(),
            processors=self.processors[rows].copy(),
            memory_factor=self.memory_factor[rows].copy(),
            global_index=self.global_index[rows].copy(),
        )

    def tree_groups(self) -> list[tuple[int, np.ndarray]]:
        """Consecutive runs of rows sharing a tree: ``[(tree_index, rows)]``.

        Rows are canonical (tree-major), so each tree's rows are contiguous;
        this is the chunking unit of the per-tree backends and the batched
        lane engine.
        """
        if not len(self):
            return []
        boundaries = np.flatnonzero(np.diff(self.tree_index)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(self)]))
        return [
            (int(self.tree_index[start]), np.arange(start, stop, dtype=np.int64))
            for start, stop in zip(starts, stops)
        ]

    def lane_groups(
        self,
        positions: Sequence[int] | np.ndarray,
        batchable: Callable[[str], bool],
    ) -> tuple[dict[str, list[int]], list[int]]:
        """Split one tree's rows into lane batches and a scalar remainder.

        ``batchable(scheduler)`` decides which heuristics have a lane
        kernel; rows of each batchable heuristic are grouped (first-seen
        order, positions ascending) into the lanes of one
        :func:`~repro.batch.lanes.simulate_lanes` call, everything else runs
        through the scalar path.  This is the batched backend's grouping,
        lifted onto the plan so subset plans batch identically.
        """
        groups: dict[str, list[int]] = {}
        scalar: list[int] = []
        cache: dict[str, bool] = {}
        for position in positions:
            row = int(position)
            scheduler = self.schedulers[int(self.scheduler_code[row])]
            allowed = cache.get(scheduler)
            if allowed is None:
                allowed = cache[scheduler] = bool(batchable(scheduler))
            if allowed:
                groups.setdefault(scheduler, []).append(row)
            else:
                scalar.append(row)
        return groups, scalar

    # ------------------------------------------------------------------ #
    # instance identity
    # ------------------------------------------------------------------ #
    def instance_keys(self, trees: Sequence[TaskTree]) -> list[str]:
        """Stable per-row content keys (the instance-cache identity).

        Each key digests the tree's content sha, its dataset position (the
        record embeds ``tree_index``) and the value-relevant row/config
        fields: scheduler, AO/EO, processors, memory factor and ``validate``
        (a validated row additionally certifies its schedule).  The record
        schema version, the instance-cache schema version and the package
        version participate so upgrades invalidate rather than silently
        serve stale rows.  Execution-only knobs (jobs/backend/batch_size/
        native) and the aggregation-only ``min_completion_fraction`` are
        deliberately absent — they never change record values.
        """
        from .. import __version__
        from .records import _VERSION as record_schema_version

        config = self.config
        prefix = (
            f"{record_schema_version}:{CACHE_SCHEMA_VERSION}:{__version__}:"
            f"{config.activation_order}:{config.execution_order}:{int(config.validate)}"
        )
        shas: dict[int, str] = {}
        keys: list[str] = []
        schedulers = self.schedulers
        for row in range(len(self)):
            index = int(self.tree_index[row])
            sha = shas.get(index)
            if sha is None:
                sha = shas[index] = tree_content_sha(trees[index])
            text = (
                f"{prefix}|{sha}|{index}|{schedulers[int(self.scheduler_code[row])]}"
                f"|{int(self.processors[row])}|{float(self.memory_factor[row])!r}"
            )
            keys.append(hashlib.sha256(text.encode("utf-8")).hexdigest()[:40])
        return keys

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """Summary counts for dry-run output and the suite plan report."""
        return {
            "instances": len(self),
            "trees": int(np.unique(self.tree_index).size),
            "schedulers": list(self.schedulers),
            "processors": sorted({int(p) for p in self.processors}),
            "memory_factors": sorted({float(f) for f in self.memory_factor}),
            "orders": f"{self.config.activation_order}/{self.config.execution_order}",
        }

    def lane_group_count(
        self, batchable: Callable[[str], bool], batch_size: int = 0
    ) -> int:
        """Number of ``simulate_lanes`` calls the batched backend would make."""
        calls = 0
        for _, positions in self.tree_groups():
            groups, _ = self.lane_groups(positions, batchable)
            for rows in groups.values():
                size = batch_size or len(rows)
                calls += (len(rows) + size - 1) // size
        return calls

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepPlan(instances={len(self)}, trees={self.num_trees}, "
            f"full={self.is_full})"
        )


# --------------------------------------------------------------------------- #
# plan execution (with optional instance-level caching)
# --------------------------------------------------------------------------- #
def execute_plan(
    trees: Sequence[TaskTree],
    plan: SweepPlan,
    *,
    backend: "str | Any | None" = None,
    jobs: int | None = None,
) -> RecordTable:
    """Execute every row of ``plan`` and return the records in plan order."""
    from .backends import resolve_backend

    resolved = resolve_backend(backend, plan.config, plan.num_trees, jobs)
    return resolved.run_plan(list(trees), plan)


def _is_quarantined(record: "Mapping[str, Any]") -> bool:
    """True for rows the quarantine path produced (never cached)."""
    from ..resilience.faults import QUARANTINE_PREFIX

    reason = record.get("failure_reason")
    return reason is not None and str(reason).startswith(QUARANTINE_PREFIX)


def execute_plan_cached(
    trees: Sequence[TaskTree],
    plan: SweepPlan,
    *,
    cache: "RowCache | None",
    backend: "str | Any | None" = None,
    jobs: int | None = None,
) -> RecordTable:
    """Execute only the cache misses of ``plan`` and merge with cached rows.

    ``cache`` follows the row-cache protocol of
    :class:`~repro.experiments.records.ResultCache` (``get_rows`` /
    ``put_rows`` plus the hit/miss counters).  The plan-level counters keep
    the historical sweep-cache semantics: a plan whose rows are *all*
    cached counts one hit, anything else one miss; the row-level
    ``rows_cached`` / ``rows_fresh`` counters record the actual split.

    The merged table is byte-identical (timing fields carry the original
    run's wall-clock values) to executing the full plan: cached rows
    round-trip exact bits through the row store and fresh rows come from
    the very same backends a full run uses.

    Two resilience rules guard the store.  A cache that cannot be read or
    written (I/O error on a dying disk, say) degrades the run to uncached
    execution — recorded as a ``cache->uncached`` edge on the health ledger
    — rather than failing it.  And **quarantined rows** (instances that
    exhausted their retry budget under a fault plan, marked by the
    :data:`~repro.resilience.faults.QUARANTINE_PREFIX` failure reason) are
    never persisted: a poisoned row must be recomputed by the next run, not
    served from the cache after the fault clears.
    """
    if cache is None:
        return execute_plan(trees, plan, backend=backend, jobs=jobs)
    trees = list(trees)
    keys = plan.instance_keys(trees)
    try:
        cached = cache.get_rows(keys)
    except OSError:
        from ..resilience.health import current_health

        current_health().record_degradation("cache->uncached")
        return execute_plan(trees, plan, backend=backend, jobs=jobs)
    miss_positions = [row for row, key in enumerate(keys) if key not in cached]
    if miss_positions:
        cache.misses += 1
    else:
        cache.hits += 1
    cache.rows_cached += len(keys) - len(miss_positions)
    if not miss_positions:
        table = RecordTable.empty(len(plan))
        for row, key in enumerate(keys):
            table.set_row(row, cached[key])
        return table
    fresh = execute_plan(trees, plan.subset(miss_positions), backend=backend, jobs=jobs)
    cache.rows_fresh += len(fresh)
    def _cacheable() -> "Any":
        for offset, position in enumerate(miss_positions):
            record = fresh.row(offset)
            if not _is_quarantined(record):
                yield keys[position], record

    try:
        cache.put_rows(_cacheable())
    except OSError:
        from ..resilience.health import current_health

        current_health().record_degradation("cache->uncached")
    if len(miss_positions) == len(keys):
        return fresh
    fresh_offset: Mapping[int, int] = {
        position: offset for offset, position in enumerate(miss_positions)
    }
    merged = RecordTable.empty(len(plan))
    for row, key in enumerate(keys):
        record = cached.get(key)
        merged.set_row(row, record if record is not None else fresh.row(fresh_offset[row]))
    return merged
