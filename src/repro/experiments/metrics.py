"""Metrics and aggregation helpers for the experiment harness.

The paper reports its results as averages (and occasionally medians and
deciles) of per-instance quantities:

* the **normalised makespan** — the makespan divided by the best makespan
  lower bound of the instance (Section 7.2);
* the **normalised memory bound** — the memory limit divided by the peak
  memory of the memory-minimising sequential postorder of the tree ("minimum
  memory");
* the **speedup** of one heuristic over another on the same instance;
* the **fraction of available memory used** — the actual peak resident
  memory divided by the memory limit (Figures 4 and 12);
* the **scheduling time**, total or per node (Figures 5, 6 and 13).

The helpers below operate on the plain ``dict`` records produced by
:mod:`repro.experiments.runner` so that the benchmark scripts and the CLI can
post-process results without any heavyweight dependency.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "group_by",
    "mean",
    "median",
    "quantile",
    "decile_band",
    "safe_ratio",
    "completion_fraction",
    "speedup_records",
    "series_over",
]

Record = Mapping[str, Any]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean, ``nan`` for an empty input (keeps plots honest)."""
    data = [float(v) for v in values if math.isfinite(float(v))]
    return float(np.mean(data)) if data else math.nan


def median(values: Iterable[float]) -> float:
    """Median, ``nan`` for an empty input."""
    data = [float(v) for v in values if math.isfinite(float(v))]
    return float(np.median(data)) if data else math.nan


def quantile(values: Iterable[float], q: float) -> float:
    """Quantile ``q`` in [0, 1], ``nan`` for an empty input."""
    data = [float(v) for v in values if math.isfinite(float(v))]
    return float(np.quantile(data, q)) if data else math.nan


def decile_band(values: Iterable[float]) -> tuple[float, float]:
    """First and ninth decile (the ribbon of Figure 3)."""
    data = [float(v) for v in values if math.isfinite(float(v))]
    if not data:
        return math.nan, math.nan
    return float(np.quantile(data, 0.1)), float(np.quantile(data, 0.9))


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with ``nan`` on degenerate input."""
    if not math.isfinite(numerator) or not math.isfinite(denominator) or denominator <= 0:
        return math.nan
    return numerator / denominator


def group_by(records: Iterable[Record], *keys: str) -> dict[tuple, list[Record]]:
    """Group records by the values of ``keys`` (in order)."""
    grouped: dict[tuple, list[Record]] = defaultdict(list)
    for record in records:
        grouped[tuple(record[k] for k in keys)].append(record)
    return dict(grouped)


def completion_fraction(records: Sequence[Record]) -> float:
    """Fraction of records whose schedule completed."""
    if not records:
        return math.nan
    return sum(1 for r in records if r["completed"]) / len(records)


def speedup_records(
    records: Iterable[Record],
    *,
    baseline: str = "Activation",
    target: str = "MemBooking",
) -> list[dict[str, Any]]:
    """Pair up target/baseline runs of the same instance and compute speedups.

    Records are matched on ``(tree_index, num_processors, memory_factor,
    activation_order, execution_order)``.  Only instances where *both*
    heuristics completed produce a speedup record.
    """
    keys = ("tree_index", "num_processors", "memory_factor", "activation_order", "execution_order")
    by_instance = group_by(records, *keys)
    output: list[dict[str, Any]] = []
    for instance_key, instance_records in by_instance.items():
        base = [r for r in instance_records if r["scheduler"] == baseline]
        tgt = [r for r in instance_records if r["scheduler"] == target]
        if not base or not tgt:
            continue
        base_record, target_record = base[0], tgt[0]
        if not (base_record["completed"] and target_record["completed"]):
            continue
        speedup = safe_ratio(base_record["makespan"], target_record["makespan"])
        output.append(
            {
                **{k: v for k, v in zip(keys, instance_key)},
                "speedup": speedup,
                "baseline_makespan": base_record["makespan"],
                "target_makespan": target_record["makespan"],
                "tree_size": target_record["tree_size"],
                "tree_height": target_record["tree_height"],
            }
        )
    return output


def series_over(
    records: Iterable[Record],
    x_key: str,
    y_key: str,
    *,
    reduce: Callable[[Iterable[float]], float] = mean,
    where: Callable[[Record], bool] | None = None,
    min_completion: float | None = None,
) -> list[tuple[float, float]]:
    """Aggregate ``y_key`` as a function of ``x_key``.

    Parameters
    ----------
    reduce:
        Aggregation function applied to the y values of each x bucket.
    where:
        Optional record filter applied before grouping.
    min_completion:
        When given, x buckets whose completion fraction is below this
        threshold are dropped entirely — this reproduces the paper's rule of
        only plotting a point when at least 95% of the trees could be
        scheduled (Section 7.2).
    """
    filtered = [r for r in records if where is None or where(r)]
    buckets = group_by(filtered, x_key)
    series: list[tuple[float, float]] = []
    for (x_value,), bucket in sorted(buckets.items()):
        if min_completion is not None and completion_fraction(bucket) < min_completion:
            continue
        completed = [r for r in bucket if r["completed"]]
        series.append((float(x_value), reduce(r[y_key] for r in completed)))
    return series
