"""Metrics and aggregation helpers for the experiment harness.

The paper reports its results as averages (and occasionally medians and
deciles) of per-instance quantities:

* the **normalised makespan** — the makespan divided by the best makespan
  lower bound of the instance (Section 7.2);
* the **normalised memory bound** — the memory limit divided by the peak
  memory of the memory-minimising sequential postorder of the tree ("minimum
  memory");
* the **speedup** of one heuristic over another on the same instance;
* the **fraction of available memory used** — the actual peak resident
  memory divided by the memory limit (Figures 4 and 12);
* the **scheduling time**, total or per node (Figures 5, 6 and 13).

The helpers accept either the columnar
:class:`~repro.experiments.records.RecordTable` produced by
:mod:`repro.experiments.runner` — in which case grouping, filtering and
reduction run as **vectorised column operations** (one NumPy pass instead of
a Python loop per record) — or any iterable of plain ``dict`` records, the
historical format, through an equivalent fallback path.  Both paths compute
the same values.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .records import RecordTable

__all__ = [
    "group_by",
    "mean",
    "median",
    "quantile",
    "decile_band",
    "safe_ratio",
    "completion_fraction",
    "speedup_records",
    "series_over",
]

Record = Mapping[str, Any]

#: A record filter: either a predicate over one record dict, or a mapping of
#: ``{column name: required value}`` — the mapping form is what enables the
#: vectorised path on a :class:`RecordTable`.
Where = Callable[[Record], bool] | Mapping[str, Any]


def _finite(values: Iterable[float]) -> np.ndarray:
    """Finite float64 array from any iterable (the common reduce input)."""
    data = np.asarray(values if isinstance(values, np.ndarray) else list(values), dtype=np.float64)
    return data[np.isfinite(data)]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean over finite values, ``nan`` for an empty input."""
    data = _finite(values)
    return float(np.mean(data)) if data.size else math.nan


def median(values: Iterable[float]) -> float:
    """Median over finite values, ``nan`` for an empty input."""
    data = _finite(values)
    return float(np.median(data)) if data.size else math.nan


def quantile(values: Iterable[float], q: float) -> float:
    """Quantile ``q`` in [0, 1] over finite values, ``nan`` for an empty input."""
    data = _finite(values)
    return float(np.quantile(data, q)) if data.size else math.nan


def decile_band(values: Iterable[float]) -> tuple[float, float]:
    """First and ninth decile (the ribbon of Figure 3)."""
    data = _finite(values)
    if not data.size:
        return math.nan, math.nan
    return float(np.quantile(data, 0.1)), float(np.quantile(data, 0.9))


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with ``nan`` on degenerate input."""
    if not math.isfinite(numerator) or not math.isfinite(denominator) or denominator <= 0:
        return math.nan
    return numerator / denominator


def _safe_ratio_array(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Vectorised :func:`safe_ratio` (``nan`` where degenerate)."""
    valid = np.isfinite(numerator) & np.isfinite(denominator) & (denominator > 0)
    out = np.full(numerator.shape, math.nan)
    np.divide(numerator, denominator, out=out, where=valid)
    return out


def group_by(records: Iterable[Record], *keys: str) -> dict[tuple, list[Record]]:
    """Group records by the values of ``keys`` (in order)."""
    grouped: dict[tuple, list[Record]] = defaultdict(list)
    for record in records:
        grouped[tuple(record[k] for k in keys)].append(record)
    return dict(grouped)


def completion_fraction(records: "RecordTable | Sequence[Record]") -> float:
    """Fraction of records whose schedule completed (``nan`` when empty)."""
    if isinstance(records, RecordTable):
        if not len(records):
            return math.nan
        completed = records.column("completed")
        return int(np.count_nonzero(completed)) / len(records)
    if not records:
        return math.nan
    return sum(1 for r in records if r["completed"]) / len(records)


def _where_mask(table: RecordTable, where: Where | None) -> np.ndarray:
    """Row mask for a mapping filter (vectorised) or a callable (row loop)."""
    mask = np.ones(len(table), dtype=bool)
    if where is None:
        return mask
    if isinstance(where, Mapping):
        for key, value in where.items():
            mask &= table.column(key) == value
        return mask
    for index, record in enumerate(table):
        mask[index] = bool(where(record))
    return mask


def _matches(record: Record, where: Where | None) -> bool:
    if where is None:
        return True
    if isinstance(where, Mapping):
        return all(record[k] == v for k, v in where.items())
    return bool(where(record))


def speedup_records(
    records: "RecordTable | Iterable[Record]",
    *,
    baseline: str = "Activation",
    target: str = "MemBooking",
) -> list[dict[str, Any]]:
    """Pair up target/baseline runs of the same instance and compute speedups.

    Records are matched on ``(tree_index, num_processors, memory_factor,
    activation_order, execution_order)``.  Only instances where *both*
    heuristics completed produce a speedup record.  On a
    :class:`RecordTable` the pairing is a vectorised group-by over the key
    columns; the output order (first appearance of each instance) and values
    match the dict-records fallback exactly.
    """
    if isinstance(records, RecordTable):
        return _speedup_records_table(records, baseline=baseline, target=target)

    keys = ("tree_index", "num_processors", "memory_factor", "activation_order", "execution_order")
    by_instance = group_by(records, *keys)
    output: list[dict[str, Any]] = []
    for instance_key, instance_records in by_instance.items():
        base = [r for r in instance_records if r["scheduler"] == baseline]
        tgt = [r for r in instance_records if r["scheduler"] == target]
        if not base or not tgt:
            continue
        base_record, target_record = base[0], tgt[0]
        if not (base_record["completed"] and target_record["completed"]):
            continue
        speedup = safe_ratio(base_record["makespan"], target_record["makespan"])
        output.append(
            {
                **{k: v for k, v in zip(keys, instance_key)},
                "speedup": speedup,
                "baseline_makespan": base_record["makespan"],
                "target_makespan": target_record["makespan"],
                "tree_size": target_record["tree_size"],
                "tree_height": target_record["tree_height"],
            }
        )
    return output


def _speedup_records_table(
    table: RecordTable, *, baseline: str, target: str
) -> list[dict[str, Any]]:
    """Columnar pairing: one lexicographic group-by instead of a dict of lists."""
    n = len(table)
    if not n:
        return []
    keys = ("tree_index", "num_processors", "memory_factor", "activation_order", "execution_order")
    key_arrays = [table.column(k) for k in keys]
    composite = np.empty(
        n, dtype=[(k, a.dtype) for k, a in zip(keys, key_arrays)]
    )
    for k, a in zip(keys, key_arrays):
        composite[k] = a
    _, inverse = np.unique(composite, return_inverse=True)
    num_groups = int(inverse.max()) + 1

    scheduler = table.column("scheduler")
    # First matching row of each (instance, role); `n` marks "absent".
    base_row = np.full(num_groups, n, dtype=np.int64)
    target_row = np.full(num_groups, n, dtype=np.int64)
    first_row = np.full(num_groups, n, dtype=np.int64)
    rows = np.arange(n, dtype=np.int64)
    np.minimum.at(first_row, inverse, rows)
    base_rows = rows[scheduler == baseline]
    np.minimum.at(base_row, inverse[base_rows], base_rows)
    tgt_rows = rows[scheduler == target]
    np.minimum.at(target_row, inverse[tgt_rows], tgt_rows)

    completed = table.column("completed")
    present = (base_row < n) & (target_row < n)
    valid = present.copy()
    valid[present] &= completed[base_row[present]] & completed[target_row[present]]
    # Emit in first-appearance order, like the dict-grouping fallback.
    order = np.argsort(first_row[valid], kind="stable")
    base_idx = base_row[valid][order]
    tgt_idx = target_row[valid][order]

    makespan = table.column("makespan")
    speedups = _safe_ratio_array(makespan[base_idx], makespan[tgt_idx])
    columns: dict[str, list] = {
        k: table.column(k)[tgt_idx].tolist() for k in keys
    }
    columns["speedup"] = speedups.tolist()
    columns["baseline_makespan"] = makespan[base_idx].tolist()
    columns["target_makespan"] = makespan[tgt_idx].tolist()
    columns["tree_size"] = table.column("tree_size")[tgt_idx].tolist()
    columns["tree_height"] = table.column("tree_height")[tgt_idx].tolist()
    names = list(columns)
    return [dict(zip(names, row)) for row in zip(*columns.values())]


def series_over(
    records: "RecordTable | Iterable[Record]",
    x_key: str,
    y_key: str,
    *,
    reduce: Callable[[Iterable[float]], float] = mean,
    where: Where | None = None,
    min_completion: float | None = None,
) -> list[tuple[float, float]]:
    """Aggregate ``y_key`` as a function of ``x_key``.

    Parameters
    ----------
    reduce:
        Aggregation function applied to the y values of each x bucket
        (of the *completed* records; the default :func:`mean` additionally
        drops non-finite values).
    where:
        Optional record filter applied before grouping: either a predicate
        over one record dict, or a ``{column: value}`` mapping — the mapping
        form keeps the whole computation vectorised on a
        :class:`RecordTable`.
    min_completion:
        When given, x buckets whose completion fraction is below this
        threshold are dropped entirely — this reproduces the paper's rule of
        only plotting a point when at least 95% of the trees could be
        scheduled (Section 7.2).
    """
    if isinstance(records, RecordTable):
        mask = _where_mask(records, where)
        x = records.column(x_key)[mask]
        y = records.column(y_key)[mask]
        completed = records.column("completed")[mask]
        series: list[tuple[float, float]] = []
        for x_value in np.unique(x):
            bucket = x == x_value
            if (
                min_completion is not None
                and int(np.count_nonzero(completed[bucket])) / int(np.count_nonzero(bucket))
                < min_completion
            ):
                continue
            series.append((float(x_value), reduce(y[bucket & completed])))
        return series

    filtered = [r for r in records if _matches(r, where)]
    buckets = group_by(filtered, x_key)
    series = []
    for (x_value,), bucket in sorted(buckets.items()):
        if min_completion is not None and completion_fraction(bucket) < min_completion:
            continue
        completed_records = [r for r in bucket if r["completed"]]
        series.append((float(x_value), reduce(r[y_key] for r in completed_records)))
    return series
