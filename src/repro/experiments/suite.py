"""Run the whole evaluation suite and write a consolidated report.

``python -m repro.experiments.suite --scale tiny --out results/`` (or the
programmatic :func:`run_suite`) executes every figure/table reproduction of
:mod:`repro.experiments.figures`, writes

* one text file per figure (the same series the benchmarks print),
* one CSV per figure (for offline plotting), and
* a ``summary.md`` report listing every qualitative check and whether it
  passed,

which is how the EXPERIMENTS.md numbers were collected.  The benchmark suite
(`pytest benchmarks/ --benchmark-only`) remains the canonical way to *assert*
the checks; this module is the convenience front-end for regenerating all the
data in one go.

Result cache
------------
By default the suite keeps a **persistent result cache** under
``<out>/.result-cache/``: every sweep's
:class:`~repro.experiments.records.RecordTable` is saved keyed by (dataset,
config, schema version), so re-running the suite at the same scale loads the
recorded results instead of re-simulating (``--no-cache`` disables this,
``--cache-dir`` relocates it).  Records are value-identical either way; only
the wall-clock ``scheduling_seconds`` fields are those of the original run.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Iterable, Mapping

from ..workloads.datasets import WorkloadCache
from . import backends as _backends
from .figures import FIGURES, FigureResult, run_figure
from .records import ResultCache
from .reporting import write_series_csv

__all__ = ["run_suite", "write_suite_report", "main"]


def run_suite(
    figure_ids: Iterable[str] | None = None,
    *,
    scale: str = "small",
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> dict[str, FigureResult]:
    """Run the selected figures (all of them by default) and return the results.

    ``jobs`` and ``backend`` are forwarded to every figure's sweep: the
    instances of each figure fan out over that many worker processes (``0``
    = one per CPU) using the chosen execution backend (``"shared-memory"``
    ships each dataset once through a shared arena, schedules at instance
    granularity and collects the records through a shared-memory result
    table) while the reported series stay identical to a serial run.
    ``cache`` (a :class:`~repro.experiments.records.ResultCache`) makes every
    sweep consult/fill the persistent result cache;  ``workload_cache`` (a
    :class:`~repro.workloads.datasets.WorkloadCache`) does the same for the
    *generated datasets* — each (kind, scale, seed) is generated at most
    once and mmap-loaded as a zero-copy ``TreeStore`` arena afterwards,
    including across figures of one run that share a dataset.
    """
    ids = list(figure_ids) if figure_ids is not None else sorted(FIGURES)
    results: dict[str, FigureResult] = {}
    for figure_id in ids:
        results[figure_id] = run_figure(
            figure_id,
            scale=scale,
            jobs=jobs,
            backend=backend,
            batch_size=batch_size,
            cache=cache,
            workload_cache=workload_cache,
        )
    return results


def write_suite_report(
    results: Mapping[str, FigureResult],
    out_dir: str | Path,
    *,
    scale: str = "small",
    elapsed_seconds: float | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
) -> Path:
    """Write per-figure text/CSV files plus a ``summary.md`` into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    lines = [
        "# Evaluation suite report",
        "",
        f"* dataset scale: `{scale}`",
        f"* figures run: {len(results)}",
    ]
    if elapsed_seconds is not None:
        lines.append(f"* total runtime: {elapsed_seconds:.1f} s")
    if cache is not None:
        lines.append(f"* result cache: {cache.stats()}")
    if workload_cache is not None:
        lines.append(f"* workload cache: {workload_cache.stats()}")
    lines.append("")
    lines.append("| figure | title | checks |")
    lines.append("|---|---|---|")
    for figure_id, result in results.items():
        (out / f"{figure_id}.txt").write_text(result.as_text() + "\n")
        write_series_csv(result.series, out / f"{figure_id}.csv", x_label=result.x_label)
        status = "all pass" if result.all_checks_pass else "FAILURES: " + ", ".join(
            name for name, ok in result.checks.items() if not ok
        )
        lines.append(f"| {figure_id} | {result.title} | {status} |")
    summary = out / "summary.md"
    summary.write_text("\n".join(lines) + "\n")
    return summary


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``python -m repro.experiments.suite``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small", help="dataset scale (tiny/small/medium/large)")
    parser.add_argument("--out", type=Path, default=Path("suite-results"))
    parser.add_argument(
        "--figures",
        nargs="*",
        default=None,
        help="subset of figure ids to run (default: every figure)",
    )
    def jobs_count(value: str) -> int:
        jobs = int(value)
        if jobs < 0:
            raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
        return jobs

    parser.add_argument(
        "--jobs",
        type=jobs_count,
        default=1,
        help="worker processes per sweep (0 = one per CPU, default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(_backends.BACKEND_NAMES),
        default="auto",
        help="sweep execution backend (shared-memory = zero-copy arena transfer, "
        "batched = lane-batched in-process stepper)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="lanes per batch for --backend batched (0 = auto: all instances "
        "of one tree per batch)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result-cache directory (default: <out>/.result-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (always re-simulate)",
    )
    parser.add_argument(
        "--workload-cache-dir",
        type=Path,
        default=None,
        help="persistent workload (dataset arena) cache directory "
        "(default: <out>/.workload-cache)",
    )
    parser.add_argument(
        "--no-workload-cache",
        action="store_true",
        help="disable the persistent workload cache (always regenerate datasets)",
    )
    args = parser.parse_args(argv)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir is not None else args.out / ".result-cache")
    workload_cache = None
    if not args.no_workload_cache:
        workload_cache = WorkloadCache(
            args.workload_cache_dir
            if args.workload_cache_dir is not None
            else args.out / ".workload-cache"
        )
    start = time.perf_counter()
    results = run_suite(
        args.figures,
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        batch_size=args.batch_size,
        cache=cache,
        workload_cache=workload_cache,
    )
    elapsed = time.perf_counter() - start
    summary = write_suite_report(
        results,
        args.out,
        scale=args.scale,
        elapsed_seconds=elapsed,
        cache=cache,
        workload_cache=workload_cache,
    )
    failures = [fid for fid, result in results.items() if not result.all_checks_pass]
    print(f"wrote {summary} ({len(results)} figures, {elapsed:.1f} s)")
    if cache is not None:
        print(f"result cache: {cache.stats()}")
    if workload_cache is not None:
        print(f"workload cache: {workload_cache.stats()}")
    if failures:
        print("figures with failed checks:", ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
