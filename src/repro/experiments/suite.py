"""Run the whole evaluation suite and write a consolidated report.

``python -m repro.experiments.suite --scale tiny --out results/`` (or the
programmatic :func:`run_suite`) executes every figure/table reproduction of
:mod:`repro.experiments.figures`, writes

* one text file per figure (the same series the benchmarks print),
* one CSV per figure (for offline plotting),
* a ``summary.md`` report listing every qualitative check and whether it
  passed, plus the instance-level plan accounting
  (``instances: N unique / M requested / K cached`` and the number of fresh
  simulations the run actually performed), and
* ``plan-stats.json`` with the same accounting in machine-readable form,

which is how the EXPERIMENTS.md numbers were collected.  The benchmark suite
(`pytest benchmarks/ --benchmark-only`) remains the canonical way to *assert*
the checks; this module is the convenience front-end for regenerating all the
data in one go.

Sweep plans and cross-figure dedup
----------------------------------
Every grid-sweep figure declares its instances through a
:class:`~repro.experiments.plan.SweepPlan`; the suite concatenates the plans
of all selected figures and deduplicates them by content-addressed instance
key *before* anything runs.  Figures whose grids overlap (fig10, fig11 and
fig12 sweep the same synthetic grid; fig13's single-factor column is a slice
of it) therefore simulate their shared instances exactly once per run even
with ``--no-cache`` — the dedup then rides on an in-memory row store instead
of the persistent one.  ``--dry-run`` prints this plan (instance counts,
per-figure overlap, predicted cache hits, lane-group counts) and exits
without simulating.

Result cache
------------
By default the suite keeps a **persistent result cache** under
``<out>/.result-cache/``: every simulated instance row is saved keyed by its
content-addressed instance key (tree bytes + value-relevant sweep axes +
schema versions), so re-running the suite at the same scale loads the
recorded rows instead of re-simulating — across runs *and* across figures
(``--no-cache`` disables persistence, ``--cache-dir`` relocates it).
Records are value-identical either way; only the wall-clock
``scheduling_seconds`` fields are those of the original run.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..resilience.health import RunHealth, reset_run_health
from ..workloads.datasets import WorkloadCache
from . import backends as _backends
from .figures import FIGURE_SPECS, FIGURES, FigureResult
from .records import InMemoryRowCache, ResultCache, RowCache
from .reporting import write_series_csv
from .specs import RunContext, format_plan_report, plan_report, run_spec

__all__ = [
    "run_suite",
    "write_suite_report",
    "add_suite_arguments",
    "run_from_args",
    "main",
]


def run_suite(
    figure_ids: Iterable[str] | None = None,
    *,
    scale: str = "small",
    jobs: int = 1,
    backend: str = "auto",
    batch_size: int = 0,
    native: bool | None = None,
    fault_plan: str | None = None,
    cache: RowCache | None = None,
    workload_cache: WorkloadCache | None = None,
    stats: dict[str, Any] | None = None,
) -> dict[str, FigureResult]:
    """Run the selected figures (all of them by default) and return the results.

    ``jobs`` and ``backend`` are forwarded to every figure's sweep: the
    instances of each figure fan out over that many worker processes (``0``
    = one per CPU) using the chosen execution backend (``"shared-memory"``
    ships each dataset once through a shared arena, schedules at instance
    granularity and collects the records through a shared-memory result
    table) while the reported series stay identical to a serial run.
    ``cache`` (a :class:`~repro.experiments.records.ResultCache` or any
    :class:`~repro.experiments.records.RowCache`) makes every figure's plan
    consult/fill the instance-row cache; without one the suite still dedups
    overlapping figures within the run through a transient
    :class:`~repro.experiments.records.InMemoryRowCache`.  ``workload_cache``
    (a :class:`~repro.workloads.datasets.WorkloadCache`) does the same for
    the *generated datasets* — each (kind, scale, seed) is generated at most
    once and mmap-loaded as a zero-copy ``TreeStore`` arena afterwards,
    including across figures of one run that share a dataset.

    ``stats``, when given a dict, is filled with the run's plan accounting
    (the :func:`~repro.experiments.specs.plan_report` totals plus the number
    of ``fresh`` simulations actually performed).
    """
    ids = list(figure_ids) if figure_ids is not None else sorted(FIGURES)
    row_cache: RowCache = cache if cache is not None else InMemoryRowCache()
    ctx = RunContext(
        scale=scale,
        jobs=jobs,
        backend=backend,
        batch_size=batch_size,
        native=native,
        fault_plan=fault_plan,
        cache=row_cache,
        workload_cache=workload_cache,
    )
    specs = [FIGURE_SPECS[figure_id] for figure_id in ids]
    report = plan_report(specs, ctx)
    fresh_before = row_cache.rows_fresh
    results: dict[str, FigureResult] = {}
    for figure_id, spec in zip(ids, specs):
        results[figure_id] = run_spec(spec, ctx)
    if stats is not None:
        stats.update(report)
        stats["fresh"] = row_cache.rows_fresh - fresh_before
    return results


def write_suite_report(
    results: Mapping[str, FigureResult],
    out_dir: str | Path,
    *,
    scale: str = "small",
    elapsed_seconds: float | None = None,
    cache: ResultCache | None = None,
    workload_cache: WorkloadCache | None = None,
    plan_stats: Mapping[str, Any] | None = None,
    health: RunHealth | None = None,
) -> Path:
    """Write per-figure text/CSV files plus a ``summary.md`` into ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    lines = [
        "# Evaluation suite report",
        "",
        f"* dataset scale: `{scale}`",
        f"* figures run: {len(results)}",
    ]
    if elapsed_seconds is not None:
        lines.append(f"* total runtime: {elapsed_seconds:.1f} s")
    if plan_stats is not None:
        lines.append(
            f"* instances: {plan_stats['unique']} unique"
            f" / {plan_stats['requested']} requested"
            f" / {plan_stats['cached']} cached"
        )
        lines.append(f"* fresh simulations: {plan_stats['fresh']}")
    if cache is not None:
        lines.append(f"* result cache: {cache.stats()}")
        lines.append(f"* result rows: {cache.row_stats()}")
    if workload_cache is not None:
        lines.append(f"* workload cache: {workload_cache.stats()}")
    if health is not None:
        lines.append(f"* run health: {health.summary()}")
    lines.append("")
    lines.append("| figure | title | checks |")
    lines.append("|---|---|---|")
    for figure_id, result in results.items():
        (out / f"{figure_id}.txt").write_text(result.as_text() + "\n")
        write_series_csv(result.series, out / f"{figure_id}.csv", x_label=result.x_label)
        status = "all pass" if result.all_checks_pass else "FAILURES: " + ", ".join(
            name for name, ok in result.checks.items() if not ok
        )
        lines.append(f"| {figure_id} | {result.title} | {status} |")
    summary = out / "summary.md"
    summary.write_text("\n".join(lines) + "\n")
    return summary


def add_suite_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the suite's command-line options to ``parser``.

    Shared between ``python -m repro.experiments.suite`` and the ``memtree
    suite`` sub-command.
    """
    parser.add_argument("--scale", default="small", help="dataset scale (tiny/small/medium/large)")
    parser.add_argument("--out", type=Path, default=Path("suite-results"))
    parser.add_argument(
        "--figures",
        nargs="*",
        default=None,
        help="subset of figure ids to run (default: every figure)",
    )

    def jobs_count(value: str) -> int:
        jobs = int(value)
        if jobs < 0:
            raise argparse.ArgumentTypeError("must be >= 0 (0 means one worker per CPU)")
        return jobs

    parser.add_argument(
        "--jobs",
        type=jobs_count,
        default=1,
        help="worker processes per sweep (0 = one per CPU, default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(_backends.BACKEND_NAMES),
        default="auto",
        help="sweep execution backend (shared-memory = zero-copy arena transfer, "
        "batched = lane-batched in-process stepper)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=0,
        help="lanes per batch for --backend batched (0 = auto: all instances "
        "of one tree per batch)",
    )
    parser.add_argument(
        "--native",
        action="store_true",
        dest="native",
        default=None,
        help="require the compiled C kernels (repro.native; error if they "
        "cannot be built)",
    )
    parser.add_argument(
        "--no-native",
        action="store_false",
        dest="native",
        help="force the pure-Python kernels (default: the REPRO_NATIVE "
        "environment switch; unset = auto with silent fallback)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan spec, e.g. "
        '"seed=7;worker-crash:40;watchdog=5" (default: the REPRO_FAULTS '
        "environment variable; see repro.resilience)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent result-cache directory (default: <out>/.result-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (always re-simulate; "
        "overlapping figures still dedup within the run)",
    )
    parser.add_argument(
        "--workload-cache-dir",
        type=Path,
        default=None,
        help="persistent workload (dataset arena) cache directory "
        "(default: <out>/.workload-cache)",
    )
    parser.add_argument(
        "--no-workload-cache",
        action="store_true",
        help="disable the persistent workload cache (always regenerate datasets)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the assembled sweep plan (instance counts, per-figure "
        "overlap, predicted cache hits, lane groups) and exit without "
        "simulating anything",
    )


def run_from_args(args: argparse.Namespace) -> int:
    """Execute the suite described by parsed :func:`add_suite_arguments` options."""
    cache: ResultCache | None = None
    if not args.no_cache:
        cache = ResultCache(
            args.cache_dir if args.cache_dir is not None else args.out / ".result-cache"
        )
    workload_cache = None
    if not args.no_workload_cache:
        workload_cache = WorkloadCache(
            args.workload_cache_dir
            if args.workload_cache_dir is not None
            else args.out / ".workload-cache"
        )
    ids = list(args.figures) if args.figures is not None else sorted(FIGURES)
    fault_plan = getattr(args, "faults", None)
    if args.dry_run:
        ctx = RunContext(
            scale=args.scale,
            jobs=args.jobs,
            backend=args.backend,
            batch_size=args.batch_size,
            native=args.native,
            fault_plan=fault_plan,
            cache=cache if cache is not None else InMemoryRowCache(),
            workload_cache=workload_cache,
        )
        specs = [FIGURE_SPECS[figure_id] for figure_id in ids]
        print(format_plan_report(plan_report(specs, ctx)))
        return 0
    health = reset_run_health()
    start = time.perf_counter()
    plan_stats: dict[str, Any] = {}
    results = run_suite(
        ids,
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        batch_size=args.batch_size,
        native=args.native,
        fault_plan=fault_plan,
        cache=cache,
        workload_cache=workload_cache,
        stats=plan_stats,
    )
    elapsed = time.perf_counter() - start
    summary = write_suite_report(
        results,
        args.out,
        scale=args.scale,
        elapsed_seconds=elapsed,
        cache=cache,
        workload_cache=workload_cache,
        plan_stats=plan_stats,
        health=health,
    )
    (args.out / "plan-stats.json").write_text(json.dumps(plan_stats, indent=2) + "\n")
    (args.out / "run-health.json").write_text(health.to_json())
    failures = [fid for fid, result in results.items() if not result.all_checks_pass]
    print(f"wrote {summary} ({len(results)} figures, {elapsed:.1f} s)")
    print(
        f"instances: {plan_stats['unique']} unique / {plan_stats['requested']} requested"
        f" / {plan_stats['cached']} cached; fresh simulations: {plan_stats['fresh']}"
    )
    if cache is not None:
        print(f"result cache: {cache.stats()}")
    if workload_cache is not None:
        print(f"workload cache: {workload_cache.stats()}")
    print(f"run health: {health.summary()}")
    if failures:
        print("figures with failed checks:", ", ".join(failures))
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``python -m repro.experiments.suite``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_suite_arguments(parser)
    try:
        return run_from_args(parser.parse_args(argv))
    except KeyboardInterrupt:
        # Pool contexts and shm finally-blocks have already torn down on the
        # way up; exit with the conventional SIGINT status, no traceback.
        import sys

        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
